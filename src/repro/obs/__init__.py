"""repro.obs — unified metrics, structured events, and span tracing.

A dependency-free observability layer threaded through every tier of
the repo: trainers emit per-step loss/grad-norm/duration series, the
sweep engine wraps shard execution in spans and persists per-shard
snapshots into the :class:`~repro.experiments.artifacts.ArtifactStore`,
and the serving stack records per-route latency histograms, queue
depth gauges, and shed/degrade/failover counters — all exposed over
``GET /metrics`` (Prometheus text format) and JSONL event logs that
``python -m repro obs summarize`` renders as tables.

Three primitives behind one handle:

* :class:`MetricsRegistry` — counters, gauges, and ring-buffer
  histograms with exact nearest-rank p50/p95/p99 quantiles;
* :class:`EventLog` — leveled, schema-tagged JSONL records with an
  injectable clock;
* :meth:`Obs.span` — nestable, thread-local tracing timers.

The process-global default (:func:`get_obs`) is :data:`NULL_OBS`, a
true null object: with obs disabled every instrumented path pays one
attribute check and stays bit-identical to the unobserved code (the
bench ``observability`` section gates this under ``--check``).
"""

from .core import (
    NULL_OBS,
    NullObs,
    Obs,
    Span,
    configure,
    get_obs,
    set_obs,
    use_obs,
)
from .events import LEVELS, EventLog, read_events
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    nearest_rank_quantile,
    render_prometheus,
)
from .summarize import summarize_events, summarize_records

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "LEVELS",
    "MetricsRegistry",
    "NULL_OBS",
    "NullObs",
    "Obs",
    "Span",
    "configure",
    "get_obs",
    "nearest_rank_quantile",
    "read_events",
    "render_prometheus",
    "set_obs",
    "summarize_events",
    "summarize_records",
    "use_obs",
]
