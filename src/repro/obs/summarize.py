"""Render a JSONL event log into the repo's ASCII tables style.

Backs ``python -m repro obs summarize <events.jsonl>``: an events
overview (count per kind × level, time range), a span table (count /
total / p50 / p95 / p99 per span path), and — when present — a
``fault_fired`` table keyed on the injector's ``(seed, site, key)``
identity, so a chaos sweep's log reads at a glance.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from collections import defaultdict
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from ..utils.tables import format_table
from .events import LEVELS, read_events
from .metrics import nearest_rank_quantile

__all__ = ["summarize_events", "summarize_records"]


def summarize_records(
    records: Iterable[Dict[str, Any]],
    level: Optional[str] = None,
    kind: Optional[str] = None,
    title: str = "events",
) -> str:
    """Tables for an in-memory record stream (see module docstring)."""
    threshold = LEVELS[level] if level is not None else 0
    kinds: TallyCounter = TallyCounter()
    spans: Dict[str, List[float]] = defaultdict(list)
    faults: TallyCounter = TallyCounter()
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None
    total = 0

    for rec in records:
        rec_level = rec.get("level", "info")
        if LEVELS.get(rec_level, 0) < threshold:
            continue
        rec_kind = str(rec.get("kind", "?"))
        if kind is not None and rec_kind != kind:
            continue
        total += 1
        ts = rec.get("ts")
        if isinstance(ts, (int, float)):
            first_ts = ts if first_ts is None else min(first_ts, ts)
            last_ts = ts if last_ts is None else max(last_ts, ts)
        kinds[(rec_kind, rec_level)] += 1
        if rec_kind == "span" and isinstance(rec.get("seconds"), (int, float)):
            spans[str(rec.get("span", "?"))].append(float(rec["seconds"]))
        elif rec_kind == "fault_fired":
            faults[
                (str(rec.get("seed", "?")), str(rec.get("site", "?")), str(rec.get("key", "?")))
            ] += 1

    window = (
        f"{last_ts - first_ts:.3f}s window" if first_ts is not None and total else "empty"
    )
    blocks: List[str] = [
        format_table(
            ["kind", "level", "count"],
            [[k, lvl, kinds[(k, lvl)]] for k, lvl in sorted(kinds)],
            title=f"{title} — {total} records, {window}",
        )
    ]
    if spans:
        rows = []
        for path in sorted(spans):
            samples = sorted(spans[path])
            rows.append(
                [
                    path,
                    len(samples),
                    sum(samples),
                    nearest_rank_quantile(samples, 0.5),
                    nearest_rank_quantile(samples, 0.95),
                    nearest_rank_quantile(samples, 0.99),
                ]
            )
        blocks.append(
            format_table(
                ["span", "count", "total_s", "p50_s", "p95_s", "p99_s"],
                rows,
                title="spans",
                float_fmt="{:.6f}",
            )
        )
    if faults:
        blocks.append(
            format_table(
                ["seed", "site", "key", "fired"],
                [[s, site, key, n] for (s, site, key), n in sorted(faults.items())],
                title="fault_fired",
            )
        )
    return "\n\n".join(blocks)


def summarize_events(
    path: Union[str, Path],
    level: Optional[str] = None,
    kind: Optional[str] = None,
) -> str:
    """Tables for an on-disk JSONL log (the CLI entry point)."""
    path = Path(path)
    return summarize_records(
        read_events(path), level=level, kind=kind, title=path.name
    )
