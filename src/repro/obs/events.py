"""Structured JSONL event log with levels and an injectable clock.

Every record is one JSON object per line with a fixed envelope —
``ts`` (wall-clock seconds from the injectable clock), ``level``
(``debug``/``info``/``warn``/``error``), ``kind`` (the schema tag,
e.g. ``train_step``, ``fault_fired``, ``span``) — followed by the
event's own fields.  Records below the log's threshold are dropped
before any serialisation work happens.

The log always keeps an in-memory tail (bounded deque) so tests and
the ``obs summarize`` command can inspect recent events without a
file; pass ``path`` to additionally append every record to a JSONL
file (opened in append mode, one flushed ``write()`` per record, so
forked workers sharing the file interleave whole lines).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Union

__all__ = ["EventLog", "LEVELS", "read_events"]

#: Level names to numeric thresholds (higher = more severe).
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warn": 30, "error": 40}


def _level_no(level: Union[str, int]) -> int:
    if isinstance(level, int):
        return level
    try:
        return LEVELS[level]
    except KeyError:
        raise ValueError(
            f"unknown level {level!r}; expected one of {sorted(LEVELS)}"
        ) from None


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays (and other strays) to plain JSON."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


class EventLog:
    """Leveled, schema-tagged JSONL writer with a bounded memory tail."""

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        level: Union[str, int] = "info",
        clock: Callable[[], float] = time.time,
        keep: int = 2048,
    ):
        self.path = Path(path) if path is not None else None
        self.level = _level_no(level)
        self._clock = clock
        self._lock = threading.Lock()
        self.records: Deque[Dict[str, Any]] = deque(maxlen=keep)
        self._fh = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")

    def enabled_for(self, level: Union[str, int]) -> bool:
        return _level_no(level) >= self.level

    def emit(self, kind: str, level: Union[str, int] = "info", **fields: Any) -> None:
        level_no = _level_no(level)
        if level_no < self.level:
            return
        record: Dict[str, Any] = {
            "ts": round(float(self._clock()), 6),
            "level": next(
                (k for k, v in LEVELS.items() if v == level_no), str(level_no)
            ),
            "kind": kind,
        }
        for key, value in fields.items():
            record[key] = _jsonable(value)
        line = json.dumps(record, ensure_ascii=False)
        with self._lock:
            self.records.append(record)
            if self._fh is not None:
                self._fh.write(line + "\n")
                self._fh.flush()

    def tail(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """Recent records (optionally filtered by ``kind``), oldest first."""
        with self._lock:
            records = list(self.records)
        if kind is not None:
            records = [r for r in records if r.get("kind") == kind]
        return records

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Iterate the records of a JSONL event log, skipping torn lines."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record
