"""Metric primitives: counters, gauges, ring-buffer histograms.

Everything here is dependency-free (numpy + stdlib) and cheap enough
to live on serving hot paths: a :class:`Counter` increment is one lock
acquisition and an integer add, a :class:`Histogram` observation is a
ring-buffer write.  Quantiles use the *nearest-rank* method — for
``n`` retained samples sorted ascending, ``q`` maps to element
``max(1, ceil(q * n)) - 1`` — which is exact, deterministic, and easy
to verify on small inputs.

The :class:`MetricsRegistry` keys metrics by ``(name, labels)`` so the
same series can be split per route / per worker / per component, and
renders the whole family in the Prometheus text exposition format
(counters and gauges as-is, histograms as ``summary`` metrics with
p50/p95/p99 quantile samples plus ``_sum``/``_count``).

Snapshots are plain-JSON dicts.  Histogram snapshots carry the retained
ring-buffer samples, so merging two snapshots (sweep resume, per-shard
aggregation) reconstructs quantiles exactly over the union of retained
windows while keeping the *total* count/sum/min/max lossless.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "nearest_rank_quantile",
    "render_prometheus",
]

#: Default ring-buffer window for histograms.
DEFAULT_WINDOW = 512

#: Quantiles exported by snapshots and the Prometheus renderer.
QUANTILES = (0.5, 0.95, 0.99)


def nearest_rank_quantile(sorted_samples: Sequence[float], q: float) -> float:
    """Exact nearest-rank quantile of an ascending-sorted sequence."""
    n = len(sorted_samples)
    if n == 0:
        return float("nan")
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    rank = max(1, math.ceil(q * n))
    return float(sorted_samples[rank - 1])


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "labels", "help", "_value", "_lock")

    def __init__(self, name: str, labels: Mapping[str, str], help: str = ""):
        self.name = name
        self.labels = dict(labels)
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Point-in-time value (queue depth, inflight requests, ...)."""

    __slots__ = ("name", "labels", "help", "_value", "_lock")

    def __init__(self, name: str, labels: Mapping[str, str], help: str = ""):
        self.name = name
        self.labels = dict(labels)
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Ring-buffer histogram with exact quantiles over a sliding window.

    Keeps the last ``window`` observations (default 512) for quantile
    computation plus lossless lifetime ``count``/``sum``/``min``/``max``.
    """

    __slots__ = ("name", "labels", "help", "window", "_buf", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        help: str = "",
        window: int = DEFAULT_WINDOW,
    ):
        if window <= 0:
            raise ValueError("window must be positive")
        self.name = name
        self.labels = dict(labels)
        self.help = help
        self.window = window
        self._buf: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            if len(self._buf) < self.window:
                self._buf.append(value)
            else:
                self._buf[self._count % self.window] = value
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        with self._lock:
            samples = sorted(self._buf)
        return nearest_rank_quantile(samples, q)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            retained = list(self._buf)
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        ordered = sorted(retained)
        snap: Dict[str, Any] = {
            "count": count,
            "sum": total,
            "min": lo if count else None,
            "max": hi if count else None,
            "samples": retained,
        }
        for q in QUANTILES:
            snap[f"p{int(q * 100)}"] = (
                nearest_rank_quantile(ordered, q) if ordered else None
            )
        return snap

    def absorb(self, snap: Mapping[str, Any]) -> None:
        """Merge a :meth:`snapshot` into this histogram.

        Retained samples re-enter the ring buffer; count/sum/min/max
        absorb the snapshot's lossless totals (including observations
        the snapshot's own window had already evicted).
        """
        samples = list(snap.get("samples", ()))
        for value in samples:
            self.observe(value)
        extra = int(snap.get("count", len(samples))) - len(samples)
        with self._lock:
            if extra > 0:
                self._count += extra
                self._sum += float(snap.get("sum", 0.0)) - sum(samples)
            if snap.get("min") is not None:
                self._min = min(self._min, float(snap["min"]))
            if snap.get("max") is not None:
                self._max = max(self._max, float(snap["max"]))


def _series_key(name: str, labels: Mapping[str, str]) -> str:
    """Canonical ``name{k="v",...}`` series key (also the snapshot key)."""
    if not labels:
        return name
    body = ",".join(f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items()))
    return f"{name}{{{body}}}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _parse_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: Dict[str, str] = {}
    for part in rest.rstrip("}").split('",'):
        if not part:
            continue
        k, _, v = part.partition('="')
        labels[k.strip(",")] = v.rstrip('"').replace('\\"', '"').replace("\\\\", "\\")
    return name, labels


class MetricsRegistry:
    """Process-wide family of named, labelled metric series."""

    def __init__(self):
        self._lock = threading.Lock()
        self._series: Dict[str, Any] = {}

    # -- constructors ---------------------------------------------------
    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get(Counter, name, labels, help)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(Gauge, name, labels, help)

    def histogram(
        self, name: str, help: str = "", window: int = DEFAULT_WINDOW, **labels: str
    ) -> Histogram:
        key = _series_key(name, labels)
        with self._lock:
            metric = self._series.get(key)
            if metric is None:
                metric = Histogram(name, labels, help=help, window=window)
                self._series[key] = metric
            elif not isinstance(metric, Histogram):
                raise TypeError(f"metric {key!r} already registered as {type(metric).__name__}")
        return metric

    def _get(self, cls, name: str, labels: Mapping[str, str], help: str):
        key = _series_key(name, labels)
        with self._lock:
            metric = self._series.get(key)
            if metric is None:
                metric = cls(name, labels, help=help)
                self._series[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(f"metric {key!r} already registered as {type(metric).__name__}")
        return metric

    # -- introspection --------------------------------------------------
    def series(self) -> Dict[str, Any]:
        with self._lock:
            return dict(self._series)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-JSON snapshot: ``{"counters": ..., "gauges": ..., "histograms": ...}``."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Any] = {}
        for key, metric in self.series().items():
            if isinstance(metric, Counter):
                counters[key] = metric.value
            elif isinstance(metric, Gauge):
                gauges[key] = metric.value
            elif isinstance(metric, Histogram):
                histograms[key] = metric.snapshot()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge_snapshot(self, snap: Optional[Mapping[str, Any]]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters add, gauges take the incoming value (last writer wins),
        histograms :meth:`Histogram.absorb` — the rule used when a sweep
        aggregates per-shard snapshots, fresh or reloaded on resume.
        """
        if not snap:
            return
        for key, value in snap.get("counters", {}).items():
            name, labels = _parse_series_key(key)
            self.counter(name, **labels).inc(value)
        for key, value in snap.get("gauges", {}).items():
            name, labels = _parse_series_key(key)
            self.gauge(name, **labels).set(value)
        for key, hsnap in snap.get("histograms", {}).items():
            name, labels = _parse_series_key(key)
            self.histogram(name, **labels).absorb(hsnap)


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Counters and gauges emit one sample per label set; histograms emit
    as ``summary`` metrics (p50/p95/p99 ``quantile`` samples plus
    ``_sum`` and ``_count``).  Families are grouped under one
    ``# HELP``/``# TYPE`` header each, as the format requires.
    """
    families: Dict[str, List[Any]] = {}
    for metric in registry.series().values():
        families.setdefault(metric.name, []).append(metric)

    lines: List[str] = []
    for name in sorted(families):
        metrics = families[name]
        first = metrics[0]
        kind = (
            "counter"
            if isinstance(first, Counter)
            else "gauge" if isinstance(first, Gauge) else "summary"
        )
        help_text = next((m.help for m in metrics if m.help), "")
        if help_text:
            lines.append(f"# HELP {name} {_escape(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for metric in sorted(metrics, key=lambda m: sorted(m.labels.items())):
            if isinstance(metric, Histogram):
                for q in QUANTILES:
                    labels = dict(metric.labels)
                    labels["quantile"] = str(q)
                    value = metric.quantile(q) if metric.count else float("nan")
                    lines.append(f"{_series_key(name, labels)} {_format_value(value)}")
                lines.append(
                    f"{_series_key(name + '_sum', metric.labels)} "
                    f"{_format_value(metric.sum)}"
                )
                lines.append(
                    f"{_series_key(name + '_count', metric.labels)} {metric.count}"
                )
            else:
                lines.append(
                    f"{_series_key(name, metric.labels)} {_format_value(metric.value)}"
                )
    return "\n".join(lines) + "\n" if lines else "\n"
