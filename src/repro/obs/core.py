"""The ``Obs`` handle: one object that owns metrics + events + spans.

Design contract (the crown-jewel invariant depends on it):

* The process-global default is :data:`NULL_OBS`, a **true null
  object** — every method is a no-op returning a shared singleton, so
  an uninstrumented process allocates nothing, touches no RNG, and an
  instrumented hot path pays exactly one attribute check
  (``if obs.enabled:``) before skipping all observability work.
* A real :class:`Obs` bundles a :class:`~repro.obs.metrics.
  MetricsRegistry`, an :class:`~repro.obs.events.EventLog`, and
  nestable :meth:`Obs.span` timers whose nesting stack is
  *thread-local* — the ``MicroBatcher`` leader thread and supervisor
  dispatch threads each get their own stack, so span paths never
  interleave across threads.
* Instrumentation must never perturb numerics: handles only read
  clocks and write metric/event sinks.  The bench ``observability``
  section gates bit-parity of training/backtest/serving outputs with
  obs enabled vs. disabled.

Spans emit a single ``span`` event on exit (``span`` = the ``/``-joined
nesting path, ``seconds`` = duration) and feed a per-leaf-name
``repro_span_seconds`` histogram, so exits are recorded in completion
(LIFO) order per thread — deterministic for a fixed workload.
"""

from __future__ import annotations

import contextlib
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from .events import EventLog
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "NULL_OBS",
    "NullObs",
    "Obs",
    "Span",
    "configure",
    "get_obs",
    "set_obs",
    "use_obs",
]


class _NullMetric:
    """Shared no-op stand-in for Counter/Gauge/Histogram."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class _NullSpan:
    """Shared no-op context manager; ``elapsed`` is always 0.0."""

    __slots__ = ()
    elapsed = 0.0
    path = ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullObs:
    """The disabled observability handle — allocates nothing, ever."""

    __slots__ = ()
    enabled = False

    def counter(self, name: str, help: str = "", **labels) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "", **labels) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, help: str = "", window: int = 0, **labels) -> _NullMetric:
        return _NULL_METRIC

    def event(self, kind: str, level: str = "info", **fields) -> None:
        pass

    def span(self, name: str, level: str = "debug", **fields) -> _NullSpan:
        return _NULL_SPAN

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def close(self) -> None:
        pass


#: The process-global default handle.
NULL_OBS = NullObs()


class Span:
    """Nestable timing scope; records on exit.

    ``path`` is the ``/``-joined chain of enclosing span names on the
    *current thread* (stacks are thread-local).  On exit it emits one
    ``span`` event and observes ``repro_span_seconds{span=<leaf>}``.
    """

    __slots__ = ("_obs", "name", "level", "fields", "path", "elapsed", "_t0")

    def __init__(self, obs: "Obs", name: str, level: str, fields: Dict[str, Any]):
        self._obs = obs
        self.name = name
        self.level = level
        self.fields = fields
        self.path = name
        self.elapsed = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        stack = self._obs._span_stack()
        stack.append(self.name)
        self.path = "/".join(stack)
        self._t0 = self._obs._timer()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = self._obs._timer() - self._t0
        stack = self._obs._span_stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        fields = dict(self.fields)
        if exc_type is not None:
            fields["error"] = exc_type.__name__
        self._obs.events.emit(
            "span", level=self.level, span=self.path,
            seconds=round(self.elapsed, 9), **fields,
        )
        self._obs.metrics.histogram(
            "repro_span_seconds", help="span durations by leaf name", span=self.name
        ).observe(self.elapsed)
        return False


class Obs:
    """An enabled observability handle (metrics + events + spans)."""

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
        timer: Callable[[], float] = time.perf_counter,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EventLog()
        self._timer = timer
        self._local = threading.local()

    # -- metrics --------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self.metrics.counter(name, help=help, **labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self.metrics.gauge(name, help=help, **labels)

    def histogram(self, name: str, help: str = "", window: int = 512, **labels) -> Histogram:
        return self.metrics.histogram(name, help=help, window=window, **labels)

    # -- events ---------------------------------------------------------
    def event(self, kind: str, level: str = "info", **fields) -> None:
        self.events.emit(kind, level=level, **fields)

    # -- spans ----------------------------------------------------------
    def _span_stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, level: str = "debug", **fields) -> Span:
        return Span(self, name, level, fields)

    # -- lifecycle ------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-JSON state: the metric registry snapshot + event count."""
        snap = self.metrics.snapshot()
        snap["events_seen"] = len(self.events.records)
        return snap

    def close(self) -> None:
        self.events.close()


# ---------------------------------------------------------------------
# Process-global handle.
# ---------------------------------------------------------------------
_GLOBAL: Union[Obs, NullObs] = NULL_OBS
_GLOBAL_LOCK = threading.Lock()


def get_obs() -> Union[Obs, NullObs]:
    """The process-global observability handle (default: :data:`NULL_OBS`)."""
    return _GLOBAL


def set_obs(obs: Optional[Union[Obs, NullObs]]) -> Union[Obs, NullObs]:
    """Install ``obs`` (``None`` → null) globally; returns the previous handle."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        previous = _GLOBAL
        _GLOBAL = obs if obs is not None else NULL_OBS
    return previous


@contextlib.contextmanager
def use_obs(obs: Optional[Union[Obs, NullObs]]) -> Iterator[Union[Obs, NullObs]]:
    """Scoped :func:`set_obs` — restores the previous handle on exit."""
    previous = set_obs(obs)
    try:
        yield get_obs()
    finally:
        set_obs(previous)


def configure(
    obs_dir: Optional[Union[str, Path]] = None,
    level: str = "info",
    events_name: str = "events.jsonl",
    install: bool = True,
) -> Obs:
    """Build an enabled :class:`Obs` and (by default) install it globally.

    With ``obs_dir`` set, events append to ``<obs_dir>/<events_name>``;
    without it the log is memory-only (metrics still record).
    """
    path = None
    if obs_dir is not None:
        path = Path(obs_dir) / events_name
    obs = Obs(events=EventLog(path=path, level=level))
    if install:
        set_obs(obs)
    return obs
