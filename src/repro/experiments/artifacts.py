"""Unified on-disk artifact store for experiment outputs.

One layout, one API, three consumers: sweep shards write through it,
table rendering and benches read metrics back through it, and
:mod:`repro.serving` loads trained strategies from it.  Everything is
plain ``npz`` + ``json`` (via :mod:`repro.utils.serialization`), so a
store survives refactors of the in-memory classes.

Layout::

    <root>/
      manifest.json                     # sweep spec + shard index
      shards/<shard_id>/
        shard.json                      # spec, strategy spec, metrics, "complete"
        series.npz                      # back-test trajectories
        weights.npz                     # network state dict (learned strategies)
        trainer.npz                     # resumable trainer counters (history)
      experiments/<key>/
        experiment.json                 # config + per-strategy metrics
        market.npz                      # the back-test panel
        backtest_<i>.npz                # per-strategy trajectories
        agent_<name>.npz                # learned agents' weights

``shard.json`` is written *last* with ``"complete": true`` — the commit
point.  A shard directory without it (a killed worker) is treated as
absent and re-run; :meth:`ArtifactStore.has_shard` is what gives the
sweep engine its checkpoint/resume semantics.  The commit record also
carries a sha256 checksum per array file: :meth:`has_shard` re-verifies
them on resume (a corrupt shard reads as absent and is re-run), and
:meth:`load_shard` raises :class:`ArtifactCorrupt` naming the bad file
rather than handing back silently damaged arrays.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional

import numpy as np

from ..data.market import MarketData, market_from_state, market_to_state
from ..envs.backtester import BacktestResult
from ..metrics import BacktestMetrics
from ..registry import DEFAULT_REGISTRY, StrategyRegistry
from ..utils.serialization import (
    PathLike,
    decode_tagged,
    encode_tagged,
    load_json,
    load_state_dict,
    save_json,
    save_state_dict,
)
from .spec import ShardSpec, decode_experiment_config, encode_experiment_config

if TYPE_CHECKING:
    from ..agents.base import Agent
    from .runner import ExperimentResult

_SERIES_KEYS = ("values", "weights", "rewards", "mus")


class ArtifactCorrupt(RuntimeError):
    """A stored artifact's bytes do not match its recorded checksum."""


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _metrics_to_dict(metrics: BacktestMetrics) -> Dict[str, float]:
    return {
        "fapv": metrics.fapv,
        "sharpe": metrics.sharpe,
        "mdd": metrics.mdd,
        "sortino": metrics.sortino,
        "calmar": metrics.calmar,
        "annual_volatility": metrics.annual_volatility,
        "hit_rate": metrics.hit_rate,
        "num_periods": metrics.num_periods,
    }


def _metrics_from_dict(payload: Dict[str, Any]) -> BacktestMetrics:
    return BacktestMetrics(
        fapv=float(payload["fapv"]),
        sharpe=float(payload["sharpe"]),
        mdd=float(payload["mdd"]),
        sortino=float(payload["sortino"]),
        calmar=float(payload["calmar"]),
        annual_volatility=float(payload["annual_volatility"]),
        hit_rate=float(payload["hit_rate"]),
        num_periods=int(payload["num_periods"]),
    )


def execution_metrics_from_summary(summary: Dict[str, Any]) -> Dict[str, float]:
    """Execution-summary entries that ride along with fAPV/MDD.

    The single mapping both ``run_shard`` (fresh runs) and
    :meth:`ArtifactStore.load_shard_metrics` (resumed skips) apply, so
    a resumed sweep aggregates identically to the run that committed
    the shard.
    """
    return {
        "shortfall": float(summary["implementation_shortfall"]),
        "fill_ratio": float(summary["mean_fill_ratio"]),
    }


def risk_metrics_from_summary(summary: Dict[str, Any]) -> Dict[str, float]:
    """Risk-summary entries that ride along with fAPV/MDD.

    Same contract as :func:`execution_metrics_from_summary`: applied by
    both ``run_shard`` (fresh runs) and
    :meth:`ArtifactStore.load_shard_metrics` (resumed skips), so a
    resumed sweep aggregates identically to the run that committed the
    shard.
    """
    return {
        "violation_rate": float(summary["violation_rate"]),
        "lockout_rate": float(summary["lockout_rate"]),
        "risk_turnover": float(summary["mean_post_turnover"]),
    }


def _result_to_series(result: BacktestResult) -> Dict[str, np.ndarray]:
    return {
        "values": np.asarray(result.values),
        "weights": np.asarray(result.weights),
        "rewards": np.asarray(result.rewards),
        "mus": np.asarray(result.mus),
    }


def _result_from_parts(
    agent_name: str, series: Dict[str, np.ndarray], metrics: BacktestMetrics
) -> BacktestResult:
    return BacktestResult(
        agent_name=agent_name,
        values=series["values"],
        weights=series["weights"],
        rewards=series["rewards"],
        mus=series["mus"],
        metrics=metrics,
    )


@dataclass
class ShardArtifact:
    """Everything one executed shard persists.

    ``strategy_spec`` is the registry-shape ``{"strategy", "params"}``
    dict (decoded form) with which the shard's agent was constructed —
    the contract that lets :meth:`ArtifactStore.load_agent` rebuild it
    identically.
    """

    shard: ShardSpec
    strategy_spec: Dict[str, Any]
    metrics: BacktestMetrics
    series: Dict[str, np.ndarray]
    weights_state: Optional[Dict[str, np.ndarray]] = None
    history: Optional[Dict[str, List[float]]] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def shard_id(self) -> str:
        return self.shard.shard_id

    def to_backtest_result(self) -> BacktestResult:
        """The shard's back-test as a live :class:`BacktestResult`."""
        return _result_from_parts(
            self.strategy_spec["strategy"], self.series, self.metrics
        )


class ArtifactStore:
    """Directory-backed store for sweep shards and experiment results."""

    def __init__(self, root: PathLike):
        self.root = Path(root)

    # -- layout --------------------------------------------------------
    def shard_dir(self, shard_id: str) -> Path:
        return self.root / "shards" / shard_id

    def experiment_dir(self, key: str) -> Path:
        return self.root / "experiments" / key

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    # -- shards --------------------------------------------------------
    def has_shard(self, shard_id: str) -> bool:
        """True when the shard committed (``shard.json`` marked complete).

        Partial directories from a killed worker read as absent, which
        is exactly the resume semantic: incomplete work is redone,
        committed work is skipped.
        """
        path = self.shard_dir(shard_id) / "shard.json"
        if not path.exists():
            return False
        try:
            payload = load_json(path)
        except ValueError:
            return False
        if not payload.get("complete"):
            return False
        # Resume-time integrity: a committed shard whose arrays no longer
        # match their recorded checksums is treated as absent and re-run.
        return self._corrupt_file(shard_id, payload) is None

    def _corrupt_file(
        self, shard_id: str, payload: Dict[str, Any]
    ) -> Optional[str]:
        """Name of the first artifact file failing its checksum, if any.

        Stores written before checksums existed (no ``"checksums"`` key)
        verify trivially.
        """
        checksums = payload.get("checksums")
        if not checksums:
            return None
        directory = self.shard_dir(shard_id)
        for name, expected in sorted(checksums.items()):
            target = directory / name
            if not target.exists() or _sha256(target) != str(expected):
                return name
        return None

    def list_shards(self) -> List[str]:
        """Sorted ids of every *committed* shard in the store."""
        shards_dir = self.root / "shards"
        if not shards_dir.is_dir():
            return []
        return sorted(
            p.name for p in shards_dir.iterdir() if self.has_shard(p.name)
        )

    def save_shard(self, artifact: ShardArtifact) -> Path:
        """Persist a shard; ``shard.json`` lands last as the commit mark."""
        directory = self.shard_dir(artifact.shard_id)
        directory.mkdir(parents=True, exist_ok=True)
        save_state_dict(directory / "series.npz", artifact.series)
        checksums = {"series.npz": _sha256(directory / "series.npz")}
        if artifact.weights_state is not None:
            save_state_dict(directory / "weights.npz", artifact.weights_state)
            checksums["weights.npz"] = _sha256(directory / "weights.npz")
        payload = {
            "version": 1,
            "checksums": checksums,
            "shard": artifact.shard.to_json_dict(),
            "strategy": {
                "strategy": artifact.strategy_spec["strategy"],
                "params": encode_tagged(artifact.strategy_spec["params"]),
            },
            "metrics": _metrics_to_dict(artifact.metrics),
            "history": artifact.history,
            "has_weights": artifact.weights_state is not None,
            "extra": encode_tagged(artifact.extra),
            "complete": True,
        }
        save_json(directory / "shard.json", payload)
        return directory

    def load_shard(self, shard_id: str) -> ShardArtifact:
        """Load a committed shard back into memory."""
        directory = self.shard_dir(shard_id)
        payload = load_json(directory / "shard.json")
        if not payload.get("complete"):
            raise FileNotFoundError(f"shard {shard_id!r} is incomplete")
        bad = self._corrupt_file(shard_id, payload)
        if bad is not None:
            raise ArtifactCorrupt(
                f"shard {shard_id!r}: {bad} does not match its recorded "
                f"checksum ({directory / bad})"
            )
        weights = None
        if payload.get("has_weights"):
            weights = load_state_dict(directory / "weights.npz")
        return ShardArtifact(
            shard=ShardSpec.from_json_dict(payload["shard"]),
            strategy_spec={
                "strategy": payload["strategy"]["strategy"],
                "params": decode_tagged(payload["strategy"]["params"]),
            },
            metrics=_metrics_from_dict(payload["metrics"]),
            series=load_state_dict(directory / "series.npz"),
            weights_state=weights,
            history=payload.get("history"),
            extra=decode_tagged(payload.get("extra") or {}),
        )

    def _shard_json(self, shard_id: str) -> Dict[str, Any]:
        payload = load_json(self.shard_dir(shard_id) / "shard.json")
        if not payload.get("complete"):
            raise FileNotFoundError(f"shard {shard_id!r} is incomplete")
        return payload

    def load_shard_metrics(self, shard_id: str) -> Dict[str, float]:
        """Metrics-only read (what table rendering needs) — no arrays.

        Shards run under a non-ideal execution regime merge their
        persisted implementation-shortfall summary back in, so a
        resumed sweep aggregates identically to the run that committed
        the shard.
        """
        payload = self._shard_json(shard_id)
        metrics = dict(payload["metrics"])
        extra = payload.get("extra") or {}
        execution = extra.get("execution")
        if execution:
            metrics.update(execution_metrics_from_summary(execution))
        risk = extra.get("risk")
        if risk:
            metrics.update(risk_metrics_from_summary(risk))
        return metrics

    def load_shard_obs(self, shard_id: str) -> Optional[Dict[str, Any]]:
        """The shard's persisted obs snapshot (``extra["obs"]``), if any.

        Shards run with observability enabled commit the snapshot their
        per-shard :class:`~repro.obs.Obs` took (counters, gauges,
        histogram windows).  A resumed sweep merges these back into its
        registry exactly like the execution/risk metric ride-alongs, so
        the aggregated obs view is independent of interruption.  JSON
        only — no array reads.
        """
        extra = self._shard_json(shard_id).get("extra") or {}
        snap = extra.get("obs")
        return dict(snap) if isinstance(snap, dict) else None

    def load_strategy_spec(self, shard_id: str) -> Dict[str, Any]:
        """The shard's ``{"strategy", "params"}`` spec — json only, no
        npz reads (what a serving warm path needs)."""
        payload = self._shard_json(shard_id)
        return {
            "strategy": payload["strategy"]["strategy"],
            "params": decode_tagged(payload["strategy"]["params"]),
        }

    def load_agent(
        self, shard_id: str, registry: Optional[StrategyRegistry] = None
    ) -> "Agent":
        """Rebuild the shard's strategy, trained weights included.

        This is the checkpoint-loading path :mod:`repro.serving` uses:
        the stored constructor params reproduce the exact agent the
        shard ran, then the persisted network state overwrites the
        fresh initialisation.  Reads only ``shard.json`` plus
        ``weights.npz`` — never the trajectory arrays.
        """
        registry = registry if registry is not None else DEFAULT_REGISTRY
        payload = self._shard_json(shard_id)
        spec = {
            "strategy": payload["strategy"]["strategy"],
            "params": decode_tagged(payload["strategy"]["params"]),
        }
        agent = registry.create(spec["strategy"], **spec["params"])
        if payload.get("has_weights"):
            path = self.shard_dir(shard_id) / "weights.npz"
            expected = (payload.get("checksums") or {}).get("weights.npz")
            if expected is not None and (
                not path.exists() or _sha256(path) != str(expected)
            ):
                raise ArtifactCorrupt(
                    f"shard {shard_id!r}: weights.npz does not match its "
                    f"recorded checksum ({path})"
                )
            agent.network.load_state_dict(load_state_dict(path))
        return agent

    # -- manifest ------------------------------------------------------
    def write_manifest(self, payload: Dict[str, Any]) -> Path:
        save_json(self.manifest_path, payload)
        return self.manifest_path

    def read_manifest(self) -> Dict[str, Any]:
        return load_json(self.manifest_path)

    # -- ExperimentResult round-trip ----------------------------------
    def save_experiment(self, key: str, result: "ExperimentResult") -> Path:
        """Persist a full :class:`ExperimentResult` under ``key``."""
        directory = self.experiment_dir(key)
        directory.mkdir(parents=True, exist_ok=True)
        names = sorted(result.backtests)
        backtests_payload = []
        for i, name in enumerate(names):
            bt = result.backtests[name]
            save_state_dict(directory / f"backtest_{i}.npz", _result_to_series(bt))
            backtests_payload.append(
                {
                    "name": name,
                    "file": f"backtest_{i}.npz",
                    "metrics": _metrics_to_dict(bt.metrics),
                }
            )
        agents_payload = {}
        for label, agent in (("sdp", result.sdp_agent), ("drl", result.drl_agent)):
            if agent is None:
                continue
            save_state_dict(
                directory / f"agent_{label}.npz", agent.network.state_dict()
            )
            agents_payload[label] = f"agent_{label}.npz"
        if result.test_data is not None:
            save_state_dict(directory / "market.npz", market_to_state(result.test_data))
        save_json(
            directory / "experiment.json",
            {
                "version": 1,
                "config": encode_experiment_config(result.config),
                "assets": list(result.assets),
                "backtests": backtests_payload,
                "agents": agents_payload,
                "has_test_data": result.test_data is not None,
                "sdp_history": _history_to_dict(result.sdp_history),
                "drl_history": _history_to_dict(result.drl_history),
                "complete": True,
            },
        )
        return directory

    def load_experiment(self, key: str) -> "ExperimentResult":
        """Rebuild an :class:`ExperimentResult` saved by
        :meth:`save_experiment` — metrics bit-exact from the manifest,
        trajectories from npz, and the learned agents reconstructed from
        the stored config with their trained weights loaded."""
        from ..registry import strategy_from_config
        from .runner import ExperimentResult

        directory = self.experiment_dir(key)
        payload = load_json(directory / "experiment.json")
        config = decode_experiment_config(payload["config"])
        assets = [str(a) for a in payload["assets"]]

        backtests = {}
        for entry in payload["backtests"]:
            series = load_state_dict(directory / entry["file"])
            backtests[entry["name"]] = _result_from_parts(
                entry["name"], series, _metrics_from_dict(entry["metrics"])
            )

        agents: Dict[str, Any] = {"sdp": None, "drl": None}
        for label, filename in payload["agents"].items():
            name = "sdp" if label == "sdp" else "jiang"
            agent = strategy_from_config(name, config, n_assets=len(assets))
            agent.network.load_state_dict(load_state_dict(directory / filename))
            agents[label] = agent

        test_data: Optional[MarketData] = None
        if payload.get("has_test_data"):
            test_data = market_from_state(load_state_dict(directory / "market.npz"))

        return ExperimentResult(
            config=config,
            assets=assets,
            backtests=backtests,
            sdp_history=_history_from_dict(payload["sdp_history"]),
            drl_history=_history_from_dict(payload["drl_history"]),
            sdp_agent=agents["sdp"],
            drl_agent=agents["drl"],
            test_data=test_data,
        )


def _history_to_dict(history) -> Dict[str, List[float]]:
    if history is None:
        return {"steps": [], "loss": [], "reward": []}
    return {
        "steps": list(history.steps),
        "loss": list(history.loss),
        "reward": list(history.reward),
    }


def _history_from_dict(payload: Dict[str, List[float]]):
    from ..agents.trainer import TrainHistory

    history = TrainHistory()
    for step, loss, reward in zip(
        payload["steps"], payload["loss"], payload["reward"]
    ):
        history.record(int(step), float(loss), float(reward))
    return history
