"""End-to-end experiment runner regenerating the paper's tables.

``run_experiment`` executes one column-block of Table 3: build the
synthetic market, select the top-11-by-volume universe as of the
back-test start, train SDP and DRL[Jiang] on the training span, and
back-test every strategy on the hold-out span.  ``run_power_comparison``
produces the corresponding Table 4 rows from the trained agents and the
device models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..agents import (
    Agent,
    BacktestResult,
    JiangDRLAgent,
    MultiSeedTrainer,
    PolicyTrainer,
    SDPAgent,
    TrainConfig,
    TrainHistory,
    run_backtest,
)
from ..autograd.optim import Adam
from ..baselines import table3_baselines
from ..data import MarketData, MarketGenerator, top_volume_assets
from ..loihi import (
    EnergyReport,
    deploy,
    energy_reduction_ratio,
    paper_cpu_model,
    paper_gpu_model,
    paper_loihi_model,
)
from ..registry import strategy_from_config
from .config import ExperimentConfig


@dataclass
class ExperimentData:
    """Market panels of one experiment (after universe selection)."""

    assets: List[str]
    train: MarketData
    test: MarketData


def build_experiment_data(config: ExperimentConfig) -> ExperimentData:
    """Generate the market and apply Table 1's window + top-k selection."""
    generator = MarketGenerator(seed=config.market_seed)
    full = generator.generate(
        config.window.train_start,
        config.window.test_end,
        period_seconds=config.period_seconds,
    )
    assets = top_volume_assets(full, config.window.test_start, k=config.num_assets)
    panel = full.select_assets(assets)
    train, test = config.window.split(panel)
    return ExperimentData(assets=assets, train=train, test=test)


@dataclass
class ExperimentResult:
    """Everything one Table 3 experiment produces."""

    config: ExperimentConfig
    assets: List[str]
    backtests: Dict[str, BacktestResult]
    sdp_history: TrainHistory
    drl_history: TrainHistory
    sdp_agent: Optional[SDPAgent] = field(repr=False, default=None)
    drl_agent: Optional[JiangDRLAgent] = field(repr=False, default=None)
    test_data: Optional[MarketData] = field(repr=False, default=None)

    def table3_rows(self) -> List[Tuple[str, float, float, float]]:
        """(strategy, MDD, fAPV, Sharpe) rows in the paper's order."""
        order = ["SDP", "DRL[Jiang]", "ONS", "Best Stock", "ANTICOR", "M0", "UCRP"]
        rows = []
        for name in order:
            if name not in self.backtests:
                continue
            r = self.backtests[name]
            rows.append((name, r.mdd, r.fapv, r.sharpe))
        for name, r in self.backtests.items():
            if name not in order:
                rows.append((name, r.mdd, r.fapv, r.sharpe))
        return rows


def make_trainer(
    agent: Agent,
    panel: MarketData,
    config: ExperimentConfig,
    optimizer=None,
    seed: Optional[int] = None,
) -> PolicyTrainer:
    """The experiment harness's trainer wiring, in one place.

    Adam at the config's learning rate (unless an ``optimizer`` is
    carried in, e.g. across walk-forward folds), the paper's minibatch
    settings, permute-assets augmentation, and the config's agent seed
    (overridable for per-fold streams).  ``run_experiment``, the sweep
    engine's shards, and walk-forward fine-tuning all train through
    this — change it here and every path trains identically.
    """
    if optimizer is None:
        optimizer = Adam(agent.parameters(), config.learning_rate)
    return PolicyTrainer(
        agent,
        panel,
        optimizer,
        observation=config.observation,
        config=TrainConfig(
            steps=config.train_steps,
            batch_size=config.batch_size,
            commission=config.commission,
            permute_assets=True,
        ),
        seed=config.agent_seed if seed is None else seed,
    )


def make_multiseed_trainer(
    agents: List[Agent],
    panel: MarketData,
    configs: List[ExperimentConfig],
    backend=None,
) -> MultiSeedTrainer:
    """:func:`make_trainer`'s wiring for a same-config seed group.

    ``configs`` differ only in ``agent_seed`` (one per agent); every
    other field — steps, batch size, commission, learning rate — must
    be identical, which the caller guarantees by grouping shards on
    everything except the seed axis.  Each agent gets its own Adam at
    the shared learning rate, and the per-seed RNG streams come from
    each config's ``agent_seed`` — exactly what a serial
    :func:`make_trainer` run with that seed would consume, which is
    what keeps the stacked run bit-identical per seed.
    """
    if len(agents) != len(configs):
        raise ValueError(
            f"got {len(agents)} agents for {len(configs)} configs"
        )
    config = configs[0]
    return MultiSeedTrainer(
        agents,
        panel,
        [Adam(agent.parameters(), config.learning_rate) for agent in agents],
        observation=config.observation,
        config=TrainConfig(
            steps=config.train_steps,
            batch_size=config.batch_size,
            commission=config.commission,
            permute_assets=True,
        ),
        seeds=[c.agent_seed for c in configs],
        backend=backend,
    )


def train_agent(
    name: str, config: ExperimentConfig, data: ExperimentData
) -> Tuple[Agent, TrainHistory]:
    """Train a learned strategy on the experiment's training panel:
    registry construction from the config plus :func:`make_trainer`."""
    agent = strategy_from_config(name, config, n_assets=len(data.assets))
    history = make_trainer(agent, data.train, config).train()
    return agent, history


def train_sdp_agent(
    config: ExperimentConfig, data: ExperimentData
) -> Tuple[SDPAgent, TrainHistory]:
    """Train the paper's SDP agent on the experiment's training panel."""
    return train_agent("sdp", config, data)


def train_drl_agent(
    config: ExperimentConfig, data: ExperimentData
) -> Tuple[JiangDRLAgent, TrainHistory]:
    """Train the DRL[Jiang] EIIE baseline on the same panel."""
    return train_agent("jiang", config, data)


def run_experiment(
    config: ExperimentConfig,
    include_baselines: bool = True,
    data: Optional[ExperimentData] = None,
    sdp: Optional[Tuple[SDPAgent, TrainHistory]] = None,
    drl: Optional[Tuple[JiangDRLAgent, TrainHistory]] = None,
) -> ExperimentResult:
    """Run one Table 3 experiment end to end.

    ``data`` and the trained agent pairs (``sdp``/``drl``, as returned
    by :func:`train_sdp_agent` / :func:`train_drl_agent`) are reused
    when supplied instead of re-derived — a caller that already built
    the panels or trained the agents (the power comparison, a sweep
    shard, a notebook iterating on baselines) back-tests without paying
    for generation or training again.
    """
    data = data if data is not None else build_experiment_data(config)
    sdp_agent, sdp_history = sdp if sdp is not None else train_sdp_agent(config, data)
    drl_agent, drl_history = drl if drl is not None else train_drl_agent(config, data)

    agents = [sdp_agent, drl_agent]
    if include_baselines:
        agents.extend(table3_baselines())

    backtests = {}
    for agent in agents:
        backtests[agent.name] = run_backtest(
            agent,
            data.test,
            observation=config.observation,
            commission=config.commission,
        )
    return ExperimentResult(
        config=config,
        assets=data.assets,
        backtests=backtests,
        sdp_history=sdp_history,
        drl_history=drl_history,
        sdp_agent=sdp_agent,
        drl_agent=drl_agent,
        test_data=data.test,
    )


@dataclass
class PowerComparison:
    """Table 4 rows for one experiment + the headline ratios."""

    experiment: int
    drl_cpu: EnergyReport
    drl_gpu: EnergyReport
    sdp_loihi: EnergyReport
    cpu_reduction: float
    gpu_reduction: float

    def rows(self) -> List[Tuple[str, str, float, float, float, float]]:
        out = []
        for label, device, rep in (
            (f"DRL-Exp{self.experiment}", "CPU", self.drl_cpu),
            (f"DRL-Exp{self.experiment}", "GPU", self.drl_gpu),
            (f"SDP-Exp{self.experiment}", "Loihi (T=5)", self.sdp_loihi),
        ):
            out.append(
                (
                    label,
                    device,
                    rep.idle_power_w,
                    rep.dynamic_power_w,
                    rep.inferences_per_s,
                    rep.nj_per_inference,
                )
            )
        return out


def run_power_comparison(
    result: ExperimentResult, num_states: int = 64
) -> PowerComparison:
    """Profile the trained agents on the Table 4 device models.

    The SDP agent's spike activity is measured on real back-test states;
    the DRL agent's MAC count feeds the CPU/GPU models.
    """
    config = result.config
    experiment = config.experiment
    deployment = deploy(result.sdp_agent.network, device=paper_loihi_model(experiment))

    data = result.test_data
    first = config.observation.first_decision_index()
    indices = np.linspace(
        first, data.n_periods - 2, num=min(num_states, data.n_periods - 1 - first),
        dtype=np.int64,
    )
    uniform = np.full(
        (indices.shape[0], data.n_assets + 1), 1.0 / (data.n_assets + 1)
    )
    # Architecture-aware state construction (flat or per-asset).
    states = result.sdp_agent.prepare_states(data, indices, uniform)

    sdp_report = deployment.profile(states, name="Loihi (T=5)")
    macs = result.drl_agent.macs_per_inference()
    cpu_report = paper_cpu_model(experiment).report(macs)
    gpu_report = paper_gpu_model(experiment).report(macs)
    return PowerComparison(
        experiment=experiment,
        drl_cpu=cpu_report,
        drl_gpu=gpu_report,
        sdp_loihi=sdp_report,
        cpu_reduction=energy_reduction_ratio(cpu_report, sdp_report),
        gpu_reduction=energy_reduction_ratio(gpu_report, sdp_report),
    )
