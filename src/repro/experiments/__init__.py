"""Experiment harness: Table 1/2 configs, end-to-end runners, table rendering."""

from .config import (
    PAPER_HYPERPARAMETERS,
    ExperimentConfig,
    available_profiles,
    make_config,
)
from .runner import (
    ExperimentData,
    ExperimentResult,
    PowerComparison,
    build_experiment_data,
    run_experiment,
    run_power_comparison,
    train_drl_agent,
    train_sdp_agent,
)
from .tables import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    render_table3,
    render_table4,
    summarize_shape_check,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentData",
    "ExperimentResult",
    "PAPER_HYPERPARAMETERS",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PowerComparison",
    "available_profiles",
    "build_experiment_data",
    "make_config",
    "render_table3",
    "render_table4",
    "run_experiment",
    "run_power_comparison",
    "summarize_shape_check",
    "train_drl_agent",
    "train_sdp_agent",
]
