"""Experiment harness: Table 1/2 configs, the sharded sweep engine,
walk-forward evaluation, the artifact store, and table rendering."""

from .artifacts import ArtifactStore, ShardArtifact
from .config import (
    PAPER_HYPERPARAMETERS,
    ExperimentConfig,
    available_profiles,
    make_config,
)
from .engine import ShardOutcome, SweepResult, SweepRunner, run_shard
from .runner import (
    ExperimentData,
    ExperimentResult,
    PowerComparison,
    build_experiment_data,
    make_trainer,
    run_experiment,
    run_power_comparison,
    train_agent,
    train_drl_agent,
    train_sdp_agent,
)
from .spec import (
    DEFAULT_COST_REGIMES,
    CostRegime,
    ExperimentSpec,
    ShardSpec,
    decode_experiment_config,
    encode_experiment_config,
)
from .tables import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    render_regime_table,
    render_sweep_table,
    render_table3,
    render_table4,
    render_walkforward_table,
    summarize_shape_check,
)
from .walkforward import (
    FoldRecord,
    WalkForwardEvaluator,
    WalkForwardReport,
    per_regime_metrics,
)

__all__ = [
    "ArtifactStore",
    "CostRegime",
    "DEFAULT_COST_REGIMES",
    "ExperimentConfig",
    "ExperimentData",
    "ExperimentResult",
    "ExperimentSpec",
    "FoldRecord",
    "PAPER_HYPERPARAMETERS",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PowerComparison",
    "ShardArtifact",
    "ShardOutcome",
    "ShardSpec",
    "SweepResult",
    "SweepRunner",
    "WalkForwardEvaluator",
    "WalkForwardReport",
    "available_profiles",
    "build_experiment_data",
    "decode_experiment_config",
    "encode_experiment_config",
    "make_config",
    "make_trainer",
    "per_regime_metrics",
    "render_regime_table",
    "render_sweep_table",
    "render_table3",
    "render_table4",
    "render_walkforward_table",
    "run_experiment",
    "run_power_comparison",
    "run_shard",
    "summarize_shape_check",
    "train_agent",
    "train_drl_agent",
    "train_sdp_agent",
]
