"""Sweep specification: the experiment grid and its shards.

An :class:`ExperimentSpec` names a grid — seeds × strategies × market
windows (Table 1 experiments) × cost regimes × execution regimes — over
one config profile.
:meth:`ExperimentSpec.expand` flattens the grid into independent
:class:`ShardSpec` cells, each fully self-describing: a shard carries
everything needed to run it in any process (deterministic per-shard
seeding comes from the shard itself, not from execution order), and its
:attr:`~ShardSpec.shard_id` is a content fingerprint, so re-running the
same spec finds (and skips) its previous artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from ..data.splits import ExperimentWindow
from ..envs.costs import DEFAULT_COMMISSION
from ..envs.observations import ObservationConfig
from ..registry import is_trainable
from ..snn.neurons import LIFParameters
from ..utils.rng import stable_hash
from ..utils.serialization import (
    decode_tagged,
    encode_tagged,
    register_tagged_type,
)
from .config import ExperimentConfig, make_config

# The config dataclasses specs and artifacts may carry.  Registration is
# idempotent, so importing this module alongside repro.serving (which
# registers ObservationConfig/LIFParameters too) is fine.
register_tagged_type(ObservationConfig)
register_tagged_type(LIFParameters)
register_tagged_type(ExperimentWindow)
register_tagged_type(ExperimentConfig)


@register_tagged_type
@dataclass(frozen=True)
class CostRegime:
    """One transaction-cost scenario of the sweep grid."""

    name: str
    commission: float = DEFAULT_COMMISSION

    def __post_init__(self):
        if self.commission < 0:
            raise ValueError(f"commission must be non-negative, got {self.commission}")


#: The paper's 0.25% per-side commission.  Add e.g.
#: ``CostRegime("zero", 0.0)`` to a spec for a frictionless control.
DEFAULT_COST_REGIMES: Tuple[CostRegime, ...] = (
    CostRegime("paper", DEFAULT_COMMISSION),
)

_EXECUTION_MODELS = ("zero", "linear", "sqrt", "depth")
_DEFAULT_MAX_PARTICIPATION = 0.05
_DEFAULT_PORTFOLIO_NOTIONAL = 1e6
_DEFAULT_ADV_WINDOW_DAYS = 1.0


@register_tagged_type
@dataclass(frozen=True)
class ExecutionRegime:
    """One execution/slippage scenario of the sweep grid.

    ``model`` names the slippage model (``zero`` | ``linear`` |
    ``sqrt`` | ``depth``), ``impact_coef`` its cost coefficient,
    ``max_participation`` the per-asset fill cap (``depth`` only), and
    ``portfolio_notional`` the assumed quote-unit size of a value-1.0
    portfolio (what turns weight changes into money against ADV).

    The default ``zero`` regime builds *no* engine at all
    (:meth:`build_engine` returns ``None``), so sweeps that don't opt
    into execution run the exact commission-only path of every previous
    PR — bit-identical, and at zero overhead.

    Parameters a model ignores are normalised back to their defaults
    (everything for ``zero``; ``max_participation`` for
    ``linear``/``sqrt``), so two behaviourally identical regimes never
    fingerprint into distinct grid cells that recompute the same
    numbers.
    """

    name: str
    model: str = "zero"
    impact_coef: float = 0.0
    max_participation: float = _DEFAULT_MAX_PARTICIPATION
    portfolio_notional: float = _DEFAULT_PORTFOLIO_NOTIONAL
    adv_window_days: float = _DEFAULT_ADV_WINDOW_DAYS

    def __post_init__(self):
        if self.model not in _EXECUTION_MODELS:
            raise ValueError(
                f"unknown execution model {self.model!r}; "
                f"choose from {_EXECUTION_MODELS}"
            )
        if self.impact_coef < 0:
            raise ValueError(
                f"impact_coef must be non-negative, got {self.impact_coef}"
            )
        if self.max_participation <= 0:
            raise ValueError(
                f"max_participation must be positive, got {self.max_participation}"
            )
        if self.portfolio_notional <= 0 or self.adv_window_days <= 0:
            raise ValueError(
                "portfolio_notional and adv_window_days must be positive"
            )
        if self.model == "zero":
            object.__setattr__(self, "impact_coef", 0.0)
            object.__setattr__(
                self, "portfolio_notional", _DEFAULT_PORTFOLIO_NOTIONAL
            )
            object.__setattr__(
                self, "adv_window_days", _DEFAULT_ADV_WINDOW_DAYS
            )
        if self.model != "depth":
            object.__setattr__(
                self, "max_participation", _DEFAULT_MAX_PARTICIPATION
            )

    def build_model(self):
        """The :class:`~repro.execution.SlippageModel` this regime names."""
        from ..execution import (
            DepthLimited,
            LinearImpact,
            SquareRootImpact,
            ZeroSlippage,
        )

        if self.model == "zero":
            return ZeroSlippage()
        if self.model == "linear":
            return LinearImpact(self.impact_coef)
        if self.model == "sqrt":
            return SquareRootImpact(self.impact_coef)
        return DepthLimited(self.max_participation, self.impact_coef)

    def build_engine(self, commission: float = DEFAULT_COMMISSION):
        """An :class:`~repro.execution.ExecutionEngine`, or ``None``.

        ``None`` for the ``zero`` model — the signal every consumer
        (back-tester, serving, benches) uses to skip the execution
        layer outright, which is what keeps the default regime
        bit-identical to the pre-execution code path.
        """
        from ..execution import ExecutionEngine

        if self.model == "zero":
            return None
        return ExecutionEngine(
            self.build_model(),
            commission=commission,
            portfolio_notional=self.portfolio_notional,
            adv_window_days=self.adv_window_days,
        )


#: Ideal (frictionless-beyond-commission) execution — today's behaviour.
ZERO_EXECUTION = ExecutionRegime("ideal", "zero")

DEFAULT_EXECUTION_REGIMES: Tuple[ExecutionRegime, ...] = (ZERO_EXECUTION,)

_RISK_PRESETS = ("none", "caps", "turnover", "lockout", "tight")

#: Per-preset parameter defaults; fields a preset does not name are
#: normalised to zero so behaviourally identical regimes fingerprint
#: identically (same discipline as ExecutionRegime).
_RISK_PRESET_DEFAULTS: Dict[str, Dict[str, float]] = {
    "none": {},
    "caps": {"max_weight": 0.35, "min_cash": 0.05},
    "turnover": {"max_turnover": 0.25},
    "lockout": {"max_drawdown": 0.15, "lockout_periods": 10},
    "tight": {
        "max_weight": 0.20,
        "min_cash": 0.10,
        "max_turnover": 0.15,
        "max_drawdown": 0.10,
        "lockout_periods": 20,
    },
}

_RISK_FIELDS = (
    "max_weight",
    "min_cash",
    "max_turnover",
    "max_drawdown",
    "lockout_periods",
)


@register_tagged_type
@dataclass(frozen=True)
class RiskRegime:
    """One portfolio-constraint scenario of the sweep grid.

    ``preset`` names the constraint family (``none`` | ``caps`` |
    ``turnover`` | ``lockout`` | ``tight``); the numeric fields tune it.
    A zero (unset) field takes the preset's default; fields the preset
    does not use are normalised back to zero, so two behaviourally
    identical regimes never fingerprint into distinct grid cells.

    The default ``none`` regime builds *no* engine at all
    (:meth:`build_engine` returns ``None``), so sweeps that don't opt
    into constraints run the exact unconstrained path of every previous
    PR — bit-identical, and at zero overhead.
    """

    name: str
    preset: str = "none"
    max_weight: float = 0.0
    min_cash: float = 0.0
    max_turnover: float = 0.0
    max_drawdown: float = 0.0
    lockout_periods: int = 0

    def __post_init__(self):
        if self.preset not in _RISK_PRESETS:
            raise ValueError(
                f"unknown risk preset {self.preset!r}; choose from {_RISK_PRESETS}"
            )
        defaults = _RISK_PRESET_DEFAULTS[self.preset]
        for field_name in _RISK_FIELDS:
            value = getattr(self, field_name)
            if field_name in defaults:
                if not value:
                    value = defaults[field_name]
            else:
                value = 0
            if field_name == "lockout_periods":
                value = int(value)
            else:
                value = float(value)
            object.__setattr__(self, field_name, value)
        if "max_weight" in defaults and not 0.0 < self.max_weight <= 1.0:
            raise ValueError(f"max_weight must lie in (0, 1], got {self.max_weight}")
        if not 0.0 <= self.min_cash < 1.0:
            raise ValueError(f"min_cash must lie in [0, 1), got {self.min_cash}")
        if "max_turnover" in defaults and self.max_turnover <= 0.0:
            raise ValueError(
                f"max_turnover must be positive, got {self.max_turnover}"
            )
        if "max_drawdown" in defaults and not 0.0 < self.max_drawdown < 1.0:
            raise ValueError(
                f"max_drawdown must lie in (0, 1), got {self.max_drawdown}"
            )
        if "lockout_periods" in defaults and self.lockout_periods < 1:
            raise ValueError(
                f"lockout_periods must be >= 1, got {self.lockout_periods}"
            )

    def build_limits(self):
        """The :mod:`repro.risk` limit zoo this regime names."""
        from ..risk import CashFloor, DrawdownLockout, PositionCap, TurnoverBudget

        limits = []
        if self.max_weight:
            limits.append(PositionCap(self.max_weight))
        if self.min_cash:
            limits.append(CashFloor(self.min_cash))
        if self.max_turnover:
            limits.append(TurnoverBudget(self.max_turnover))
        if self.max_drawdown:
            limits.append(
                DrawdownLockout(self.max_drawdown, self.lockout_periods)
            )
        return tuple(limits)

    def build_engine(self):
        """A :class:`~repro.risk.RiskEngine`, or ``None``.

        ``None`` for the ``none`` preset — the signal every consumer
        (environment, serving, benches) uses to skip the risk layer
        outright, which is what keeps the default regime bit-identical
        to the pre-risk code path.
        """
        from ..risk import RiskEngine

        if self.preset == "none":
            return None
        return RiskEngine(self.build_limits())


#: Unconstrained portfolio — today's behaviour.
NO_RISK = RiskRegime("none", "none")

DEFAULT_RISK_REGIMES: Tuple[RiskRegime, ...] = (NO_RISK,)


def risk_regime_preset(name: str) -> RiskRegime:
    """The named preset as a regime (regime name = preset name)."""
    return RiskRegime(name, name)


def _canonical_json(payload: Any) -> str:
    return json.dumps(encode_tagged(payload), sort_keys=True)


@dataclass(frozen=True)
class ShardSpec:
    """One cell of the sweep grid — an independently runnable unit.

    ``overrides`` are :func:`~repro.experiments.config.make_config`
    keyword overrides, stored as a sorted tuple of pairs so shards stay
    hashable and their fingerprints canonical.
    """

    sweep: str
    profile: str
    experiment: int
    strategy: str
    seed: int
    cost: CostRegime
    execution: ExecutionRegime = ZERO_EXECUTION
    risk: RiskRegime = NO_RISK
    overrides: Tuple[Tuple[str, Any], ...] = ()

    @property
    def overrides_dict(self) -> Dict[str, Any]:
        return dict(self.overrides)

    @property
    def shard_id(self) -> str:
        """Deterministic, human-scannable identity of this shard.

        The readable prefix names the grid axes; the trailing fingerprint
        covers *everything* (profile, overrides, commission value,
        execution parameters), so two shards differing only in an
        override never collide in a store.  The default (ideal)
        execution and (none) risk regimes contribute nothing to the id
        — those shards compute exactly what pre-subsystem shards
        computed, so resuming an old store keeps skipping its committed
        work.
        """
        payload = {
            "profile": self.profile,
            "experiment": self.experiment,
            "strategy": self.strategy,
            "seed": self.seed,
            "cost": self.cost,
            "overrides": sorted(self.overrides),
        }
        suffix = ""
        if self.execution != ZERO_EXECUTION:
            payload["execution"] = self.execution
            suffix = f"-{self.execution.name}"
        if self.risk != NO_RISK:
            payload["risk"] = self.risk
            suffix += f"-{self.risk.name}"
        digest = stable_hash(_canonical_json(payload), modulus=16 ** 8)
        return (
            f"exp{self.experiment}-{self.strategy}-s{self.seed}"
            f"-{self.cost.name}{suffix}-{digest:08x}"
        )

    def build_execution_engine(self):
        """The shard's execution engine (``None`` for ideal fills)."""
        return self.execution.build_engine(self.cost.commission)

    def build_risk_engine(self):
        """The shard's risk engine (``None`` for the unconstrained path)."""
        return self.risk.build_engine()

    def config(self) -> ExperimentConfig:
        """The :class:`ExperimentConfig` this shard runs.

        Per-shard determinism in one place: the shard's ``seed`` becomes
        ``agent_seed`` (network init + trainer sampler/permutation
        streams) and its cost regime becomes the commission; the market
        seed stays the profile default so every shard of an experiment
        trades the same panel.
        """
        return make_config(
            self.experiment,
            self.profile,
            commission=self.cost.commission,
            agent_seed=self.seed,
            **self.overrides_dict,
        )

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "sweep": self.sweep,
            "profile": self.profile,
            "experiment": self.experiment,
            "strategy": self.strategy,
            "seed": self.seed,
            "cost": encode_tagged(self.cost),
            "execution": encode_tagged(self.execution),
            "risk": encode_tagged(self.risk),
            "overrides": encode_tagged(dict(self.overrides)),
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "ShardSpec":
        overrides = decode_tagged(payload["overrides"])
        return cls(
            sweep=str(payload["sweep"]),
            profile=str(payload["profile"]),
            experiment=int(payload["experiment"]),
            strategy=str(payload["strategy"]),
            seed=int(payload["seed"]),
            cost=decode_tagged(payload["cost"]),
            # Pre-execution-subsystem stores carry no execution entry;
            # they ran the ideal path.  Likewise pre-risk stores ran
            # unconstrained.
            execution=(
                decode_tagged(payload["execution"])
                if "execution" in payload
                else ZERO_EXECUTION
            ),
            risk=(
                decode_tagged(payload["risk"])
                if "risk" in payload
                else NO_RISK
            ),
            overrides=_freeze_overrides(overrides),
        )


def _freeze_overrides(overrides: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    frozen = []
    for key in sorted(overrides):
        value = overrides[key]
        if isinstance(value, list):
            value = tuple(value)
        frozen.append((str(key), value))
    return tuple(frozen)


@dataclass(frozen=True)
class ExperimentSpec:
    """The grid: seeds × strategies × windows × costs × execution × risk."""

    name: str
    profile: str = "standard"
    experiments: Tuple[int, ...] = (1,)
    strategies: Tuple[str, ...] = ("sdp", "jiang")
    seeds: Tuple[int, ...] = (7,)
    cost_regimes: Tuple[CostRegime, ...] = DEFAULT_COST_REGIMES
    execution_regimes: Tuple[ExecutionRegime, ...] = DEFAULT_EXECUTION_REGIMES
    risk_regimes: Tuple[RiskRegime, ...] = DEFAULT_RISK_REGIMES
    overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self):
        for label, values in (
            ("experiments", self.experiments),
            ("strategies", self.strategies),
            ("seeds", self.seeds),
            ("cost_regimes", self.cost_regimes),
            ("execution_regimes", self.execution_regimes),
            ("risk_regimes", self.risk_regimes),
        ):
            object.__setattr__(self, label, tuple(values))
            if not getattr(self, label):
                raise ValueError(f"spec {self.name!r}: {label} must be non-empty")
        if len(set(c.name for c in self.cost_regimes)) != len(self.cost_regimes):
            raise ValueError(f"spec {self.name!r}: cost regime names must be unique")
        if len(set(e.name for e in self.execution_regimes)) != len(
            self.execution_regimes
        ):
            raise ValueError(
                f"spec {self.name!r}: execution regime names must be unique"
            )
        if len(set(r.name for r in self.risk_regimes)) != len(self.risk_regimes):
            raise ValueError(
                f"spec {self.name!r}: risk regime names must be unique"
            )
        object.__setattr__(
            self, "overrides", _freeze_overrides(dict(self.overrides))
        )

    @property
    def num_shards(self) -> int:
        return len(self.expand())

    def expand(self) -> List[ShardSpec]:
        """Flatten the grid into shards, in deterministic order.

        The seed axis only applies to learned strategies (it becomes
        the agent/trainer seed); classical baselines are deterministic
        functions of the panel, so each of their grid cells expands to
        a single shard under the first seed instead of N bit-identical
        ones.
        """
        shards = []
        for experiment in self.experiments:
            for strategy in self.strategies:
                seeds = self.seeds if is_trainable(strategy) else self.seeds[:1]
                for cost in self.cost_regimes:
                    for execution in self.execution_regimes:
                        for risk in self.risk_regimes:
                            for seed in seeds:
                                shards.append(
                                    ShardSpec(
                                        sweep=self.name,
                                        profile=self.profile,
                                        experiment=experiment,
                                        strategy=strategy,
                                        seed=seed,
                                        cost=cost,
                                        execution=execution,
                                        risk=risk,
                                        overrides=self.overrides,
                                    )
                                )
        return shards

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "profile": self.profile,
            "experiments": list(self.experiments),
            "strategies": list(self.strategies),
            "seeds": list(self.seeds),
            "cost_regimes": encode_tagged(list(self.cost_regimes)),
            "execution_regimes": encode_tagged(list(self.execution_regimes)),
            "risk_regimes": encode_tagged(list(self.risk_regimes)),
            "overrides": encode_tagged(dict(self.overrides)),
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        return cls(
            name=str(payload["name"]),
            profile=str(payload["profile"]),
            experiments=tuple(int(e) for e in payload["experiments"]),
            strategies=tuple(str(s) for s in payload["strategies"]),
            seeds=tuple(int(s) for s in payload["seeds"]),
            cost_regimes=tuple(decode_tagged(payload["cost_regimes"])),
            execution_regimes=(
                tuple(decode_tagged(payload["execution_regimes"]))
                if "execution_regimes" in payload
                else DEFAULT_EXECUTION_REGIMES
            ),
            risk_regimes=(
                tuple(decode_tagged(payload["risk_regimes"]))
                if "risk_regimes" in payload
                else DEFAULT_RISK_REGIMES
            ),
            overrides=_freeze_overrides(decode_tagged(payload["overrides"])),
        )


def encode_experiment_config(config: ExperimentConfig) -> Dict[str, Any]:
    """Tagged JSON payload for an :class:`ExperimentConfig`."""
    return encode_tagged(config)


def decode_experiment_config(payload: Mapping[str, Any]) -> ExperimentConfig:
    """Invert :func:`encode_experiment_config`."""
    config = decode_tagged(dict(payload))
    if not isinstance(config, ExperimentConfig):
        raise ValueError("payload does not decode to an ExperimentConfig")
    return config
