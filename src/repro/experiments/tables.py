"""Paper-table rendering and the paper's reference numbers.

``PAPER_TABLE3`` / ``PAPER_TABLE4`` hold the published values verbatim
so every bench can print measured-vs-paper side by side; the render
functions lay results out in the paper's format.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..utils.tables import format_table
from .runner import ExperimentResult, PowerComparison

# Table 3, verbatim: {experiment: {strategy: (MDD, fAPV, Sharpe)}}.
PAPER_TABLE3: Dict[int, Dict[str, Tuple[float, float, float]]] = {
    1: {
        "SDP": (0.152, 5.87e7, 0.245),
        "DRL[Jiang]": (0.159, 4.41e7, 0.267),
        "ONS": (0.416, 7.74e-1, -0.008),
        "Best Stock": (0.627, 1.580, 0.014),
        "ANTICOR": (0.189, 2.422, 0.034),
        "M0": (0.362, 7.93e-1, -0.005),
        "UCRP": (0.351, 7.49e-1, -0.014),
    },
    2: {
        "SDP": (0.024, 4.371, 0.028),
        "DRL[Jiang]": (0.021, 0.977, -0.033),
        "ONS": (0.124, 0.929, -0.005),
        "Best Stock": (0.427, 3.623, 0.034),
        "ANTICOR": (0.784, 0.222, -0.086),
        "M0": (0.189, 1.240, 0.017),
        "UCRP": (0.118, 1.080, 0.009),
    },
    3: {
        "SDP": (0.253, 2.009, 0.037),
        "DRL[Jiang]": (0.249, 1.760, 0.031),
        "ONS": (0.365, 0.925, 0.001),
        "Best Stock": (0.511, 8.380, 0.036),
        "ANTICOR": (0.752, 0.251, -0.025),
        "M0": (0.271, 2.003, 0.029),
        "UCRP": (0.231, 1.840, 0.033),
    },
}

# Table 4, verbatim: {experiment: {row: (idle W, dyn W, inf/s, nJ/inf)}}.
PAPER_TABLE4: Dict[int, Dict[str, Tuple[float, float, float, float]]] = {
    1: {
        "DRL/CPU": (7.98, 24.02, 2.09, 3835.85),
        "DRL/GPU": (100.80, 29.15, 1.23, 9165.32),
        "SDP/Loihi": (1.01, 0.012, 1.04, 15.81),
    },
    2: {
        "DRL/CPU": (9.09, 22.91, 1.60, 2935.62),
        "DRL/GPU": (100.25, 29.66, 1.09, 8119.44),
        "SDP/Loihi": (1.01, 0.011, 0.82, 15.72),
    },
    3: {
        "DRL/CPU": (8.69, 23.31, 2.02, 3706.38),
        "DRL/GPU": (106.03, 24.33, 1.07, 7998.76),
        "SDP/Loihi": (1.01, 0.012, 1.01, 15.43),
    },
}


def render_table3(result: ExperimentResult, with_paper: bool = True) -> str:
    """Measured Table 3 block, optionally with the paper's values inline."""
    exp = result.config.experiment
    paper = PAPER_TABLE3.get(exp, {})
    headers = ["Strategy", "MDD", "fAPV", "Sharpe"]
    if with_paper:
        headers += ["MDD(paper)", "fAPV(paper)", "Sharpe(paper)"]
    rows: List[List[object]] = []
    for name, mdd, fapv, sharpe in result.table3_rows():
        row: List[object] = [name, mdd, fapv, sharpe]
        if with_paper:
            ref = paper.get(name)
            row += list(ref) if ref else ["-", "-", "-"]
        rows.append(row)
    return format_table(
        headers,
        rows,
        title=f"Table 3 — Experiment {exp} ({result.config.profile} profile, "
        f"synthetic market)",
    )


def render_table4(comparison: PowerComparison, with_paper: bool = True) -> str:
    """Measured Table 4 block, optionally with the paper's values inline."""
    exp = comparison.experiment
    paper = PAPER_TABLE4.get(exp, {})
    headers = ["Algorithm", "Device", "Idle(W)", "Dyn(W)", "Inf/s", "nJ/Inf"]
    if with_paper:
        headers += ["Inf/s(paper)", "nJ/Inf(paper)"]
    key_map = {"CPU": "DRL/CPU", "GPU": "DRL/GPU", "Loihi (T=5)": "SDP/Loihi"}
    rows: List[List[object]] = []
    for label, device, idle, dyn, inf_s, nj in comparison.rows():
        row: List[object] = [label, device, idle, dyn, inf_s, nj]
        if with_paper:
            ref = paper.get(key_map.get(device, ""))
            row += [ref[2], ref[3]] if ref else ["-", "-"]
        rows.append(row)
    table = format_table(headers, rows, title=f"Table 4 — Experiment {exp}")
    table += (
        f"\nEnergy reduction: {comparison.cpu_reduction:.0f}x vs CPU, "
        f"{comparison.gpu_reduction:.0f}x vs GPU "
        f"(paper: 186x vs CPU, 516x vs GPU)"
    )
    return table


def summarize_shape_check(result: ExperimentResult) -> List[str]:
    """Qualitative shape assertions of the paper for one experiment.

    Returns human-readable pass/fail lines; benches print these so the
    paper-vs-measured comparison is explicit.
    """
    b = result.backtests
    lines = []

    def check(label: str, ok: bool) -> None:
        lines.append(f"[{'PASS' if ok else 'FAIL'}] {label}")

    if "SDP" in b and "DRL[Jiang]" in b:
        check("SDP fAPV >= DRL[Jiang] fAPV", b["SDP"].fapv >= b["DRL[Jiang]"].fapv)
    classical = [n for n in ("ONS", "ANTICOR", "M0", "UCRP") if n in b]
    if "SDP" in b and classical:
        best_classical = max(b[n].fapv for n in classical)
        check("SDP fAPV beats on-line classical strategies",
              b["SDP"].fapv >= best_classical)
    return lines
