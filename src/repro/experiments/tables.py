"""Paper-table rendering and the paper's reference numbers.

``PAPER_TABLE3`` / ``PAPER_TABLE4`` hold the published values verbatim
so every bench can print measured-vs-paper side by side; the render
functions lay results out in the paper's format.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..utils.tables import format_table
from .runner import ExperimentResult, PowerComparison

# Table 3, verbatim: {experiment: {strategy: (MDD, fAPV, Sharpe)}}.
PAPER_TABLE3: Dict[int, Dict[str, Tuple[float, float, float]]] = {
    1: {
        "SDP": (0.152, 5.87e7, 0.245),
        "DRL[Jiang]": (0.159, 4.41e7, 0.267),
        "ONS": (0.416, 7.74e-1, -0.008),
        "Best Stock": (0.627, 1.580, 0.014),
        "ANTICOR": (0.189, 2.422, 0.034),
        "M0": (0.362, 7.93e-1, -0.005),
        "UCRP": (0.351, 7.49e-1, -0.014),
    },
    2: {
        "SDP": (0.024, 4.371, 0.028),
        "DRL[Jiang]": (0.021, 0.977, -0.033),
        "ONS": (0.124, 0.929, -0.005),
        "Best Stock": (0.427, 3.623, 0.034),
        "ANTICOR": (0.784, 0.222, -0.086),
        "M0": (0.189, 1.240, 0.017),
        "UCRP": (0.118, 1.080, 0.009),
    },
    3: {
        "SDP": (0.253, 2.009, 0.037),
        "DRL[Jiang]": (0.249, 1.760, 0.031),
        "ONS": (0.365, 0.925, 0.001),
        "Best Stock": (0.511, 8.380, 0.036),
        "ANTICOR": (0.752, 0.251, -0.025),
        "M0": (0.271, 2.003, 0.029),
        "UCRP": (0.231, 1.840, 0.033),
    },
}

# Table 4, verbatim: {experiment: {row: (idle W, dyn W, inf/s, nJ/inf)}}.
PAPER_TABLE4: Dict[int, Dict[str, Tuple[float, float, float, float]]] = {
    1: {
        "DRL/CPU": (7.98, 24.02, 2.09, 3835.85),
        "DRL/GPU": (100.80, 29.15, 1.23, 9165.32),
        "SDP/Loihi": (1.01, 0.012, 1.04, 15.81),
    },
    2: {
        "DRL/CPU": (9.09, 22.91, 1.60, 2935.62),
        "DRL/GPU": (100.25, 29.66, 1.09, 8119.44),
        "SDP/Loihi": (1.01, 0.011, 0.82, 15.72),
    },
    3: {
        "DRL/CPU": (8.69, 23.31, 2.02, 3706.38),
        "DRL/GPU": (106.03, 24.33, 1.07, 7998.76),
        "SDP/Loihi": (1.01, 0.012, 1.01, 15.43),
    },
}


def render_table3(result: ExperimentResult, with_paper: bool = True) -> str:
    """Measured Table 3 block, optionally with the paper's values inline."""
    exp = result.config.experiment
    paper = PAPER_TABLE3.get(exp, {})
    headers = ["Strategy", "MDD", "fAPV", "Sharpe"]
    if with_paper:
        headers += ["MDD(paper)", "fAPV(paper)", "Sharpe(paper)"]
    rows: List[List[object]] = []
    for name, mdd, fapv, sharpe in result.table3_rows():
        row: List[object] = [name, mdd, fapv, sharpe]
        if with_paper:
            ref = paper.get(name)
            row += list(ref) if ref else ["-", "-", "-"]
        rows.append(row)
    return format_table(
        headers,
        rows,
        title=f"Table 3 — Experiment {exp} ({result.config.profile} profile, "
        f"synthetic market)",
    )


def render_table4(comparison: PowerComparison, with_paper: bool = True) -> str:
    """Measured Table 4 block, optionally with the paper's values inline."""
    exp = comparison.experiment
    paper = PAPER_TABLE4.get(exp, {})
    headers = ["Algorithm", "Device", "Idle(W)", "Dyn(W)", "Inf/s", "nJ/Inf"]
    if with_paper:
        headers += ["Inf/s(paper)", "nJ/Inf(paper)"]
    key_map = {"CPU": "DRL/CPU", "GPU": "DRL/GPU", "Loihi (T=5)": "SDP/Loihi"}
    rows: List[List[object]] = []
    for label, device, idle, dyn, inf_s, nj in comparison.rows():
        row: List[object] = [label, device, idle, dyn, inf_s, nj]
        if with_paper:
            ref = paper.get(key_map.get(device, ""))
            row += [ref[2], ref[3]] if ref else ["-", "-"]
        rows.append(row)
    table = format_table(headers, rows, title=f"Table 4 — Experiment {exp}")
    table += (
        f"\nEnergy reduction: {comparison.cpu_reduction:.0f}x vs CPU, "
        f"{comparison.gpu_reduction:.0f}x vs GPU "
        f"(paper: 186x vs CPU, 516x vs GPU)"
    )
    return table


def _pm(mean: float, std: float) -> str:
    """``mean±std`` cell with the table's float conventions."""

    def one(x: float) -> str:
        if x != 0 and (abs(x) >= 1e5 or abs(x) < 1e-3):
            return f"{x:.3e}"
        return f"{x:.3f}"

    return f"{one(mean)}±{one(std)}"


def render_sweep_table(sweep, with_paper: bool = True) -> str:
    """Across-seed aggregate table for a sweep.

    ``sweep`` is a :class:`~repro.experiments.engine.SweepResult` (or
    anything with its ``aggregate()`` rows).  Each row is one grid cell
    (experiment × strategy × cost regime) with mean±std across seeds —
    the multi-seed companion to the paper's single-run Table 3 —
    optionally with the paper's point values inline.
    """
    rows_in = sweep.aggregate() if hasattr(sweep, "aggregate") else list(sweep)
    # The execution column (and its shortfall metric) only appear when
    # the sweep actually exercised that axis — all-ideal sweeps and
    # pre-execution-subsystem aggregates render exactly as before.
    exec_names = {str(row["execution"]) for row in rows_in if "execution" in row}
    with_shortfall = any("shortfall_mean" in row for row in rows_in)
    # Shortfall rows always name their regime, whatever it is called.
    with_exec = bool(exec_names) and (exec_names != {"ideal"} or with_shortfall)
    # Same discipline for the risk axis: the Risk/Violation columns only
    # appear when the sweep exercised it — all-none sweeps and pre-risk
    # aggregates render exactly as before.
    risk_names = {str(row["risk"]) for row in rows_in if "risk" in row}
    with_violation = any("violation_rate_mean" in row for row in rows_in)
    with_risk = bool(risk_names) and (risk_names != {"none"} or with_violation)
    headers = ["Exp", "Strategy", "Cost"]
    if with_exec:
        headers += ["Exec"]
    if with_risk:
        headers += ["Risk"]
    headers += ["Seeds", "MDD", "fAPV", "Sharpe"]
    if with_shortfall:
        headers += ["Shortfall"]
    if with_violation:
        headers += ["Violation"]
    if with_paper:
        headers += ["fAPV(paper)"]
    # Sweep strategies are registry keys; the paper tables use display
    # names.
    display = {"sdp": "SDP", "jiang": "DRL[Jiang]", "ons": "ONS",
               "anticor": "ANTICOR", "m0": "M0", "ucrp": "UCRP",
               "best_stock": "Best Stock"}
    rows: List[List[object]] = []
    for row in rows_in:
        cells: List[object] = [
            row["experiment"],
            row["strategy"],
            row["cost"],
        ]
        if with_exec:
            cells.append(row.get("execution", "-"))
        if with_risk:
            cells.append(row.get("risk", "-"))
        cells += [
            row["seeds"],
            _pm(row["mdd_mean"], row["mdd_std"]),
            _pm(row["fapv_mean"], row["fapv_std"]),
            _pm(row["sharpe_mean"], row["sharpe_std"]),
        ]
        if with_shortfall:
            cells.append(
                _pm(row["shortfall_mean"], row["shortfall_std"])
                if "shortfall_mean" in row
                else "-"
            )
        if with_violation:
            cells.append(
                _pm(row["violation_rate_mean"], row["violation_rate_std"])
                if "violation_rate_mean" in row
                else "-"
            )
        if with_paper:
            ref = PAPER_TABLE3.get(row["experiment"], {}).get(
                display.get(str(row["strategy"]), str(row["strategy"]))
            )
            cells.append(ref[1] if ref else "-")
        rows.append(cells)
    table = format_table(
        headers, rows, title="Sweep aggregates (mean±std across seeds)"
    )
    # Wall-clock attribution, only when this run actually vectorized a
    # seed group — plain sweeps (and plain aggregate-row inputs) render
    # exactly as before.
    timing = (
        sweep.timing_summary() if hasattr(sweep, "timing_summary") else None
    )
    if timing:
        line = (
            f"\nWall-clock: {timing['vectorized_shards']} seed-vectorized "
            f"shard(s) in {timing['groups']} group(s): "
            f"{timing['group_wall_s']} s "
            f"({timing['sec_per_shard_grouped']} s/shard)"
        )
        if "serial_shards" in timing:
            line += (
                f"; {timing['serial_shards']} per-shard: "
                f"{timing['serial_wall_s']} s "
                f"({timing['sec_per_shard_serial']} s/shard)"
            )
        table += line
    return table


def render_walkforward_table(report) -> str:
    """Per-fold aggregate table for a walk-forward report."""
    rows_in = report.fold_aggregates()
    # Execution-aware walks carry an implementation-shortfall column;
    # risk-aware walks a constraint-violation column.
    with_shortfall = any("shortfall_mean" in row for row in rows_in)
    with_violation = any("violation_rate_mean" in row for row in rows_in)
    headers = ["Fold", "Test window", "Strategy", "Seeds", "MDD", "fAPV", "Sharpe"]
    if with_shortfall:
        headers += ["Shortfall"]
    if with_violation:
        headers += ["Violation"]
    rows: List[List[object]] = []
    for row in rows_in:
        cells: List[object] = [
            row["fold"],
            f"{row['test_start']}–{row['test_end']}",
            row["strategy"],
            row["seeds"],
            _pm(row["mdd_mean"], row["mdd_std"]),
            _pm(row["fapv_mean"], row["fapv_std"]),
            _pm(row["sharpe_mean"], row["sharpe_std"]),
        ]
        if with_shortfall:
            cells.append(
                _pm(row["shortfall_mean"], row["shortfall_std"])
                if "shortfall_mean" in row
                else "-"
            )
        if with_violation:
            cells.append(
                _pm(row["violation_rate_mean"], row["violation_rate_std"])
                if "violation_rate_mean" in row
                else "-"
            )
        rows.append(cells)
    return format_table(
        headers, rows, title="Walk-forward evaluation (mean±std across seeds)"
    )


def render_regime_table(report) -> str:
    """Per-regime attribution table for a walk-forward report."""
    headers = ["Regime", "Strategy", "Periods", "Seeds", "MDD", "fAPV", "Sharpe"]
    rows: List[List[object]] = []
    for row in report.regime_aggregates():
        rows.append(
            [
                row["regime"],
                row["strategy"],
                row["periods"],
                row["seeds"],
                _pm(row["mdd_mean"], row["mdd_std"]),
                _pm(row["fapv_mean"], row["fapv_std"]),
                _pm(row["sharpe_mean"], row["sharpe_std"]),
            ]
        )
    return format_table(
        headers, rows, title="Per-regime attribution (mean±std across seeds)"
    )


def summarize_shape_check(result: ExperimentResult) -> List[str]:
    """Qualitative shape assertions of the paper for one experiment.

    Returns human-readable pass/fail lines; benches print these so the
    paper-vs-measured comparison is explicit.
    """
    b = result.backtests
    lines = []

    def check(label: str, ok: bool) -> None:
        lines.append(f"[{'PASS' if ok else 'FAIL'}] {label}")

    if "SDP" in b and "DRL[Jiang]" in b:
        check("SDP fAPV >= DRL[Jiang] fAPV", b["SDP"].fapv >= b["DRL[Jiang]"].fapv)
    classical = [n for n in ("ONS", "ANTICOR", "M0", "UCRP") if n in b]
    if "SDP" in b and classical:
        best_classical = max(b[n].fapv for n in classical)
        check("SDP fAPV beats on-line classical strategies",
              b["SDP"].fapv >= best_classical)
    return lines
