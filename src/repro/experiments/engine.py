"""The sharded sweep engine: grid execution over a process pool.

:func:`run_shard` is the whole unit of work — build the shard's config,
data, and strategy, train it if it is learned, back-test it, and commit
a :class:`~repro.experiments.artifacts.ShardArtifact`.  It is a
module-level function of picklable arguments, so the *same code path*
runs a shard in-process and in a worker: serial and pooled sweeps are
bit-identical by construction (each shard derives all of its randomness
from its own spec, never from execution order or process state).

:class:`SweepRunner` orchestrates: expand the spec, skip shards whose
artifacts are already committed (checkpoint/resume), run the rest
serially or on a :class:`~concurrent.futures.ProcessPoolExecutor`, and
write the sweep manifest.

Seed vectorization (PR 9): with ``vectorize_seeds`` on, trainable
shards that differ only in the seed axis coalesce into
:func:`run_shard_group` calls — one stacked
:class:`~repro.agents.MultiSeedTrainer` run over all seeds at once —
and then commit ordinary per-shard artifacts.  On the reference
backend the grouped artifacts are bit-identical to serial ones, so
manifests, resume, and every store consumer are unchanged; the only
observable difference is wall-clock, which
:meth:`SweepResult.timing_summary` reports.

Fault tolerance (PR 7): each pending shard gets up to
``RetryPolicy.max_attempts`` tries with capped exponential backoff and
deterministic jitter between them.  A shard that exhausts its attempts
is *quarantined* — reported in the :class:`SweepResult` and the
manifest with the failing worker's traceback text — and its siblings
run to completion regardless.  A :class:`~repro.resilience.FaultPlan`
can be threaded through to arm the engine's seams (transient raises,
mid-write crashes, permanently broken shards) deterministically; a
``None`` or empty plan is the unhardened path, bit-identical to before
the seams existed.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..agents import run_backtest
from ..obs import NULL_OBS, EventLog, Obs, get_obs, use_obs
from ..registry import (
    DEFAULT_REGISTRY,
    is_trainable,
    strategy_params_from_config,
)
from ..resilience import FaultPlan, InjectedFault, RetryPolicy, injector_from
from ..utils.serialization import PathLike, save_state_dict
from .artifacts import (
    ArtifactStore,
    ShardArtifact,
    _history_to_dict,
    _metrics_to_dict,
    _result_to_series,
    execution_metrics_from_summary,
    risk_metrics_from_summary,
)
from .runner import build_experiment_data, make_multiseed_trainer, make_trainer
from .spec import ExperimentSpec, ShardSpec

# One failed attempt is usually a transient (preempted worker, flaky
# filesystem), so the default gives every shard three tries with
# sub-minute backoff before quarantining it.
DEFAULT_SHARD_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.5, multiplier=2.0, max_delay=30.0, jitter=0.25
)


def _shard_obs(name: str, obs_dir: Optional[str], obs_level: str):
    """A fresh per-shard obs handle, or the shared null object.

    Workers cannot inherit the orchestrator's in-process handle, so
    observability crosses the pool boundary as the picklable
    ``(obs_dir, obs_level)`` pair: with a directory every unit of work
    logs events to its own ``<name>.jsonl`` (whole-line appends, no
    cross-process interleaving) and returns its metric snapshot in the
    summary.  Without a directory, an enabled in-process handle still
    gets a private (memory-only) per-shard registry so snapshots stay
    per-shard; fully disabled runs pay nothing.
    """
    parent = get_obs()
    if obs_dir is None and not parent.enabled:
        return NULL_OBS
    path = Path(obs_dir) / f"{name}.jsonl" if obs_dir is not None else None
    level = obs_level if obs_dir is not None else parent.events.level
    return Obs(events=EventLog(path=path, level=level))


def run_shard(
    shard: ShardSpec,
    store_root: str,
    fault_plan: Optional[FaultPlan] = None,
    attempt: int = 0,
    position: int = 0,
    obs_dir: Optional[str] = None,
    obs_level: str = "info",
) -> Dict[str, object]:
    """Execute one shard end to end and commit its artifact.

    Returns a small JSON-able summary (the pool ships it back instead
    of the trajectories).  Idempotent: a shard already committed in the
    store is skipped, so racing a resume against a half-finished sweep
    never recomputes finished work.

    ``fault_plan`` arms the engine's chaos seams for this attempt
    (``attempt``/``position`` key the deterministic fault draws —
    ``position`` is the shard's index in spec-expansion order).  With no
    plan the extra parameters are inert and the body is the original
    code path.

    ``obs_dir``/``obs_level`` arm per-shard observability (see
    :func:`_shard_obs`): training/backtest/commit run inside spans, the
    shard's metric snapshot persists as ``extra["obs"]`` in the
    artifact, and the summary carries it home.  Left at their defaults
    (and with no enabled process-global handle) the body is
    bit-identical to the unobserved path.
    """
    store = ArtifactStore(store_root)
    shard_id = shard.shard_id
    if store.has_shard(shard_id):
        summary: Dict[str, object] = {
            "shard_id": shard_id,
            "status": "skipped",
            "metrics": store.load_shard_metrics(shard_id),
        }
        snap = store.load_shard_obs(shard_id)
        if snap is not None:
            summary["obs"] = snap
        return summary

    obs = _shard_obs(f"shard-{shard_id}", obs_dir, obs_level)
    try:
        with use_obs(obs):
            return _run_shard_observed(
                store, shard, fault_plan, attempt, position, obs
            )
    finally:
        obs.close()


def _run_shard_observed(
    store: ArtifactStore,
    shard: ShardSpec,
    fault_plan: Optional[FaultPlan],
    attempt: int,
    position: int,
    obs,
) -> Dict[str, object]:
    """The body of :func:`run_shard` under the shard's obs handle."""
    shard_id = shard.shard_id
    injector = injector_from(fault_plan)
    if injector is not None:
        kind = injector.shard_fault(shard_id, position, attempt)
        if kind == "crash":
            # Emulate a worker killed mid-write: a partial directory
            # with arrays but no shard.json commit mark.  has_shard
            # reads it as absent, so the retry re-runs cleanly.
            directory = store.shard_dir(shard_id)
            directory.mkdir(parents=True, exist_ok=True)
            save_state_dict(
                directory / "series.npz", {"values": np.zeros(1)}
            )
            raise InjectedFault("sweep.crash", f"{shard_id}:{attempt}")
        if kind is not None:
            raise InjectedFault(f"sweep.{kind}", f"{shard_id}:{attempt}")

    config = shard.config()
    data = build_experiment_data(config)
    params = strategy_params_from_config(
        shard.strategy, config, n_assets=len(data.assets)
    )
    agent = DEFAULT_REGISTRY.create(shard.strategy, **params)

    history = None
    weights_state = None
    if is_trainable(shard.strategy):
        with obs.span("shard.train", shard=shard_id, attempt=attempt):
            history = _history_to_dict(
                make_trainer(agent, data.train, config).train()
            )
        weights_state = agent.network.state_dict()

    return _backtest_and_commit(
        store, shard, config, data, agent, params, history, weights_state
    )


def _backtest_and_commit(
    store: ArtifactStore,
    shard: ShardSpec,
    config,
    data,
    agent,
    params: Dict[str, object],
    history: Optional[Dict[str, object]],
    weights_state,
) -> Dict[str, object]:
    """Back-test a (possibly trained) agent and commit its artifact.

    The post-training half of :func:`run_shard`, shared with
    :func:`run_shard_group` so a shard trained inside a stacked seed
    group commits byte-for-byte the artifact its serial run would have.

    Reads the process-global obs handle (the per-shard one inside
    :func:`run_shard`): the back-test runs in a span and, when enabled,
    the handle's snapshot is committed as ``extra["obs"]`` and echoed
    in the summary.  Disabled obs leaves artifact bytes unchanged.
    """
    obs = get_obs()
    with obs.span("shard.backtest", shard=shard.shard_id):
        result = run_backtest(
            agent,
            data.test,
            observation=config.observation,
            commission=config.commission,
            execution=shard.build_execution_engine(),
            risk=shard.build_risk_engine(),
        )
    extra: Dict[str, object] = {"assets": list(data.assets)}
    metrics = _metrics_to_dict(result.metrics)
    result_extra = dict(result.extra)
    risk_summary = result_extra.pop("risk", None)
    if result_extra:
        # Implementation-shortfall report of a non-ideal execution
        # regime; merged into the summary metrics so aggregation and
        # tables see it alongside fAPV.
        extra["execution"] = result_extra
        metrics.update(execution_metrics_from_summary(result_extra))
    if risk_summary:
        # Constraint-enforcement report of a non-none risk regime —
        # same ride-along discipline as the execution summary.
        extra["risk"] = risk_summary
        metrics.update(risk_metrics_from_summary(risk_summary))
    obs_snapshot = None
    if obs.enabled:
        # Snapshot before the commit span so the persisted view equals
        # the summary's; the commit timing still lands in the event log.
        obs_snapshot = obs.snapshot()
        extra["obs"] = obs_snapshot
    artifact = ShardArtifact(
        shard=shard,
        strategy_spec={"strategy": shard.strategy, "params": params},
        metrics=result.metrics,
        series=_result_to_series(result),
        weights_state=weights_state,
        history=history,
        extra=extra,
    )
    with obs.span("shard.commit", shard=shard.shard_id):
        store.save_shard(artifact)
    summary: Dict[str, object] = {
        "shard_id": shard.shard_id,
        "status": "ran",
        "metrics": metrics,
    }
    if obs_snapshot is not None:
        summary["obs"] = obs_snapshot
    return summary


def run_shard_group(
    shards: List[ShardSpec],
    store_root: str,
    backend=None,
    obs_dir: Optional[str] = None,
    obs_level: str = "info",
) -> List[Dict[str, object]]:
    """Execute a same-config seed group through one stacked trainer.

    ``shards`` must be cells of one grid row that differ only in
    ``seed`` and name a trainable strategy — the grouping
    :class:`SweepRunner` performs under ``vectorize_seeds``.  Training
    runs once through :class:`~repro.agents.MultiSeedTrainer` with the
    seed axis stacked; each shard is then back-tested and committed
    individually through the exact code path of :func:`run_shard`, so
    the per-shard artifact layout (and, on the default reference
    backend, every byte of it) is unchanged — manifests, resume, and
    ``load_agent`` cannot tell a grouped shard from a serial one.

    Already-committed shards are skipped and only the remainder is
    stacked, so a group interrupted mid-sweep resumes cleanly (with or
    without vectorization).  Returns one summary per shard, in input
    order.  Module-level and picklable for the same reason
    :func:`run_shard` is.
    """
    shards = list(shards)
    if not shards:
        return []
    if not is_trainable(shards[0].strategy):
        raise ValueError(
            f"run_shard_group needs a trainable strategy, got "
            f"{shards[0].strategy!r}"
        )
    store = ArtifactStore(store_root)
    summaries: Dict[str, Dict[str, object]] = {}
    pending: List[ShardSpec] = []
    for shard in shards:
        if store.has_shard(shard.shard_id):
            summary: Dict[str, object] = {
                "shard_id": shard.shard_id,
                "status": "skipped",
                "metrics": store.load_shard_metrics(shard.shard_id),
            }
            snap = store.load_shard_obs(shard.shard_id)
            if snap is not None:
                summary["obs"] = snap
            summaries[shard.shard_id] = summary
        else:
            pending.append(shard)

    if pending:
        configs = [shard.config() for shard in pending]
        label = pending[0].shard_id
        # Stacked training is group-wide work, so it gets a group-level
        # obs handle; each member's back-test + commit then runs under
        # its own per-shard handle (same snapshot discipline as
        # run_shard).
        group_obs = _shard_obs(f"group-{label}", obs_dir, obs_level)
        try:
            with use_obs(group_obs):
                # Same grid row ⇒ same market seed/window: one panel
                # serves the whole group.
                data = build_experiment_data(configs[0])
                agents = []
                params_list = []
                for shard, config in zip(pending, configs):
                    params = strategy_params_from_config(
                        shard.strategy, config, n_assets=len(data.assets)
                    )
                    params_list.append(params)
                    agents.append(
                        DEFAULT_REGISTRY.create(shard.strategy, **params)
                    )
                with group_obs.span(
                    "group.train", group=label, size=len(pending)
                ):
                    histories = make_multiseed_trainer(
                        agents, data.train, configs, backend=backend
                    ).train()
        finally:
            group_obs.close()
        for shard, config, agent, params, history in zip(
            pending, configs, agents, params_list, histories
        ):
            shard_obs = _shard_obs(
                f"shard-{shard.shard_id}", obs_dir, obs_level
            )
            try:
                with use_obs(shard_obs):
                    summaries[shard.shard_id] = _backtest_and_commit(
                        store,
                        shard,
                        config,
                        data,
                        agent,
                        params,
                        _history_to_dict(history),
                        agent.network.state_dict(),
                    )
            finally:
                shard_obs.close()
    return [summaries[shard.shard_id] for shard in shards]


def _guarded_run_shard(
    shard: ShardSpec,
    store_root: str,
    fault_plan: Optional[FaultPlan],
    attempt: int,
    position: int,
    obs_dir: Optional[str] = None,
    obs_level: str = "info",
) -> Dict[str, object]:
    """Pool-safe wrapper: failures come back as data, not exceptions.

    ``ProcessPoolExecutor`` pickles a worker exception without its
    traceback, so the orchestrator would only ever see the repr.  This
    wrapper formats the traceback *inside* the worker and ships it home
    in the summary, where retry/quarantine logic (and ultimately the
    manifest) can use it.  ``KeyboardInterrupt``/``SystemExit`` still
    propagate — an interrupted sweep must stop, not quarantine.
    """
    try:
        return run_shard(
            shard,
            store_root,
            fault_plan=fault_plan,
            attempt=attempt,
            position=position,
            obs_dir=obs_dir,
            obs_level=obs_level,
        )
    except Exception as exc:
        return {
            "shard_id": shard.shard_id,
            "status": "error",
            "error": repr(exc),
            "traceback": traceback.format_exc(),
        }


def _seed_groups(
    shards: List[ShardSpec],
) -> Tuple[List[List[ShardSpec]], List[ShardSpec]]:
    """Partition shards into same-config seed groups and leftovers.

    A group is ≥2 trainable shards agreeing on every grid axis except
    ``seed`` — exactly the cells whose training differs only in the
    per-seed RNG streams, which is what :func:`run_shard_group` stacks.
    Everything else (baselines, singleton seeds) stays per-shard.
    Groups come back in first-member input order; leftovers keep their
    input order.
    """
    keyed: Dict[Tuple, List[ShardSpec]] = {}
    for shard in shards:
        if not is_trainable(shard.strategy):
            continue
        key = (
            shard.sweep,
            shard.profile,
            shard.experiment,
            shard.strategy,
            shard.cost,
            shard.execution,
            shard.risk,
            shard.overrides,
        )
        keyed.setdefault(key, []).append(shard)
    groups = [members for members in keyed.values() if len(members) >= 2]
    grouped_ids = {s.shard_id for members in groups for s in members}
    singles = [s for s in shards if s.shard_id not in grouped_ids]
    return groups, singles


@dataclass
class ShardOutcome:
    """One shard's fate in a sweep run.

    ``attempts`` counts tries actually made (1 on the healthy path);
    ``error`` carries the final attempt's traceback text when the shard
    was quarantined.  ``elapsed``/``group_size``/``group`` record how
    the shard executed — ``group_size > 1`` means it trained inside a
    seed-vectorized group (``group`` names it, ``elapsed`` is the whole
    group's wall-clock); serial shards carry their own wall-clock and
    the defaults otherwise, so pre-vectorization callers see no change.
    """

    shard: ShardSpec
    status: str  # "ran" | "skipped" | "quarantined"
    metrics: Dict[str, float]
    attempts: int = 1
    error: Optional[str] = None
    elapsed: float = 0.0
    group_size: int = 1
    group: Optional[str] = None

    @property
    def shard_id(self) -> str:
        return self.shard.shard_id


@dataclass
class SweepResult:
    """Outcome of one :meth:`SweepRunner.run` call."""

    spec: ExperimentSpec
    outcomes: List[ShardOutcome]
    pending: List[ShardSpec]  # expanded but not executed (max_shards cut)

    @property
    def ran(self) -> List[ShardOutcome]:
        return [o for o in self.outcomes if o.status == "ran"]

    @property
    def skipped(self) -> List[ShardOutcome]:
        return [o for o in self.outcomes if o.status == "skipped"]

    @property
    def quarantined(self) -> List[ShardOutcome]:
        """Shards that exhausted their retry budget this run."""
        return [o for o in self.outcomes if o.status == "quarantined"]

    @property
    def complete(self) -> bool:
        return not self.pending and not self.quarantined

    def timing_summary(self) -> Optional[Dict[str, object]]:
        """Wall-clock per seed-vectorized group vs per serial shard.

        ``None`` unless at least one shard ran inside a vectorized
        group this call — sweeps that never opt in render exactly as
        before.  Group wall-clock counts each group once (every member
        outcome carries the group total); the per-shard side only sums
        shards that were actually timed (the serial execution path).
        """
        grouped = [
            o for o in self.outcomes if o.status == "ran" and o.group_size > 1
        ]
        if not grouped:
            return None
        per_group: Dict[str, float] = {}
        for outcome in grouped:
            per_group[str(outcome.group)] = outcome.elapsed
        group_wall = sum(per_group.values())
        summary: Dict[str, object] = {
            "vectorized_shards": len(grouped),
            "groups": len(per_group),
            "group_wall_s": round(group_wall, 4),
            "sec_per_shard_grouped": round(group_wall / len(grouped), 4),
        }
        solo = [
            o
            for o in self.outcomes
            if o.status == "ran" and o.group_size == 1 and o.elapsed > 0
        ]
        if solo:
            solo_wall = sum(o.elapsed for o in solo)
            summary["serial_shards"] = len(solo)
            summary["serial_wall_s"] = round(solo_wall, 4)
            summary["sec_per_shard_serial"] = round(solo_wall / len(solo), 4)
        return summary

    def aggregate(self) -> List[Dict[str, object]]:
        """Across-seed mean±std per (experiment, strategy, cost,
        execution, risk) grid cell.

        The multi-seed evidence the single-run paper tables lack: each
        row pools every seed of one grid cell.  Cells run under a
        non-ideal execution regime additionally aggregate their
        implementation-shortfall metrics; cells run under a non-none
        risk regime their constraint-violation metrics.
        """
        groups: Dict[Tuple[int, str, str, str, str], List[Dict[str, float]]] = {}
        for outcome in self.outcomes:
            if outcome.status == "quarantined":
                continue  # no metrics to pool; reported, not aggregated
            key = (
                outcome.shard.experiment,
                outcome.shard.strategy,
                outcome.shard.cost.name,
                outcome.shard.execution.name,
                outcome.shard.risk.name,
            )
            groups.setdefault(key, []).append(outcome.metrics)
        rows = []
        for (experiment, strategy, cost, execution, risk), metrics_list in sorted(
            groups.items()
        ):
            row: Dict[str, object] = {
                "experiment": experiment,
                "strategy": strategy,
                "cost": cost,
                "execution": execution,
                "risk": risk,
                "seeds": len(metrics_list),
            }
            metrics = (
                ("fapv", "mdd", "sharpe")
                + (
                    ("shortfall", "fill_ratio")
                    if all("shortfall" in m for m in metrics_list)
                    else ()
                )
                + (
                    ("violation_rate", "lockout_rate", "risk_turnover")
                    if all("violation_rate" in m for m in metrics_list)
                    else ()
                )
            )
            for metric in metrics:
                values = np.array([m[metric] for m in metrics_list], dtype=np.float64)
                row[f"{metric}_mean"] = float(values.mean())
                row[f"{metric}_std"] = (
                    float(values.std(ddof=1)) if values.size > 1 else 0.0
                )
            rows.append(row)
        return rows


class SweepRunner:
    """Expands a spec into shards and executes them with resume.

    Parameters
    ----------
    spec:
        The sweep grid.
    store:
        Artifact store (a path is accepted) shards commit into.
    max_workers:
        Process-pool width for ``parallel=True`` runs.
    retry:
        Per-shard retry budget and backoff shape; defaults to
        :data:`DEFAULT_SHARD_RETRY`.  ``max_attempts=1`` disables
        retries (one failure quarantines immediately).
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` arming the
        engine's chaos seams.  ``None`` (or an empty plan) leaves every
        shard on the unhardened code path.
    vectorize_seeds:
        Coalesce trainable shards that differ only in the seed axis
        into stacked :func:`run_shard_group` calls (bit-identical
        per-shard artifacts on the reference backend).  Groups run
        in-process; a group that fails for any reason falls back to
        the ordinary per-shard retry path, and an armed fault plan
        disables grouping outright (the chaos seams key on per-shard
        attempts).
    backend:
        Numeric backend for vectorized groups (name or
        :class:`~repro.backend.Backend`; ``None`` = the bit-identical
        reference tier).  Only consulted when ``vectorize_seeds`` is
        on.
    sleep:
        Injectable sleeper for backoff waits (tests pass a no-op).
    obs_dir / obs_level:
        Per-shard observability spec, shipped to workers as picklable
        strings (see :func:`_shard_obs`).  With a directory every shard
        writes its own JSONL event log under it and persists its metric
        snapshot into the artifact; either way the runner merges all
        shard snapshots — fresh or reloaded on resume — into the
        process-global registry when one is enabled.  Defaults are the
        unobserved path.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        store: "ArtifactStore | PathLike",
        max_workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        vectorize_seeds: bool = False,
        backend=None,
        sleep: Callable[[float], None] = time.sleep,
        obs_dir: Optional[PathLike] = None,
        obs_level: str = "info",
    ):
        self.spec = spec
        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self.max_workers = max_workers
        self.retry = retry if retry is not None else DEFAULT_SHARD_RETRY
        plan = fault_plan
        if plan is not None and plan.is_empty():
            plan = None  # empty plan ≡ no plan, everywhere
        self.fault_plan = plan
        self.vectorize_seeds = bool(vectorize_seeds)
        self.backend = backend
        self._sleep = sleep
        self.obs_dir = str(obs_dir) if obs_dir is not None else None
        self.obs_level = obs_level

    def run(
        self,
        parallel: bool = False,
        max_shards: Optional[int] = None,
        progress: Optional[Callable[[str, str], None]] = None,
    ) -> SweepResult:
        """Run the sweep; skip committed shards; write the manifest.

        ``max_shards`` caps how many *pending* shards execute this call
        (the rest stay pending for the next invocation) — the hook CI
        uses to simulate an interrupted sweep, and the knob for running
        a large grid in instalments.  ``progress`` receives
        ``(shard_id, status)`` as outcomes land.

        Failures never abort siblings: a shard that errors is retried
        per the runner's :class:`~repro.resilience.RetryPolicy` and,
        if it exhausts the budget, lands as a ``"quarantined"`` outcome
        carrying the last attempt's traceback while every other shard
        still runs.  (``KeyboardInterrupt`` is not a failure — it still
        aborts the run; committed shards stay committed.)
        """
        obs = get_obs()
        shards = self.spec.expand()
        positions = {shard.shard_id: i for i, shard in enumerate(shards)}
        outcomes: List[ShardOutcome] = []
        pending: List[ShardSpec] = []
        for shard in shards:
            if self.store.has_shard(shard.shard_id):
                outcome = ShardOutcome(
                    shard, "skipped", self.store.load_shard_metrics(shard.shard_id)
                )
                outcomes.append(outcome)
                if obs.enabled:
                    # Resume merge: a skipped shard's persisted obs
                    # snapshot folds in exactly like its metrics do.
                    obs.metrics.merge_snapshot(
                        self.store.load_shard_obs(shard.shard_id)
                    )
                if progress is not None:
                    progress(shard.shard_id, "skipped")
            else:
                pending.append(shard)

        to_run = pending if max_shards is None else pending[:max_shards]
        deferred = [] if max_shards is None else pending[max_shards:]
        root = str(self.store.root)
        max_attempts = max(1, self.retry.max_attempts)

        def collect(
            shard: ShardSpec,
            summary: Dict[str, object],
            attempts: int,
            elapsed: float = 0.0,
            group_size: int = 1,
            group: Optional[str] = None,
        ) -> None:
            if summary["status"] == "error":
                outcome = ShardOutcome(
                    shard,
                    "quarantined",
                    {},
                    attempts=attempts,
                    error=str(summary.get("traceback") or summary.get("error")),
                )
            else:
                outcome = ShardOutcome(
                    shard,
                    str(summary["status"]),
                    dict(summary["metrics"]),
                    attempts=attempts,
                    elapsed=elapsed,
                    group_size=group_size,
                    group=group,
                )
            outcomes.append(outcome)
            if obs.enabled:
                obs.metrics.merge_snapshot(summary.get("obs"))
                obs.event(
                    "shard_done",
                    shard=shard.shard_id,
                    status=outcome.status,
                    attempts=attempts,
                    elapsed=round(elapsed, 6),
                )
            if progress is not None:
                progress(shard.shard_id, outcome.status)

        if self.vectorize_seeds and self.fault_plan is None:
            # Coalesce same-config seed runs into stacked groups; the
            # leftovers (baselines, singleton seeds, and — because the
            # max_shards cut above can split a group mid-seed-axis —
            # the tail of an interrupted group) keep the ordinary
            # per-shard path.  Chaos runs never group: the fault seams
            # key on per-shard attempt draws.
            groups, to_run = _seed_groups(to_run)
            for group_shards in groups:
                label = group_shards[0].shard_id
                # The span is the timer (ShardOutcome.elapsed must work
                # with obs disabled too, hence the perf_counter shadow).
                t0 = time.perf_counter()
                try:
                    with obs.span(
                        "sweep.group", group=label, size=len(group_shards)
                    ):
                        summaries = run_shard_group(
                            group_shards,
                            root,
                            backend=self.backend,
                            obs_dir=self.obs_dir,
                            obs_level=self.obs_level,
                        )
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception:
                    # Fall back: the group rejoins the per-shard retry
                    # path (run_shard is idempotent, so members already
                    # committed before the failure are skipped there).
                    to_run.extend(group_shards)
                    continue
                elapsed = time.perf_counter() - t0
                for shard, summary in zip(group_shards, summaries):
                    collect(
                        shard,
                        summary,
                        attempts=1,
                        elapsed=elapsed,
                        group_size=len(group_shards),
                        group=label,
                    )

        if parallel and len(to_run) > 1:
            workers = self.max_workers or min(len(to_run), 4)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                # Retry in waves: attempt k runs every still-failing
                # shard concurrently, then the runner sleeps the
                # longest of their backoff delays before attempt k+1.
                # Failures come back as data (_guarded_run_shard), so
                # one bad shard never poisons pool.map for the others.
                wave = list(to_run)
                for attempt in range(max_attempts):
                    n = len(wave)
                    with obs.span("sweep.wave", attempt=attempt, shards=n):
                        summaries = list(
                            pool.map(
                                _guarded_run_shard,
                                wave,
                                [root] * n,
                                [self.fault_plan] * n,
                                [attempt] * n,
                                [positions[s.shard_id] for s in wave],
                                [self.obs_dir] * n,
                                [self.obs_level] * n,
                            )
                        )
                    failed: List[ShardSpec] = []
                    for shard, summary in zip(wave, summaries):
                        if (
                            summary["status"] == "error"
                            and attempt + 1 < max_attempts
                        ):
                            failed.append(shard)
                        else:
                            collect(shard, summary, attempts=attempt + 1)
                    if not failed:
                        break
                    self._sleep(
                        max(
                            self.retry.delay(attempt, s.shard_id)
                            for s in failed
                        )
                    )
                    wave = failed
        else:
            for shard in to_run:
                position = positions[shard.shard_id]
                # Span shadows the functional timer (see the group loop).
                t0 = time.perf_counter()
                for attempt in range(max_attempts):
                    try:
                        with obs.span(
                            "sweep.shard", shard=shard.shard_id, attempt=attempt
                        ):
                            summary = run_shard(
                                shard,
                                root,
                                fault_plan=self.fault_plan,
                                attempt=attempt,
                                position=position,
                                obs_dir=self.obs_dir,
                                obs_level=self.obs_level,
                            )
                    except Exception:
                        if attempt + 1 < max_attempts:
                            self._sleep(self.retry.delay(attempt, shard.shard_id))
                            continue
                        summary = {
                            "shard_id": shard.shard_id,
                            "status": "error",
                            "traceback": traceback.format_exc(),
                        }
                    collect(
                        shard,
                        summary,
                        attempts=attempt + 1,
                        elapsed=time.perf_counter() - t0,
                    )
                    break

        # Keep outcomes in expansion order — aggregation and manifests
        # must not depend on completion order.
        outcomes.sort(key=lambda o: positions[o.shard_id])
        result = SweepResult(spec=self.spec, outcomes=outcomes, pending=deferred)

        def manifest_entry(o: ShardOutcome) -> Dict[str, object]:
            if o.status == "quarantined":
                return {
                    "shard_id": o.shard_id,
                    "status": "quarantined",
                    "attempts": o.attempts,
                    "error": o.error,
                }
            # Successful entries keep the pre-hardening shape exactly,
            # so a manifest from a recovered (retried) sweep is equal
            # to one from a fault-free sweep.
            return {
                "shard_id": o.shard_id,
                "status": "complete",
                "metrics": o.metrics,
            }

        self.store.write_manifest(
            {
                "version": 1,
                "spec": self.spec.to_json_dict(),
                "shards": [manifest_entry(o) for o in outcomes]
                + [
                    {"shard_id": s.shard_id, "status": "pending"}
                    for s in deferred
                ],
                "complete": result.complete,
            }
        )
        return result
