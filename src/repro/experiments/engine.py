"""The sharded sweep engine: grid execution over a process pool.

:func:`run_shard` is the whole unit of work — build the shard's config,
data, and strategy, train it if it is learned, back-test it, and commit
a :class:`~repro.experiments.artifacts.ShardArtifact`.  It is a
module-level function of picklable arguments, so the *same code path*
runs a shard in-process and in a worker: serial and pooled sweeps are
bit-identical by construction (each shard derives all of its randomness
from its own spec, never from execution order or process state).

:class:`SweepRunner` orchestrates: expand the spec, skip shards whose
artifacts are already committed (checkpoint/resume), run the rest
serially or on a :class:`~concurrent.futures.ProcessPoolExecutor`, and
write the sweep manifest.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..agents import run_backtest
from ..registry import (
    DEFAULT_REGISTRY,
    is_trainable,
    strategy_params_from_config,
)
from ..utils.serialization import PathLike
from .artifacts import (
    ArtifactStore,
    ShardArtifact,
    _history_to_dict,
    _metrics_to_dict,
    _result_to_series,
    execution_metrics_from_summary,
    risk_metrics_from_summary,
)
from .runner import build_experiment_data, make_trainer
from .spec import ExperimentSpec, ShardSpec


def run_shard(shard: ShardSpec, store_root: str) -> Dict[str, object]:
    """Execute one shard end to end and commit its artifact.

    Returns a small JSON-able summary (the pool ships it back instead
    of the trajectories).  Idempotent: a shard already committed in the
    store is skipped, so racing a resume against a half-finished sweep
    never recomputes finished work.
    """
    store = ArtifactStore(store_root)
    shard_id = shard.shard_id
    if store.has_shard(shard_id):
        return {
            "shard_id": shard_id,
            "status": "skipped",
            "metrics": store.load_shard_metrics(shard_id),
        }

    config = shard.config()
    data = build_experiment_data(config)
    params = strategy_params_from_config(
        shard.strategy, config, n_assets=len(data.assets)
    )
    agent = DEFAULT_REGISTRY.create(shard.strategy, **params)

    history = None
    weights_state = None
    if is_trainable(shard.strategy):
        history = _history_to_dict(make_trainer(agent, data.train, config).train())
        weights_state = agent.network.state_dict()

    result = run_backtest(
        agent,
        data.test,
        observation=config.observation,
        commission=config.commission,
        execution=shard.build_execution_engine(),
        risk=shard.build_risk_engine(),
    )
    extra: Dict[str, object] = {"assets": list(data.assets)}
    metrics = _metrics_to_dict(result.metrics)
    result_extra = dict(result.extra)
    risk_summary = result_extra.pop("risk", None)
    if result_extra:
        # Implementation-shortfall report of a non-ideal execution
        # regime; merged into the summary metrics so aggregation and
        # tables see it alongside fAPV.
        extra["execution"] = result_extra
        metrics.update(execution_metrics_from_summary(result_extra))
    if risk_summary:
        # Constraint-enforcement report of a non-none risk regime —
        # same ride-along discipline as the execution summary.
        extra["risk"] = risk_summary
        metrics.update(risk_metrics_from_summary(risk_summary))
    artifact = ShardArtifact(
        shard=shard,
        strategy_spec={"strategy": shard.strategy, "params": params},
        metrics=result.metrics,
        series=_result_to_series(result),
        weights_state=weights_state,
        history=history,
        extra=extra,
    )
    store.save_shard(artifact)
    return {
        "shard_id": shard_id,
        "status": "ran",
        "metrics": metrics,
    }


@dataclass
class ShardOutcome:
    """One shard's fate in a sweep run."""

    shard: ShardSpec
    status: str  # "ran" | "skipped"
    metrics: Dict[str, float]

    @property
    def shard_id(self) -> str:
        return self.shard.shard_id


@dataclass
class SweepResult:
    """Outcome of one :meth:`SweepRunner.run` call."""

    spec: ExperimentSpec
    outcomes: List[ShardOutcome]
    pending: List[ShardSpec]  # expanded but not executed (max_shards cut)

    @property
    def ran(self) -> List[ShardOutcome]:
        return [o for o in self.outcomes if o.status == "ran"]

    @property
    def skipped(self) -> List[ShardOutcome]:
        return [o for o in self.outcomes if o.status == "skipped"]

    @property
    def complete(self) -> bool:
        return not self.pending

    def aggregate(self) -> List[Dict[str, object]]:
        """Across-seed mean±std per (experiment, strategy, cost,
        execution, risk) grid cell.

        The multi-seed evidence the single-run paper tables lack: each
        row pools every seed of one grid cell.  Cells run under a
        non-ideal execution regime additionally aggregate their
        implementation-shortfall metrics; cells run under a non-none
        risk regime their constraint-violation metrics.
        """
        groups: Dict[Tuple[int, str, str, str, str], List[Dict[str, float]]] = {}
        for outcome in self.outcomes:
            key = (
                outcome.shard.experiment,
                outcome.shard.strategy,
                outcome.shard.cost.name,
                outcome.shard.execution.name,
                outcome.shard.risk.name,
            )
            groups.setdefault(key, []).append(outcome.metrics)
        rows = []
        for (experiment, strategy, cost, execution, risk), metrics_list in sorted(
            groups.items()
        ):
            row: Dict[str, object] = {
                "experiment": experiment,
                "strategy": strategy,
                "cost": cost,
                "execution": execution,
                "risk": risk,
                "seeds": len(metrics_list),
            }
            metrics = (
                ("fapv", "mdd", "sharpe")
                + (
                    ("shortfall", "fill_ratio")
                    if all("shortfall" in m for m in metrics_list)
                    else ()
                )
                + (
                    ("violation_rate", "lockout_rate", "risk_turnover")
                    if all("violation_rate" in m for m in metrics_list)
                    else ()
                )
            )
            for metric in metrics:
                values = np.array([m[metric] for m in metrics_list], dtype=np.float64)
                row[f"{metric}_mean"] = float(values.mean())
                row[f"{metric}_std"] = (
                    float(values.std(ddof=1)) if values.size > 1 else 0.0
                )
            rows.append(row)
        return rows


class SweepRunner:
    """Expands a spec into shards and executes them with resume.

    Parameters
    ----------
    spec:
        The sweep grid.
    store:
        Artifact store (a path is accepted) shards commit into.
    max_workers:
        Process-pool width for ``parallel=True`` runs.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        store: "ArtifactStore | PathLike",
        max_workers: Optional[int] = None,
    ):
        self.spec = spec
        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self.max_workers = max_workers

    def run(
        self,
        parallel: bool = False,
        max_shards: Optional[int] = None,
        progress: Optional[Callable[[str, str], None]] = None,
    ) -> SweepResult:
        """Run the sweep; skip committed shards; write the manifest.

        ``max_shards`` caps how many *pending* shards execute this call
        (the rest stay pending for the next invocation) — the hook CI
        uses to simulate an interrupted sweep, and the knob for running
        a large grid in instalments.  ``progress`` receives
        ``(shard_id, status)`` as outcomes land.
        """
        shards = self.spec.expand()
        outcomes: List[ShardOutcome] = []
        pending: List[ShardSpec] = []
        for shard in shards:
            if self.store.has_shard(shard.shard_id):
                outcome = ShardOutcome(
                    shard, "skipped", self.store.load_shard_metrics(shard.shard_id)
                )
                outcomes.append(outcome)
                if progress is not None:
                    progress(shard.shard_id, "skipped")
            else:
                pending.append(shard)

        to_run = pending if max_shards is None else pending[:max_shards]
        deferred = [] if max_shards is None else pending[max_shards:]
        root = str(self.store.root)

        def collect(shard: ShardSpec, summary: Dict[str, object]) -> None:
            outcome = ShardOutcome(
                shard, str(summary["status"]), dict(summary["metrics"])
            )
            outcomes.append(outcome)
            if progress is not None:
                progress(shard.shard_id, outcome.status)

        if parallel and len(to_run) > 1:
            workers = self.max_workers or min(len(to_run), 4)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                # pool.map yields in submission order as results land,
                # so progress streams while later shards still run.
                for shard, summary in zip(
                    to_run, pool.map(run_shard, to_run, [root] * len(to_run))
                ):
                    collect(shard, summary)
        else:
            for shard in to_run:
                collect(shard, run_shard(shard, root))

        # Keep outcomes in expansion order — aggregation and manifests
        # must not depend on completion order.
        order = {shard.shard_id: i for i, shard in enumerate(shards)}
        outcomes.sort(key=lambda o: order[o.shard_id])
        result = SweepResult(spec=self.spec, outcomes=outcomes, pending=deferred)
        self.store.write_manifest(
            {
                "version": 1,
                "spec": self.spec.to_json_dict(),
                "shards": [
                    {
                        "shard_id": o.shard_id,
                        "status": "complete",
                        "metrics": o.metrics,
                    }
                    for o in outcomes
                ]
                + [
                    {"shard_id": s.shard_id, "status": "pending"}
                    for s in deferred
                ],
                "complete": result.complete,
            }
        )
        return result
