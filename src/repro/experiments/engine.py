"""The sharded sweep engine: grid execution over a process pool.

:func:`run_shard` is the whole unit of work — build the shard's config,
data, and strategy, train it if it is learned, back-test it, and commit
a :class:`~repro.experiments.artifacts.ShardArtifact`.  It is a
module-level function of picklable arguments, so the *same code path*
runs a shard in-process and in a worker: serial and pooled sweeps are
bit-identical by construction (each shard derives all of its randomness
from its own spec, never from execution order or process state).

:class:`SweepRunner` orchestrates: expand the spec, skip shards whose
artifacts are already committed (checkpoint/resume), run the rest
serially or on a :class:`~concurrent.futures.ProcessPoolExecutor`, and
write the sweep manifest.

Fault tolerance (PR 7): each pending shard gets up to
``RetryPolicy.max_attempts`` tries with capped exponential backoff and
deterministic jitter between them.  A shard that exhausts its attempts
is *quarantined* — reported in the :class:`SweepResult` and the
manifest with the failing worker's traceback text — and its siblings
run to completion regardless.  A :class:`~repro.resilience.FaultPlan`
can be threaded through to arm the engine's seams (transient raises,
mid-write crashes, permanently broken shards) deterministically; a
``None`` or empty plan is the unhardened path, bit-identical to before
the seams existed.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..agents import run_backtest
from ..registry import (
    DEFAULT_REGISTRY,
    is_trainable,
    strategy_params_from_config,
)
from ..resilience import FaultPlan, InjectedFault, RetryPolicy, injector_from
from ..utils.serialization import PathLike, save_state_dict
from .artifacts import (
    ArtifactStore,
    ShardArtifact,
    _history_to_dict,
    _metrics_to_dict,
    _result_to_series,
    execution_metrics_from_summary,
    risk_metrics_from_summary,
)
from .runner import build_experiment_data, make_trainer
from .spec import ExperimentSpec, ShardSpec

# One failed attempt is usually a transient (preempted worker, flaky
# filesystem), so the default gives every shard three tries with
# sub-minute backoff before quarantining it.
DEFAULT_SHARD_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.5, multiplier=2.0, max_delay=30.0, jitter=0.25
)


def run_shard(
    shard: ShardSpec,
    store_root: str,
    fault_plan: Optional[FaultPlan] = None,
    attempt: int = 0,
    position: int = 0,
) -> Dict[str, object]:
    """Execute one shard end to end and commit its artifact.

    Returns a small JSON-able summary (the pool ships it back instead
    of the trajectories).  Idempotent: a shard already committed in the
    store is skipped, so racing a resume against a half-finished sweep
    never recomputes finished work.

    ``fault_plan`` arms the engine's chaos seams for this attempt
    (``attempt``/``position`` key the deterministic fault draws —
    ``position`` is the shard's index in spec-expansion order).  With no
    plan the extra parameters are inert and the body is the original
    code path.
    """
    store = ArtifactStore(store_root)
    shard_id = shard.shard_id
    if store.has_shard(shard_id):
        return {
            "shard_id": shard_id,
            "status": "skipped",
            "metrics": store.load_shard_metrics(shard_id),
        }

    injector = injector_from(fault_plan)
    if injector is not None:
        kind = injector.shard_fault(shard_id, position, attempt)
        if kind == "crash":
            # Emulate a worker killed mid-write: a partial directory
            # with arrays but no shard.json commit mark.  has_shard
            # reads it as absent, so the retry re-runs cleanly.
            directory = store.shard_dir(shard_id)
            directory.mkdir(parents=True, exist_ok=True)
            save_state_dict(
                directory / "series.npz", {"values": np.zeros(1)}
            )
            raise InjectedFault("sweep.crash", f"{shard_id}:{attempt}")
        if kind is not None:
            raise InjectedFault(f"sweep.{kind}", f"{shard_id}:{attempt}")

    config = shard.config()
    data = build_experiment_data(config)
    params = strategy_params_from_config(
        shard.strategy, config, n_assets=len(data.assets)
    )
    agent = DEFAULT_REGISTRY.create(shard.strategy, **params)

    history = None
    weights_state = None
    if is_trainable(shard.strategy):
        history = _history_to_dict(make_trainer(agent, data.train, config).train())
        weights_state = agent.network.state_dict()

    result = run_backtest(
        agent,
        data.test,
        observation=config.observation,
        commission=config.commission,
        execution=shard.build_execution_engine(),
        risk=shard.build_risk_engine(),
    )
    extra: Dict[str, object] = {"assets": list(data.assets)}
    metrics = _metrics_to_dict(result.metrics)
    result_extra = dict(result.extra)
    risk_summary = result_extra.pop("risk", None)
    if result_extra:
        # Implementation-shortfall report of a non-ideal execution
        # regime; merged into the summary metrics so aggregation and
        # tables see it alongside fAPV.
        extra["execution"] = result_extra
        metrics.update(execution_metrics_from_summary(result_extra))
    if risk_summary:
        # Constraint-enforcement report of a non-none risk regime —
        # same ride-along discipline as the execution summary.
        extra["risk"] = risk_summary
        metrics.update(risk_metrics_from_summary(risk_summary))
    artifact = ShardArtifact(
        shard=shard,
        strategy_spec={"strategy": shard.strategy, "params": params},
        metrics=result.metrics,
        series=_result_to_series(result),
        weights_state=weights_state,
        history=history,
        extra=extra,
    )
    store.save_shard(artifact)
    return {
        "shard_id": shard_id,
        "status": "ran",
        "metrics": metrics,
    }


def _guarded_run_shard(
    shard: ShardSpec,
    store_root: str,
    fault_plan: Optional[FaultPlan],
    attempt: int,
    position: int,
) -> Dict[str, object]:
    """Pool-safe wrapper: failures come back as data, not exceptions.

    ``ProcessPoolExecutor`` pickles a worker exception without its
    traceback, so the orchestrator would only ever see the repr.  This
    wrapper formats the traceback *inside* the worker and ships it home
    in the summary, where retry/quarantine logic (and ultimately the
    manifest) can use it.  ``KeyboardInterrupt``/``SystemExit`` still
    propagate — an interrupted sweep must stop, not quarantine.
    """
    try:
        return run_shard(
            shard,
            store_root,
            fault_plan=fault_plan,
            attempt=attempt,
            position=position,
        )
    except Exception as exc:
        return {
            "shard_id": shard.shard_id,
            "status": "error",
            "error": repr(exc),
            "traceback": traceback.format_exc(),
        }


@dataclass
class ShardOutcome:
    """One shard's fate in a sweep run.

    ``attempts`` counts tries actually made (1 on the healthy path);
    ``error`` carries the final attempt's traceback text when the shard
    was quarantined.
    """

    shard: ShardSpec
    status: str  # "ran" | "skipped" | "quarantined"
    metrics: Dict[str, float]
    attempts: int = 1
    error: Optional[str] = None

    @property
    def shard_id(self) -> str:
        return self.shard.shard_id


@dataclass
class SweepResult:
    """Outcome of one :meth:`SweepRunner.run` call."""

    spec: ExperimentSpec
    outcomes: List[ShardOutcome]
    pending: List[ShardSpec]  # expanded but not executed (max_shards cut)

    @property
    def ran(self) -> List[ShardOutcome]:
        return [o for o in self.outcomes if o.status == "ran"]

    @property
    def skipped(self) -> List[ShardOutcome]:
        return [o for o in self.outcomes if o.status == "skipped"]

    @property
    def quarantined(self) -> List[ShardOutcome]:
        """Shards that exhausted their retry budget this run."""
        return [o for o in self.outcomes if o.status == "quarantined"]

    @property
    def complete(self) -> bool:
        return not self.pending and not self.quarantined

    def aggregate(self) -> List[Dict[str, object]]:
        """Across-seed mean±std per (experiment, strategy, cost,
        execution, risk) grid cell.

        The multi-seed evidence the single-run paper tables lack: each
        row pools every seed of one grid cell.  Cells run under a
        non-ideal execution regime additionally aggregate their
        implementation-shortfall metrics; cells run under a non-none
        risk regime their constraint-violation metrics.
        """
        groups: Dict[Tuple[int, str, str, str, str], List[Dict[str, float]]] = {}
        for outcome in self.outcomes:
            if outcome.status == "quarantined":
                continue  # no metrics to pool; reported, not aggregated
            key = (
                outcome.shard.experiment,
                outcome.shard.strategy,
                outcome.shard.cost.name,
                outcome.shard.execution.name,
                outcome.shard.risk.name,
            )
            groups.setdefault(key, []).append(outcome.metrics)
        rows = []
        for (experiment, strategy, cost, execution, risk), metrics_list in sorted(
            groups.items()
        ):
            row: Dict[str, object] = {
                "experiment": experiment,
                "strategy": strategy,
                "cost": cost,
                "execution": execution,
                "risk": risk,
                "seeds": len(metrics_list),
            }
            metrics = (
                ("fapv", "mdd", "sharpe")
                + (
                    ("shortfall", "fill_ratio")
                    if all("shortfall" in m for m in metrics_list)
                    else ()
                )
                + (
                    ("violation_rate", "lockout_rate", "risk_turnover")
                    if all("violation_rate" in m for m in metrics_list)
                    else ()
                )
            )
            for metric in metrics:
                values = np.array([m[metric] for m in metrics_list], dtype=np.float64)
                row[f"{metric}_mean"] = float(values.mean())
                row[f"{metric}_std"] = (
                    float(values.std(ddof=1)) if values.size > 1 else 0.0
                )
            rows.append(row)
        return rows


class SweepRunner:
    """Expands a spec into shards and executes them with resume.

    Parameters
    ----------
    spec:
        The sweep grid.
    store:
        Artifact store (a path is accepted) shards commit into.
    max_workers:
        Process-pool width for ``parallel=True`` runs.
    retry:
        Per-shard retry budget and backoff shape; defaults to
        :data:`DEFAULT_SHARD_RETRY`.  ``max_attempts=1`` disables
        retries (one failure quarantines immediately).
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` arming the
        engine's chaos seams.  ``None`` (or an empty plan) leaves every
        shard on the unhardened code path.
    sleep:
        Injectable sleeper for backoff waits (tests pass a no-op).
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        store: "ArtifactStore | PathLike",
        max_workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.spec = spec
        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self.max_workers = max_workers
        self.retry = retry if retry is not None else DEFAULT_SHARD_RETRY
        plan = fault_plan
        if plan is not None and plan.is_empty():
            plan = None  # empty plan ≡ no plan, everywhere
        self.fault_plan = plan
        self._sleep = sleep

    def run(
        self,
        parallel: bool = False,
        max_shards: Optional[int] = None,
        progress: Optional[Callable[[str, str], None]] = None,
    ) -> SweepResult:
        """Run the sweep; skip committed shards; write the manifest.

        ``max_shards`` caps how many *pending* shards execute this call
        (the rest stay pending for the next invocation) — the hook CI
        uses to simulate an interrupted sweep, and the knob for running
        a large grid in instalments.  ``progress`` receives
        ``(shard_id, status)`` as outcomes land.

        Failures never abort siblings: a shard that errors is retried
        per the runner's :class:`~repro.resilience.RetryPolicy` and,
        if it exhausts the budget, lands as a ``"quarantined"`` outcome
        carrying the last attempt's traceback while every other shard
        still runs.  (``KeyboardInterrupt`` is not a failure — it still
        aborts the run; committed shards stay committed.)
        """
        shards = self.spec.expand()
        positions = {shard.shard_id: i for i, shard in enumerate(shards)}
        outcomes: List[ShardOutcome] = []
        pending: List[ShardSpec] = []
        for shard in shards:
            if self.store.has_shard(shard.shard_id):
                outcome = ShardOutcome(
                    shard, "skipped", self.store.load_shard_metrics(shard.shard_id)
                )
                outcomes.append(outcome)
                if progress is not None:
                    progress(shard.shard_id, "skipped")
            else:
                pending.append(shard)

        to_run = pending if max_shards is None else pending[:max_shards]
        deferred = [] if max_shards is None else pending[max_shards:]
        root = str(self.store.root)
        max_attempts = max(1, self.retry.max_attempts)

        def collect(
            shard: ShardSpec, summary: Dict[str, object], attempts: int
        ) -> None:
            if summary["status"] == "error":
                outcome = ShardOutcome(
                    shard,
                    "quarantined",
                    {},
                    attempts=attempts,
                    error=str(summary.get("traceback") or summary.get("error")),
                )
            else:
                outcome = ShardOutcome(
                    shard,
                    str(summary["status"]),
                    dict(summary["metrics"]),
                    attempts=attempts,
                )
            outcomes.append(outcome)
            if progress is not None:
                progress(shard.shard_id, outcome.status)

        if parallel and len(to_run) > 1:
            workers = self.max_workers or min(len(to_run), 4)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                # Retry in waves: attempt k runs every still-failing
                # shard concurrently, then the runner sleeps the
                # longest of their backoff delays before attempt k+1.
                # Failures come back as data (_guarded_run_shard), so
                # one bad shard never poisons pool.map for the others.
                wave = list(to_run)
                for attempt in range(max_attempts):
                    n = len(wave)
                    summaries = list(
                        pool.map(
                            _guarded_run_shard,
                            wave,
                            [root] * n,
                            [self.fault_plan] * n,
                            [attempt] * n,
                            [positions[s.shard_id] for s in wave],
                        )
                    )
                    failed: List[ShardSpec] = []
                    for shard, summary in zip(wave, summaries):
                        if (
                            summary["status"] == "error"
                            and attempt + 1 < max_attempts
                        ):
                            failed.append(shard)
                        else:
                            collect(shard, summary, attempts=attempt + 1)
                    if not failed:
                        break
                    self._sleep(
                        max(
                            self.retry.delay(attempt, s.shard_id)
                            for s in failed
                        )
                    )
                    wave = failed
        else:
            for shard in to_run:
                position = positions[shard.shard_id]
                for attempt in range(max_attempts):
                    try:
                        summary = run_shard(
                            shard,
                            root,
                            fault_plan=self.fault_plan,
                            attempt=attempt,
                            position=position,
                        )
                    except Exception:
                        if attempt + 1 < max_attempts:
                            self._sleep(self.retry.delay(attempt, shard.shard_id))
                            continue
                        summary = {
                            "shard_id": shard.shard_id,
                            "status": "error",
                            "traceback": traceback.format_exc(),
                        }
                    collect(shard, summary, attempts=attempt + 1)
                    break

        # Keep outcomes in expansion order — aggregation and manifests
        # must not depend on completion order.
        outcomes.sort(key=lambda o: positions[o.shard_id])
        result = SweepResult(spec=self.spec, outcomes=outcomes, pending=deferred)

        def manifest_entry(o: ShardOutcome) -> Dict[str, object]:
            if o.status == "quarantined":
                return {
                    "shard_id": o.shard_id,
                    "status": "quarantined",
                    "attempts": o.attempts,
                    "error": o.error,
                }
            # Successful entries keep the pre-hardening shape exactly,
            # so a manifest from a recovered (retried) sweep is equal
            # to one from a fault-free sweep.
            return {
                "shard_id": o.shard_id,
                "status": "complete",
                "metrics": o.metrics,
            }

        self.store.write_manifest(
            {
                "version": 1,
                "spec": self.spec.to_json_dict(),
                "shards": [manifest_entry(o) for o in outcomes]
                + [
                    {"shard_id": s.shard_id, "status": "pending"}
                    for s in deferred
                ],
                "complete": result.complete,
            }
        )
        return result
