"""Walk-forward (rolling-window) evaluation — the OLPS online setting.

The paper's Table 3 is train-once/test-once; Jiang et al.'s framing is
explicitly *online*, so this evaluator rolls train/test windows through
a panel (:func:`repro.data.splits.walk_forward_windows`), trains each
learned strategy on the first fold's training span, optionally
fine-tunes it between folds (the fused trainer, with the optimizer's
moments carried across folds), and back-tests every fold's hold-out
slice through :meth:`~repro.envs.backtester.Backtester.run_window`.

Beyond per-fold metrics it attributes performance to *market regimes*
(:class:`~repro.data.regimes.RegimeSchedule`): every back-test period is
labeled by the regime in force at its timestamp, and fAPV/MDD/Sharpe are
recomputed per regime — "how did SDP do in crashes?" becomes a table
row instead of a guess.  Aggregates are mean±std across seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd.optim import Adam
from ..data.market import MarketData
from ..data.regimes import RegimeSchedule, default_crypto_schedule
from ..data.splits import ExperimentWindow
from ..envs.backtester import Backtester
from ..obs import get_obs
from ..metrics.performance import (
    final_apv,
    max_drawdown,
    sharpe_ratio,
)
from ..registry import (
    DEFAULT_REGISTRY,
    is_trainable,
    strategy_params_from_config,
)
from .config import ExperimentConfig
from .runner import make_trainer


def per_regime_metrics(
    values: np.ndarray,
    timestamps: np.ndarray,
    schedule: RegimeSchedule,
) -> Dict[str, Dict[str, float]]:
    """fAPV/MDD/Sharpe of a value trajectory, split by market regime.

    ``values[i]`` is the portfolio value at ``timestamps[i]``; the
    period return ``values[i+1]/values[i]`` is attributed to the regime
    in force at its *start* (``timestamps[i]`` — the regime the position
    was actually held through).  Per regime, the labeled returns are
    compounded into a sub-trajectory and the standard metrics run on it,
    so a regime's fAPV is exactly the portfolio growth realised while
    that regime was in force.
    """
    values = np.asarray(values, dtype=np.float64)
    timestamps = np.asarray(timestamps)
    if values.shape != timestamps.shape:
        raise ValueError(
            f"values {values.shape} and timestamps {timestamps.shape} "
            "must align"
        )
    if values.size < 2:
        return {}
    returns = values[1:] / values[:-1]
    labels = schedule.labels(timestamps[:-1])
    out: Dict[str, Dict[str, float]] = {}
    for name in sorted(set(labels)):
        rets = returns[np.array([lab == name for lab in labels])]
        sub_values = np.concatenate([[1.0], np.cumprod(rets)])
        out[name] = {
            "fapv": final_apv(sub_values),
            "mdd": max_drawdown(sub_values),
            "sharpe": sharpe_ratio(sub_values) if sub_values.size > 2 else 0.0,
            "periods": int(rets.size),
        }
    return out


@dataclass
class FoldRecord:
    """One (fold, strategy, seed) back-test."""

    fold: int
    strategy: str
    seed: int
    window: ExperimentWindow
    metrics: Dict[str, float]
    regimes: Dict[str, Dict[str, float]]
    #: Per-constraint binding counts of this fold's back-test (empty
    #: without a risk engine) — which limits actually shaped the book.
    bindings: Dict[str, int] = field(default_factory=dict)


def _mean_std(values: Sequence[float]) -> Tuple[float, float]:
    arr = np.asarray(values, dtype=np.float64)
    return (
        float(arr.mean()),
        float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
    )


@dataclass
class WalkForwardReport:
    """All fold records plus the aggregate views tables render."""

    records: List[FoldRecord] = field(default_factory=list)

    def fold_aggregates(self) -> List[Dict[str, object]]:
        """Per (fold, strategy) mean±std across seeds."""
        groups: Dict[Tuple[int, str], List[FoldRecord]] = {}
        for rec in self.records:
            groups.setdefault((rec.fold, rec.strategy), []).append(rec)
        rows = []
        for (fold, strategy), recs in sorted(groups.items()):
            window = recs[0].window
            row: Dict[str, object] = {
                "fold": fold,
                "strategy": strategy,
                "test_start": window.test_start,
                "test_end": window.test_end,
                "seeds": len(recs),
            }
            metrics = (
                ("fapv", "mdd", "sharpe")
                + (
                    ("shortfall",)
                    if all("shortfall" in r.metrics for r in recs)
                    else ()
                )
                + (
                    ("violation_rate",)
                    if all("violation_rate" in r.metrics for r in recs)
                    else ()
                )
            )
            for metric in metrics:
                mean, std = _mean_std([r.metrics[metric] for r in recs])
                row[f"{metric}_mean"] = mean
                row[f"{metric}_std"] = std
            rows.append(row)
        return rows

    def binding_attribution(self) -> List[Dict[str, object]]:
        """Per (fold, strategy) constraint-binding counts, summed over
        seeds — which limit shaped each fold's book.  Empty when the
        walk ran without a risk engine."""
        groups: Dict[Tuple[int, str], Dict[str, int]] = {}
        seeds: Dict[Tuple[int, str], int] = {}
        for rec in self.records:
            if not rec.bindings:
                continue
            key = (rec.fold, rec.strategy)
            counts = groups.setdefault(key, {})
            for name, count in rec.bindings.items():
                counts[name] = counts.get(name, 0) + int(count)
            seeds[key] = seeds.get(key, 0) + 1
        return [
            {
                "fold": fold,
                "strategy": strategy,
                "seeds": seeds[(fold, strategy)],
                "bindings": dict(sorted(groups[(fold, strategy)].items())),
            }
            for (fold, strategy) in sorted(groups)
        ]

    def regime_aggregates(self) -> List[Dict[str, object]]:
        """Per (regime, strategy) aggregates across folds and seeds.

        fAPV compounds across a (seed)'s folds — the growth realised
        over every period of that regime the walk traded — then
        mean±std is taken across seeds; MDD takes the worst fold;
        Sharpe averages period-weighted.
        """
        # (regime, strategy, seed) -> per-fold entries.
        per_seed: Dict[Tuple[str, str, int], List[Dict[str, float]]] = {}
        for rec in self.records:
            for regime, metrics in rec.regimes.items():
                per_seed.setdefault((regime, rec.strategy, rec.seed), []).append(
                    metrics
                )
        # Collapse folds within a seed, then aggregate across seeds.
        collapsed: Dict[Tuple[str, str], List[Dict[str, float]]] = {}
        for (regime, strategy, _seed), entries in sorted(per_seed.items()):
            total_periods = sum(e["periods"] for e in entries)
            weights = (
                np.array([e["periods"] for e in entries], dtype=np.float64)
                / max(total_periods, 1)
            )
            collapsed.setdefault((regime, strategy), []).append(
                {
                    "fapv": float(np.prod([e["fapv"] for e in entries])),
                    "mdd": float(max(e["mdd"] for e in entries)),
                    "sharpe": float(
                        np.sum(weights * np.array([e["sharpe"] for e in entries]))
                    ),
                    "periods": total_periods,
                }
            )
        rows = []
        for (regime, strategy), entries in sorted(collapsed.items()):
            row: Dict[str, object] = {
                "regime": regime,
                "strategy": strategy,
                "seeds": len(entries),
                "periods": int(entries[0]["periods"]),
            }
            for metric in ("fapv", "mdd", "sharpe"):
                mean, std = _mean_std([e[metric] for e in entries])
                row[f"{metric}_mean"] = mean
                row[f"{metric}_std"] = std
            rows.append(row)
        return rows


class WalkForwardEvaluator:
    """Rolls a strategy set through train/test folds with fine-tuning.

    Parameters
    ----------
    data:
        Full market panel (universe already selected) covering every
        fold's train+test span.
    folds:
        Windows from :func:`~repro.data.splits.walk_forward_windows`
        (or hand-built :class:`ExperimentWindow` rows).
    config:
        Hyper-parameter source (observation, network sizes, trainer
        settings); its own Table 1 window is ignored — the folds drive.
    strategies:
        Registry names to evaluate.
    seeds:
        Per-strategy repetition seeds (learned strategies re-initialise
        and re-train per seed; classical baselines are deterministic so
        they run once under the first seed's label).
    fine_tune_steps:
        Trainer steps on each subsequent fold's training panel
        (``0`` = train once on fold 0 and freeze).  The optimizer (and
        its moments) persists across folds, so fine-tuning continues
        the same trajectory rather than restarting Adam cold.
    schedule:
        Regime calendar for attribution (default: the 2016–2021 crypto
        narrative the generator uses).
    execution:
        Optional :class:`~repro.execution.ExecutionEngine`; every
        fold's back-test then prices rebalances against liquidity and
        fold metrics gain an ``shortfall`` entry (implementation
        shortfall vs the commission-only benchmark).
    risk:
        Optional :class:`~repro.risk.RiskEngine`; every fold's
        decisions are then projected onto the constraint set, fold
        metrics gain ``violation_rate``/``lockout_rate`` entries, and
        records carry per-fold binding-constraint attribution
        (:meth:`WalkForwardReport.binding_attribution`).
    """

    def __init__(
        self,
        data: MarketData,
        folds: Sequence[ExperimentWindow],
        config: ExperimentConfig,
        strategies: Sequence[str] = ("sdp", "jiang"),
        seeds: Sequence[int] = (7,),
        fine_tune_steps: int = 0,
        schedule: Optional[RegimeSchedule] = None,
        registry=None,
        execution=None,
        risk=None,
    ):
        if not folds:
            raise ValueError("need at least one fold")
        if not seeds:
            raise ValueError("need at least one seed")
        if fine_tune_steps < 0:
            raise ValueError("fine_tune_steps must be non-negative")
        self.data = data
        self.folds = list(folds)
        self.config = config
        self.strategies = list(strategies)
        self.seeds = list(seeds)
        self.fine_tune_steps = int(fine_tune_steps)
        self.schedule = schedule if schedule is not None else default_crypto_schedule()
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self.backtester = Backtester(
            observation=config.observation,
            commission=config.commission,
            execution=execution,
            risk=risk,
        )

    # ------------------------------------------------------------------
    def _trainer_seed(self, seed: int, fold_index: int) -> int:
        # Distinct deterministic stream per (seed, fold): fine-tune
        # minibatches on fold k must not replay fold 0's sample path.
        return seed + 100_003 * fold_index

    def _run_learned(self, strategy: str, seed: int) -> List[FoldRecord]:
        config = self.config
        params = strategy_params_from_config(
            strategy, config, n_assets=self.data.n_assets, seed=seed
        )
        agent = self.registry.create(strategy, **params)
        optimizer = Adam(agent.parameters(), config.learning_rate)
        obs = get_obs()
        records = []
        for k, window in enumerate(self.folds):
            with obs.span("walkforward.fold", strategy=strategy, seed=seed, fold=k):
                steps = config.train_steps if k == 0 else self.fine_tune_steps
                if steps > 0:
                    train_panel, _ = window.split(self.data)
                    make_trainer(
                        agent,
                        train_panel,
                        config,
                        optimizer=optimizer,
                        seed=self._trainer_seed(seed, k),
                    ).train(steps)
                records.append(
                    self._backtest_fold(agent, strategy, seed, k, window)
                )
        return records

    def _run_classical(self, strategy: str, seed: int) -> List[FoldRecord]:
        agent = self.registry.create(strategy)
        return [
            self._backtest_fold(agent, strategy, seed, k, window)
            for k, window in enumerate(self.folds)
        ]

    def _backtest_fold(
        self,
        agent,
        strategy: str,
        seed: int,
        fold_index: int,
        window: ExperimentWindow,
    ) -> FoldRecord:
        result, test_panel = self.backtester.run_window(agent, self.data, window)
        first = self.config.observation.first_decision_index()
        stamps = test_panel.timestamps[first : first + len(result.values)]
        metrics = {
            "fapv": result.fapv,
            "mdd": result.mdd,
            "sharpe": result.sharpe,
        }
        if "implementation_shortfall" in result.extra:
            metrics["shortfall"] = result.extra["implementation_shortfall"]
        bindings: Dict[str, int] = {}
        risk_summary = result.extra.get("risk")
        if risk_summary:
            metrics["violation_rate"] = float(risk_summary["violation_rate"])
            metrics["lockout_rate"] = float(risk_summary["lockout_rate"])
            bindings = {
                str(k): int(v)
                for k, v in risk_summary["binding_counts"].items()
            }
        return FoldRecord(
            fold=fold_index,
            strategy=strategy,
            seed=seed,
            window=window,
            metrics=metrics,
            regimes=per_regime_metrics(result.values, stamps, self.schedule),
            bindings=bindings,
        )

    # ------------------------------------------------------------------
    def run(self) -> WalkForwardReport:
        """Evaluate every strategy over every fold (and seed)."""
        report = WalkForwardReport()
        for strategy in self.strategies:
            if is_trainable(strategy):
                for seed in self.seeds:
                    report.records.extend(self._run_learned(strategy, seed))
            else:
                # Deterministic — one pass, labeled with the first seed.
                report.records.extend(
                    self._run_classical(strategy, self.seeds[0])
                )
        return report
