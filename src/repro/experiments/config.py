"""Experiment configuration registry (Tables 1 & 2).

Three *profiles* trade fidelity for runtime:

* ``paper``  — Table 2 verbatim: 30-minute candles, window 30,
  128×128 hidden, population size 10, batch 128, lr 1e-5.  A full
  training run at this scale takes hours in pure numpy; it exists so the
  exact configuration is executable, not because the benches run it.
* ``standard`` — the profile the Table 3/4 benches use: 2-hour candles
  and a moderately smaller SDP.  Preserves every structural property
  (population coding, two hidden layers, T=5, same objective, same
  baselines) at minutes-scale runtime.
* ``quick``  — minutes→seconds scale for tests and examples.

Profile choice never changes *what* is computed, only resolution/size.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from ..data.splits import ExperimentWindow, get_window
from ..envs.observations import ObservationConfig
from ..snn.neurons import LIFParameters

# Table 2, verbatim.
PAPER_HYPERPARAMETERS = {
    "v_threshold": 0.5,
    "current_decay": 0.5,
    "voltage_decay": 0.80,
    "surrogate_amplifier": 9.0,   # a1
    "surrogate_window": 0.4,      # a2
    "hidden_sizes": (128, 128),
    "batch_size": 128,
    "learning_rate": 1e-5,        # Table 2's "10e-5" read as 10^-5
    "timesteps": 5,               # T=5 (§III)
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to run one Table 3 experiment end to end."""

    experiment: int
    profile: str
    window: ExperimentWindow
    period_seconds: int
    num_assets: int
    observation: ObservationConfig
    hidden_sizes: Tuple[int, ...]
    timesteps: int
    encoder_pop_size: int
    decoder_pop_size: int
    lif: LIFParameters
    surrogate_amplifier: float
    surrogate_window: float
    batch_size: int
    learning_rate: float
    train_steps: int
    commission: float = 0.0025
    market_seed: int = 2022
    agent_seed: int = 7

    def __post_init__(self):
        # Normalise sequence input (e.g. JSON round-trips) so configs
        # decoded from artifact manifests compare equal to built ones.
        object.__setattr__(self, "hidden_sizes", tuple(self.hidden_sizes))

    @property
    def label(self) -> str:
        return f"exp{self.experiment}-{self.profile}"


_PROFILES: Dict[str, dict] = {
    "paper": dict(
        period_seconds=1800,
        num_assets=11,
        observation=ObservationConfig(window=30),
        hidden_sizes=(128, 128),
        timesteps=5,
        encoder_pop_size=10,
        decoder_pop_size=10,
        batch_size=128,
        learning_rate=1e-5,
        train_steps=20_000,
    ),
    "standard": dict(
        period_seconds=7200,
        num_assets=11,
        observation=ObservationConfig(window=12, stride=3),
        hidden_sizes=(64, 64),
        timesteps=5,
        encoder_pop_size=10,
        decoder_pop_size=10,
        batch_size=64,
        learning_rate=1e-3,
        train_steps=800,
        surrogate_amplifier=5.0,
    ),
    "quick": dict(
        period_seconds=21600,
        num_assets=6,
        observation=ObservationConfig(window=6, stride=2),
        hidden_sizes=(32, 32),
        timesteps=5,
        encoder_pop_size=4,
        decoder_pop_size=4,
        batch_size=32,
        learning_rate=1e-3,
        train_steps=60,
        surrogate_amplifier=5.0,
    ),
}


def make_config(experiment: int, profile: str = "standard", **overrides) -> ExperimentConfig:
    """Build an :class:`ExperimentConfig` for a Table 1 experiment.

    ``overrides`` replace any profile field (e.g. ``train_steps=500``).
    """
    if profile not in _PROFILES:
        raise KeyError(f"unknown profile {profile!r}; choose from {sorted(_PROFILES)}")
    params = dict(_PROFILES[profile])
    params.update(overrides)
    # Table 2's a1=9.0 is used verbatim by the paper profile; the
    # scaled profiles use a softer amplifier, which trains more stably
    # with Adam at their learning rates (see DESIGN.md §6).
    params.setdefault(
        "surrogate_amplifier", PAPER_HYPERPARAMETERS["surrogate_amplifier"]
    )
    return ExperimentConfig(
        experiment=experiment,
        profile=profile,
        window=get_window(experiment),
        lif=LIFParameters(
            v_threshold=PAPER_HYPERPARAMETERS["v_threshold"],
            current_decay=PAPER_HYPERPARAMETERS["current_decay"],
            voltage_decay=PAPER_HYPERPARAMETERS["voltage_decay"],
        ),
        surrogate_window=PAPER_HYPERPARAMETERS["surrogate_window"],
        **params,
    )


def available_profiles() -> Tuple[str, ...]:
    return tuple(sorted(_PROFILES))
