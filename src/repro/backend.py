"""Numeric backend tiers behind the kernel seam.

Every training and back-testing kernel in this repo is written against
plain numpy, which gives two natural execution tiers:

``reference``
    float64 throughout, per-seed GEMMs batched over contiguous weight
    banks (numpy's batched matmul issues the serial kernel's exact
    BLAS call per contiguous slice; see :mod:`repro.snn.banked`).
    This is the gold standard: stacked (multi-seed) execution through
    this tier is **bit-identical** to serial :class:`PolicyTrainer`
    runs, and it is the only tier any parity gate (``--check``, CI,
    tests) is allowed to use.  ``Backend("reference", "float64",
    batched_gemm=False)`` selects a per-seed Python GEMM loop instead —
    a structural fallback for cross-checking the batched path.

``fast``
    float32 tape buffers with BLAS-batched 3-D GEMMs over the seed
    axis, plus an optional threadpool fan-out over independent panels
    in multi-panel back-tests.  Results are close to, but not
    bit-identical with, the reference tier: LIF thresholding in
    float32 can flip individual spikes, so trajectories agree only
    within a documented tolerance (see API.md).  The fast tier can
    never silently substitute for the reference tier — callers select
    it explicitly and parity gates refuse it.

Backends are selected per call (trainer construction, ``run_many``),
never via global state, so a fast training run and a reference parity
check can coexist in one process.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar, Union

import numpy as np

__all__ = [
    "Backend",
    "REFERENCE",
    "FAST",
    "available_backends",
    "resolve_backend",
    "thread_map",
]


@dataclass(frozen=True)
class Backend:
    """One numeric execution tier.

    Parameters
    ----------
    name:
        Tier name, ``"reference"`` or ``"fast"``.
    precision:
        Numpy dtype name for tape buffers (``"float64"``/``"float32"``).
        Parameters and optimizer state always stay float64; only the
        per-step tape (drives, voltages, spikes, gradients in flight)
        takes this dtype.
    batched_gemm:
        When True (both built-in tiers), per-seed weight GEMMs run as
        one 3-D ``np.matmul`` over an ``(S, rows, features)`` stack of
        contiguous per-seed banks — in float64 this issues the serial
        kernel's exact BLAS call per slice and stays bit-identical
        (the parity suite asserts it).  False selects a Python loop of
        2-D GEMMs, a float64-only structural fallback.
    threads:
        Thread count for the optional panel fan-out in multi-panel
        back-tests.  ``0``/``1`` means sequential.
    """

    name: str
    precision: str
    batched_gemm: bool
    threads: int = 0

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.precision)

    @property
    def is_reference(self) -> bool:
        return self.name == "reference"

    def with_threads(self, threads: int) -> "Backend":
        """Same tier with a different panel-threadpool width."""
        return replace(self, threads=int(threads))


#: Bit-identical gold standard: float64, batched per-seed GEMM banks.
REFERENCE = Backend(name="reference", precision="float64", batched_gemm=True)

#: Accelerated tier: float32 tapes, BLAS-batched seed GEMMs.
FAST = Backend(name="fast", precision="float32", batched_gemm=True)

_BACKENDS = {REFERENCE.name: REFERENCE, FAST.name: FAST}


def available_backends() -> Sequence[str]:
    """Names accepted by :func:`resolve_backend`."""
    return tuple(_BACKENDS)


def resolve_backend(backend: Union[None, str, Backend] = None) -> Backend:
    """Normalise a backend selector to a :class:`Backend`.

    ``None`` resolves to the reference tier — acceleration is always an
    explicit opt-in, so nothing downstream can silently end up on the
    float32 path.
    """
    if backend is None:
        return REFERENCE
    if isinstance(backend, Backend):
        return backend
    if isinstance(backend, str):
        try:
            return _BACKENDS[backend]
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; available: "
                f"{', '.join(available_backends())}"
            ) from None
    raise TypeError(
        f"backend must be None, a name, or a Backend, got {type(backend).__name__}"
    )


_T = TypeVar("_T")
_R = TypeVar("_R")


def thread_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    threads: int = 0,
) -> List[_R]:
    """``[fn(x) for x in items]``, optionally through a threadpool.

    Order of results always matches input order.  With ``threads`` at
    0 or 1 this is a plain sequential map — callers pass
    ``backend.threads`` straight through and the reference tier stays
    on the exact sequential code path.
    """
    items = list(items)
    if threads <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(threads, len(items))) as pool:
        return list(pool.map(fn, items))
