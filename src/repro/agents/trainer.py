"""Deterministic policy-gradient training loop (§II.C / eq. (1)).

Both the SDP network and the Jiang EIIE baseline are trained the same
way: the reward ``R = (1/t_f) Σ ln(μ_t · y_t · w_{t−1})`` is
differentiable in the action, so minimising ``−R`` over minibatches of
consecutive periods is direct policy optimisation — no critic, no
return-to-go estimation.  Minibatch mechanics follow Jiang et al.:

* batch starts drawn with geometric bias toward the present
  (:class:`~repro.envs.sampling.GeometricBatchSampler`);
* the previous-step weights entering the state and the cost term come
  from the portfolio-vector memory
  (:class:`~repro.envs.pvm.PortfolioVectorMemory`), which is rewritten
  with the fresh policy outputs after every step.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol

import numpy as np

from ..autograd import Tensor
from ..autograd.optim import Optimizer
from ..data.market import MarketData
from ..envs.costs import (
    DEFAULT_COMMISSION,
    fused_training_loss,
    transaction_remainder_approx,
)
from ..envs.observations import ObservationConfig
from ..envs.pvm import PortfolioVectorMemory
from ..envs.sampling import DEFAULT_GEOMETRIC_BIAS, GeometricBatchSampler
from ..obs import get_obs
from ..utils.rng import make_rng


class TrainablePolicy(Protocol):
    """What the trainer needs from an agent."""

    def policy_forward(
        self, data: MarketData, indices: np.ndarray, w_prev: np.ndarray
    ) -> Tensor:
        """Batched differentiable action computation, shape (B, N)."""
        ...

    def parameters(self):  # noqa: D102 — autograd parameter list
        ...


class FusedTrainablePolicy(TrainablePolicy, Protocol):
    """A policy that additionally exposes the fused STBP training path.

    Implementations set ``supports_fused_training = True`` and provide
    the pair below; the trainer then skips the closure-graph ``Tensor``
    machinery entirely.  The contract is strict: the fused forward must
    be *bit-identical* to ``policy_forward(...).data`` and the fused
    backward must accumulate parameter gradients bit-identical to
    ``loss.backward()`` on the graph path, so both trainer paths yield
    the same weight trajectory (``autograd.gradcheck.
    check_fused_training_parity`` gates this).
    """

    supports_fused_training: bool

    def policy_forward_fused(
        self,
        data: MarketData,
        indices: np.ndarray,
        w_prev: np.ndarray,
        asset_perm: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Recorded batched forward; plain ``(B, N)`` action array.

        With ``asset_perm`` given, ``data`` and ``w_prev`` are in the
        panel's native asset order and the policy must return the
        actions it would produce on ``data.permute_assets(asset_perm)``
        with correspondingly permuted previous weights — i.e. actions in
        the *permuted* order, cash first.  This lets the trainer's
        permute-assets augmentation permute a ``(B, ...)`` state batch
        instead of materialising a whole permuted panel every step.
        """
        ...

    def policy_backward_fused(self, grad_actions: np.ndarray) -> None:
        """Accumulate parameter grads for the last fused forward."""
        ...


@dataclass(frozen=True)
class TrainConfig:
    """Training-loop hyper-parameters (defaults follow Table 2).

    ``learning_rate`` defaults to the paper's 1e-5 ("10e-5" in Table 2
    read as 10^-5); the experiment harness overrides it when it pairs
    the loop with Adam, which tolerates larger steps.

    ``permute_assets`` enables asset-permutation augmentation: each
    minibatch sees the assets in a random order (states, previous
    weights, price relatives, and the PVM write-back all permuted
    consistently).  A policy trained this way must be permutation-
    equivariant — it scores assets by their *behaviour* (momentum,
    volatility) instead of memorising which column was the past
    winner.  The EIIE baseline is equivariant by construction (shared
    per-asset weights), so the augmentation levels the field for the
    SDP's fully-connected network.
    """

    steps: int = 2000
    batch_size: int = 128
    commission: float = DEFAULT_COMMISSION
    geometric_bias: float = DEFAULT_GEOMETRIC_BIAS
    log_every: int = 100
    permute_assets: bool = False

    def __post_init__(self):
        if self.steps <= 0 or self.batch_size <= 0:
            raise ValueError("steps and batch_size must be positive")


@dataclass
class TrainHistory:
    """Loss/reward trace of one training run."""

    steps: List[int] = field(default_factory=list)
    loss: List[float] = field(default_factory=list)
    reward: List[float] = field(default_factory=list)

    def record(self, step: int, loss: float, reward: float) -> None:
        self.steps.append(step)
        self.loss.append(loss)
        self.reward.append(reward)


class PolicyTrainer:
    """Minibatch trainer shared by the SDP and EIIE agents.

    Policies that expose the fused STBP fast path
    (:class:`FusedTrainablePolicy`) are routed through it by default —
    analytic forward/backward kernels on a static tape instead of the
    closure-graph ``Tensor`` machinery — which is several times faster
    per step and produces bit-identical weight trajectories.  Pass
    ``use_fused=False`` to force the reference graph path (custom
    :class:`TrainablePolicy` implementations without the fused pair
    always use it).
    """

    def __init__(
        self,
        policy: TrainablePolicy,
        data: MarketData,
        optimizer: Optimizer,
        observation: Optional[ObservationConfig] = None,
        config: Optional[TrainConfig] = None,
        seed: int = 0,
        use_fused: Optional[bool] = None,
        obs=None,
    ):
        self.policy = policy
        self.data = data
        self.optimizer = optimizer
        supports_fused = bool(getattr(policy, "supports_fused_training", False))
        if use_fused is None:
            use_fused = supports_fused
        elif use_fused and not supports_fused:
            raise ValueError(
                "use_fused=True requires the policy to implement the fused "
                "training path (supports_fused_training / "
                "policy_forward_fused / policy_backward_fused)"
            )
        self.use_fused = use_fused
        self.observation = observation if observation is not None else ObservationConfig()
        self.config = config if config is not None else TrainConfig()

        n = data.n_periods
        # Decision index t needs: a full window ending at t, a previous
        # period (for the PVM drift y_t), and a next period (for the
        # reward's y_{t+1}).
        self.first_index = max(self.observation.first_decision_index(), 1)
        self.last_index = n - 2
        if self.last_index - self.first_index + 1 < self.config.batch_size:
            raise ValueError(
                f"training panel too short: decisions "
                f"[{self.first_index}, {self.last_index}] vs batch "
                f"{self.config.batch_size}"
            )
        self.pvm = PortfolioVectorMemory(n, data.n_assets)
        self.sampler = GeometricBatchSampler.for_seed(
            self.first_index,
            self.last_index,
            self.config.batch_size,
            seed,
            bias=self.config.geometric_bias,
        )
        # Precompute price relatives (with cash) for the whole panel.
        rel = data.close[1:] / data.close[:-1]
        self._relatives = np.concatenate([np.ones((n - 1, 1)), rel], axis=1)
        self._perm_rng = make_rng(seed + 1)
        #: Total train steps this trainer has executed (resume cursor).
        self.completed_steps = 0
        # Observability: resolved once; the process-global null handle
        # costs one attribute check per step and nothing else.
        self._obs = obs if obs is not None else get_obs()
        if self._obs.enabled:
            self._m_step_seconds = self._obs.histogram(
                "repro_train_step_seconds", help="trainer step wall-clock"
            )
            self._m_steps = self._obs.counter(
                "repro_train_steps_total", help="trainer steps executed"
            )

    # ------------------------------------------------------------------
    def _drift(self, w: np.ndarray, y: np.ndarray) -> np.ndarray:
        growth = w * y
        return growth / growth.sum(axis=1, keepdims=True)

    def _prepare_batch(self):
        """Shared minibatch prologue: sample, permute, read/drift the PVM.

        Consumes the sampler and permutation RNG streams identically on
        both trainer paths, so graph and fused runs see the same batches.
        Returns weights/relatives in the *permuted* action order plus
        the native-order PVM rows (the fused path permutes state batches
        instead of panels).
        """
        indices = self.sampler.sample()
        m = self.data.n_assets
        if self.config.permute_assets:
            perm = self._perm_rng.permutation(m)
        else:
            perm = np.arange(m)
        # Index 0 is cash and never permutes.
        action_perm = np.concatenate([[0], 1 + perm])

        w_prev_native = self.pvm.read(indices - 1)
        w_prev = w_prev_native[:, action_perm]
        # Drift the cached previous weights by the already-realised move
        # y_t = close_t / close_{t-1} (row t-1 of the relatives array).
        y_t = self._relatives[np.ix_(indices - 1, action_perm)]
        w_drifted = self._drift(w_prev, y_t)
        y_next = self._relatives[np.ix_(indices, action_perm)]  # y_{t+1}
        return indices, perm, action_perm, w_prev_native, w_prev, w_drifted, y_next

    def _permuted_view(self, perm: np.ndarray) -> MarketData:
        """Panel view for the graph path's augmentation step.

        ``permute_assets`` skips the full-panel re-validation and reuses
        the parent's cached log panels (bit-identical features).
        """
        return self.data.permute_assets(perm)

    def train_step(self) -> Dict[str, float]:
        """One minibatch update; returns loss/reward diagnostics.

        With an enabled obs handle, each step feeds the
        ``repro_train_step_seconds`` histogram and emits a debug-level
        ``train_step`` event carrying loss / reward / gradient norm /
        duration.  The instrumentation only reads clocks and gradients
        already produced by the update, so the weight trajectory is
        bit-identical with obs on or off.
        """
        obs_on = self._obs.enabled
        if obs_on:
            t0 = time.perf_counter()
        stats = (
            self._train_step_fused() if self.use_fused else self._train_step_graph()
        )
        self.completed_steps += 1
        if obs_on:
            elapsed = time.perf_counter() - t0
            self._m_step_seconds.observe(elapsed)
            self._m_steps.inc()
            self._obs.event(
                "train_step",
                level="debug",
                step=self.completed_steps,
                loss=stats["loss"],
                reward=stats["reward"],
                grad_norm=self.grad_norm(),
                seconds=round(elapsed, 9),
            )
        return stats

    def grad_norm(self) -> float:
        """L2 norm of the parameter gradients from the last update."""
        total = 0.0
        for param in self.policy.parameters():
            grad = getattr(param, "grad", None)
            if grad is not None:
                flat = np.asarray(grad).ravel()
                total += float(flat @ flat)
        return float(np.sqrt(total))

    def _train_step_graph(self) -> Dict[str, float]:
        """Reference path: closure-graph forward + ``backward()``."""
        indices, perm, action_perm, _, w_prev, w_drifted, y_next = (
            self._prepare_batch()
        )
        view = (
            self._permuted_view(perm) if self.config.permute_assets else self.data
        )
        actions = self.policy.policy_forward(view, indices, w_prev)
        mu = transaction_remainder_approx(
            Tensor(w_drifted), actions, self.config.commission
        )
        growth = (actions * Tensor(y_next)).sum(axis=1)
        log_return = (mu * growth).log()
        loss = -log_return.mean()

        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()

        # Write the PVM back in the original asset order.
        unpermuted = np.empty_like(actions.data)
        unpermuted[:, action_perm] = actions.data
        self.pvm.write(indices, unpermuted)
        return {
            "loss": float(loss.data),
            "reward": float(log_return.data.mean()),
        }

    def _train_step_fused(self) -> Dict[str, float]:
        """Fused fast path: analytic kernels on the policy's static tape.

        Bit-identical to :meth:`_train_step_graph` — same RNG streams,
        same actions, same gradients, same PVM write-back — without
        building (or walking) a closure graph.  The permute-assets
        augmentation is applied to the prepared ``(B, ...)`` state batch
        (``asset_perm``) instead of materialising a permuted panel, and
        the simplex re-validation is skipped on the PVM's hot write-back
        (the actions come straight off the policy's softmax).
        """
        indices, perm, action_perm, w_prev_native, _, w_drifted, y_next = (
            self._prepare_batch()
        )
        asset_perm = perm if self.config.permute_assets else None
        actions = self.policy.policy_forward_fused(
            self.data, indices, w_prev_native, asset_perm=asset_perm
        )
        loss, reward, grad_actions = fused_training_loss(
            actions, w_drifted, y_next, self.config.commission
        )
        self.optimizer.zero_grad()
        self.policy.policy_backward_fused(grad_actions)
        self.optimizer.step()

        unpermuted = np.empty_like(actions)
        unpermuted[:, action_perm] = actions
        self.pvm.write(indices, unpermuted, validate=False)
        return {"loss": loss, "reward": reward}

    def train(
        self,
        steps: Optional[int] = None,
        callback: Optional[Callable[[int, Dict[str, float]], None]] = None,
    ) -> TrainHistory:
        """Run ``steps`` more updates; returns the loss/reward history.

        Step numbering continues from :attr:`completed_steps`, so a
        resumed trainer (fresh instance + :meth:`load_state_dict`, or
        the same instance trained in instalments) logs a history that
        lines up with the uninterrupted run.
        """
        steps = steps if steps is not None else self.config.steps
        history = TrainHistory()
        first = self.completed_steps + 1
        last = self.completed_steps + steps
        for step in range(first, last + 1):
            stats = self.train_step()
            if step % self.config.log_every == 0 or step == last:
                history.record(step, stats["loss"], stats["reward"])
            if callback is not None:
                callback(step, stats)
        return history

    # -- resumable training state --------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Everything mutable the loop owns: step cursor, PVM, both RNG
        streams, and the optimiser moments.

        The policy's *parameters* are deliberately not included — they
        belong to the network (``network.state_dict()``), so a full
        training checkpoint is ``(network state, trainer state)``.
        Restoring both into a freshly-constructed trainer continues the
        exact update sequence: same minibatches, same permutations, same
        gradients.
        """
        return {
            "completed_steps": self.completed_steps,
            "pvm": self.pvm.snapshot(),
            "sampler_rng": self.sampler._rng.bit_generator.state,
            "perm_rng": self._perm_rng.bit_generator.state,
            "optimizer": self.optimizer.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output into this trainer."""
        self.completed_steps = int(state["completed_steps"])
        self.pvm.restore(state["pvm"])
        self.sampler._rng.bit_generator.state = state["sampler_rng"]
        self._perm_rng.bit_generator.state = state["perm_rng"]
        self.optimizer.load_state_dict(state["optimizer"])
