"""Cross-seed vectorized training: S seeds on one stacked fused tape.

A seed sweep trains the *same* configuration S times with different
RNG streams — same panel, same network shapes, same tape layout.
:class:`MultiSeedTrainer` exploits that: it holds S independent policy
/ optimizer / PVM banks but steps them all per kernel call on one
static ``(S·B, …)`` tape (:mod:`repro.snn.banked`).  Per train step the
per-seed work is reduced to the two RNG draws (minibatch indices and
the asset permutation) — everything else runs stacked:

* the trainer prologue (PVM reads, price-relative gathers, drift) as
  ``(S, B, ·)`` gathers against a seed-banked PVM;
* state preparation as one row-independent builder call over the
  concatenated index batch;
* the SNN forward/backward on the stacked tape with BLAS-batched
  per-seed GEMM banks;
* the optimizer as one elementwise update per parameter *bank*
  (:class:`ParamBank`) instead of S × params Python-level updates.

The RNG-stream contract is the serial trainer's, per seed:

* minibatch draws come from
  :meth:`~repro.envs.sampling.GeometricBatchSampler.for_seed`
  (``make_rng(seed)``),
* the permute-assets stream is ``make_rng(seed + 1)``,
* network weights are initialised from ``make_rng(seed)`` at agent
  construction (the caller builds agents exactly as for serial runs).

On the ``reference`` backend every seed's weight trajectory and PVM
are **bit-identical** to a serial :class:`~repro.agents.trainer.
PolicyTrainer` run with that seed — every stacked op either is the
serial op on a contiguous per-seed slice (same BLAS call, same
reduction order) or an elementwise op over identical values; the
parity suite and the bench ``--check`` gate enforce the end-to-end
guarantee.  The ``fast`` backend (float32 tapes + float32-cast weight
banks) is a documented-tolerance approximation and is rejected by
every parity gate; see :mod:`repro.backend`.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..autograd.optim import SGD, Adam, Optimizer, RMSProp
from ..backend import Backend, resolve_backend
from ..data.market import MarketData
from ..envs.costs import fused_training_loss_banked
from ..envs.observations import (
    ObservationConfig,
    sdp_asset_features_batch,
    sdp_state_batch,
)
from ..envs.pvm import PortfolioVectorMemory
from ..envs.sampling import GeometricBatchSampler
from ..obs import get_obs
from ..snn.banked import MonolithicSDPBank, ParamBank, SharedSDPBank
from ..utils.rng import make_rng
from .jiang import JiangDRLAgent
from .sdp import SDPAgent
from .trainer import TrainConfig, TrainHistory

__all__ = ["MultiSeedTrainer"]


# ----------------------------------------------------------------------
# banked optimizer execution
# ----------------------------------------------------------------------

class _BankedOptimizer:
    """Run S same-hyperparameter optimizers as bank-wide updates.

    The per-seed :class:`~repro.autograd.optim.Optimizer` updates are
    pure elementwise chains with scalar hyperparameters, so applying
    the *identical op sequence* to the ``(S,) + shape`` parameter /
    gradient / moment banks updates every seed's slice exactly as its
    own optimizer would — bit-identical, S× fewer Python dispatches.

    The per-seed optimizers stay truthful: their state-buffer entries
    are rebound to views into the moment banks and their step counters
    are kept in sync, so ``state_dict()`` on any of them reflects the
    live state.
    """

    #: subclasses fill in the optimizer class they mirror and the
    #: hyperparameters that must match across seeds
    _optimizer_cls: type = Optimizer
    _hyper_names: tuple = ()

    def __init__(self, optimizers: Sequence[Optimizer], banks: Sequence[ParamBank]):
        self.optimizers = list(optimizers)
        self.banks = list(banks)
        first = self.optimizers[0]
        self._step_count = first._step_count
        # Per-bank, per-seed parameter indices into each optimizer.
        idx_maps = [
            {id(p): i for i, p in enumerate(opt.params)} for opt in self.optimizers
        ]
        self._indices: List[List[int]] = []
        covered = [set() for _ in self.optimizers]
        for pb in self.banks:
            idxs = []
            for s, p in enumerate(pb.params):
                i = idx_maps[s].get(id(p))
                if i is None:
                    raise LookupError("parameter not owned by its optimizer")
                idxs.append(i)
                covered[s].add(i)
            self._indices.append(idxs)
        for s, opt in enumerate(self.optimizers):
            if len(covered[s]) != len(opt.params):
                raise LookupError("optimizer holds parameters outside the banks")
        # Moment banks: stack the per-seed buffers (zeros on a fresh
        # optimizer; live values on a resumed one) and rebind the
        # per-seed entries to the bank slices.
        self._state: Dict[str, List[np.ndarray]] = {}
        for name in self._optimizer_cls._state_buffer_names:
            state_banks = []
            for j, pb in enumerate(self.banks):
                bank = np.stack(
                    [
                        getattr(opt, name)[self._indices[j][s]]
                        for s, opt in enumerate(self.optimizers)
                    ]
                )
                for s, opt in enumerate(self.optimizers):
                    getattr(opt, name)[self._indices[j][s]] = bank[s]
                state_banks.append(bank)
            self._state[name] = state_banks
        self._scratch = [np.empty_like(pb.bank) for pb in self.banks]
        self._scratch2 = [np.empty_like(pb.bank) for pb in self.banks]

    @classmethod
    def build(
        cls, optimizers: Sequence[Optimizer], banks: Sequence[ParamBank]
    ) -> Optional["_BankedOptimizer"]:
        """A banked executor for ``optimizers``, or ``None`` when they
        cannot be banked (mixed classes, differing hyperparameters,
        parameters outside the banks) — the caller then falls back to
        the per-seed ``zero_grad``/``step`` loop."""
        optimizers = list(optimizers)
        first = optimizers[0]
        for sub in (_BankedSGD, _BankedAdam, _BankedRMSProp):
            if type(first) is sub._optimizer_cls:
                impl = sub
                break
        else:
            return None
        for opt in optimizers:
            if type(opt) is not impl._optimizer_cls:
                return None
            if opt._step_count != first._step_count:
                return None
            for name in ("lr",) + impl._hyper_names:
                if getattr(opt, name) != getattr(first, name):
                    return None
        try:
            return impl(optimizers, banks)
        except LookupError:
            return None

    def step(self) -> None:
        self._step_count += 1
        for opt in self.optimizers:
            opt._step_count = self._step_count
        for j, pb in enumerate(self.banks):
            self._update(j, pb)

    def _update(self, index: int, pb: ParamBank) -> None:
        raise NotImplementedError


class _BankedSGD(_BankedOptimizer):
    """Bank-wide :class:`~repro.autograd.optim.SGD` (same op chain)."""

    _optimizer_cls = SGD
    _hyper_names = ("momentum", "weight_decay")

    def _update(self, index: int, pb: ParamBank) -> None:
        opt = self.optimizers[0]
        grad = pb.grad
        buf = self._scratch[index]
        if opt.weight_decay:
            np.multiply(pb.bank, opt.weight_decay, out=buf)
            np.add(grad, buf, out=buf)
            grad = buf
        if opt.momentum:
            velocity = self._state["_velocity"][index]
            np.multiply(velocity, opt.momentum, out=velocity)
            np.add(velocity, grad, out=velocity)
            grad = velocity
        np.multiply(grad, opt.lr, out=buf)
        np.subtract(pb.bank, buf, out=pb.bank)


class _BankedAdam(_BankedOptimizer):
    """Bank-wide :class:`~repro.autograd.optim.Adam` (same op chain)."""

    _optimizer_cls = Adam
    _hyper_names = ("beta1", "beta2", "eps", "weight_decay")

    def _update(self, index: int, pb: ParamBank) -> None:
        opt = self.optimizers[0]
        grad = pb.grad
        buf, buf2 = self._scratch[index], self._scratch2[index]
        if opt.weight_decay:
            np.multiply(pb.bank, opt.weight_decay, out=buf2)
            np.add(grad, buf2, out=buf2)
            grad = buf2
            buf2 = np.empty_like(buf)  # decayed grad occupies scratch2
        m = self._state["_m"][index]
        v = self._state["_v"][index]
        np.multiply(m, opt.beta1, out=m)
        np.multiply(grad, 1.0 - opt.beta1, out=buf)
        np.add(m, buf, out=m)
        np.multiply(v, opt.beta2, out=v)
        np.multiply(grad, 1.0 - opt.beta2, out=buf)
        np.multiply(buf, grad, out=buf)
        np.add(v, buf, out=v)
        np.divide(m, 1.0 - opt.beta1 ** self._step_count, out=buf)
        np.divide(v, 1.0 - opt.beta2 ** self._step_count, out=buf2)
        np.sqrt(buf2, out=buf2)
        np.add(buf2, opt.eps, out=buf2)
        np.multiply(buf, opt.lr, out=buf)
        np.divide(buf, buf2, out=buf)
        np.subtract(pb.bank, buf, out=pb.bank)


class _BankedRMSProp(_BankedOptimizer):
    """Bank-wide :class:`~repro.autograd.optim.RMSProp` (same op chain)."""

    _optimizer_cls = RMSProp
    _hyper_names = ("alpha", "eps", "weight_decay")

    def _update(self, index: int, pb: ParamBank) -> None:
        opt = self.optimizers[0]
        grad = pb.grad
        buf, buf2 = self._scratch[index], self._scratch2[index]
        if opt.weight_decay:
            np.multiply(pb.bank, opt.weight_decay, out=buf2)
            np.add(grad, buf2, out=buf2)
            grad = buf2
            buf2 = np.empty_like(buf)
        avg = self._state["_square_avg"][index]
        np.multiply(avg, opt.alpha, out=avg)
        np.multiply(grad, 1.0 - opt.alpha, out=buf)
        np.multiply(buf, grad, out=buf)
        np.add(avg, buf, out=avg)
        np.sqrt(avg, out=buf)
        np.add(buf, opt.eps, out=buf)
        np.multiply(grad, opt.lr, out=buf2)
        np.divide(buf2, buf, out=buf2)
        np.subtract(pb.bank, buf2, out=pb.bank)


# ----------------------------------------------------------------------
# EIIE fallback executor
# ----------------------------------------------------------------------

class _EIIELoopBank:
    """Per-seed loop executor for the EIIE conv policy.

    The EIIE fused kernels build their tape per call and are dominated
    by im2col GEMMs with per-seed weights, so there is no shared
    elementwise bulk to stack — each seed runs the *literal* serial
    kernel (trivially bit-identical) and only the loss and the trainer
    prologue are shared.  The fast backend is rejected upstream.
    """

    def __init__(self, networks: Sequence):
        networks = list(networks)
        self.networks = networks
        self.n_seeds = len(networks)
        self._actions: Optional[np.ndarray] = None

    def forward(
        self, prices: List[np.ndarray], w_assets: List[np.ndarray]
    ) -> np.ndarray:
        batch = prices[0].shape[0]
        n_actions = w_assets[0].shape[1] + 1
        if self._actions is None or self._actions.shape != (
            self.n_seeds * batch,
            n_actions,
        ):
            self._actions = np.empty((self.n_seeds * batch, n_actions))
        for s, net in enumerate(self.networks):
            self._actions[s * batch : (s + 1) * batch] = net.policy_forward_fused(
                prices[s], w_assets[s]
            )
        return self._actions

    def backward(self, grad_action: np.ndarray) -> None:
        batch = grad_action.shape[0] // self.n_seeds
        for s, net in enumerate(self.networks):
            net.policy_backward_fused(grad_action[s * batch : (s + 1) * batch])


# ----------------------------------------------------------------------
# the trainer
# ----------------------------------------------------------------------

class MultiSeedTrainer:
    """Train S same-config policies simultaneously on one stacked tape.

    Parameters
    ----------
    policies:
        S agents built exactly as for serial training (each with its own
        ``seed`` so weight init matches the serial run).  All must share
        the configuration; only the seed may differ.  Supported:
        :class:`~repro.agents.sdp.SDPAgent` (both architectures) and
        :class:`~repro.agents.jiang.JiangDRLAgent`.
    data:
        Training panel (shared — seed sweeps train on one panel).
    optimizers:
        One optimizer per policy, over that policy's parameters.  When
        all are the same class with the same hyperparameters (the sweep
        case), updates run bank-wide; otherwise the trainer falls back
        to a per-seed step loop (still bit-exact, just slower).
    observation / config:
        As for :class:`~repro.agents.trainer.PolicyTrainer`.
    seeds:
        Per-policy trainer seeds (sampler stream ``make_rng(seed)``,
        permutation stream ``make_rng(seed + 1)``) — the same numbers a
        serial ``PolicyTrainer(..., seed=s)`` would get.  Defaults to
        ``range(S)``.
    backend:
        ``None``/``"reference"`` for the bit-identical float64 path,
        ``"fast"`` for float32 tapes + float32 GEMM banks (SDP only),
        or a :class:`~repro.backend.Backend`.
    """

    def __init__(
        self,
        policies: Sequence,
        data: MarketData,
        optimizers: Sequence,
        observation: Optional[ObservationConfig] = None,
        config: Optional[TrainConfig] = None,
        seeds: Optional[Sequence[int]] = None,
        backend: Union[None, str, Backend] = None,
    ):
        policies = list(policies)
        optimizers = list(optimizers)
        if not policies:
            raise ValueError("MultiSeedTrainer needs at least one policy")
        if len(optimizers) != len(policies):
            raise ValueError(
                f"{len(policies)} policies but {len(optimizers)} optimizers"
            )
        for policy in policies:
            if not getattr(policy, "supports_fused_training", False):
                raise ValueError(
                    "multi-seed training requires the fused training path "
                    f"({type(policy).__name__} does not support it)"
                )
        self.policies = policies
        self.optimizers = optimizers
        self.data = data
        self.backend = resolve_backend(backend)
        self.observation = (
            observation if observation is not None else ObservationConfig()
        )
        self.config = config if config is not None else TrainConfig()
        self.n_seeds = len(policies)
        self.seeds = (
            list(range(self.n_seeds)) if seeds is None else [int(s) for s in seeds]
        )
        if len(self.seeds) != self.n_seeds:
            raise ValueError(
                f"{self.n_seeds} policies but {len(self.seeds)} seeds"
            )
        for policy in policies[1:]:
            if policy.observation != policies[0].observation:
                raise ValueError(
                    "all policies must share an observation config"
                )

        # -- executor over the policy kind -----------------------------
        first = policies[0]
        if isinstance(first, SDPAgent):
            for policy in policies:
                if not isinstance(policy, SDPAgent) or (
                    policy.architecture != first.architecture
                ):
                    raise ValueError(
                        "all policies must share architecture; got mixed kinds"
                    )
            networks = [policy.network for policy in policies]
            bank_cls = (
                SharedSDPBank
                if first.architecture == "shared"
                else MonolithicSDPBank
            )
            self._bank = bank_cls(
                networks,
                dtype=self.backend.dtype,
                batched=self.backend.batched_gemm,
            )
            self._kind = first.architecture
        elif isinstance(first, JiangDRLAgent):
            for policy in policies:
                if not isinstance(policy, JiangDRLAgent):
                    raise ValueError(
                        "all policies must share architecture; got mixed kinds"
                    )
            if not self.backend.is_reference:
                raise ValueError(
                    "the fast backend does not support the EIIE conv path; "
                    "train Jiang policies on the reference backend"
                )
            self._bank = _EIIELoopBank([policy.network for policy in policies])
            self._kind = "jiang"
        else:
            raise ValueError(
                f"unsupported policy type {type(first).__name__}; multi-seed "
                "training supports SDPAgent and JiangDRLAgent"
            )

        # Bank-wide optimizer execution when the optimizers allow it.
        param_banks = getattr(self._bank, "param_banks", None)
        self._opt_exec = (
            _BankedOptimizer.build(optimizers, param_banks())
            if param_banks is not None
            else None
        )

        # -- per-seed trainer state (serial PolicyTrainer's, per seed) --
        n = data.n_periods
        S = self.n_seeds
        m = data.n_assets
        self.first_index = max(self.observation.first_decision_index(), 1)
        self.last_index = n - 2
        if self.last_index - self.first_index + 1 < self.config.batch_size:
            raise ValueError(
                f"not enough decision periods for training: "
                f"[{self.first_index}, {self.last_index}] vs batch "
                f"{self.config.batch_size}"
            )
        # Seed-banked PVM: one (S, n, A+1) array; each per-seed
        # PortfolioVectorMemory's storage is rebound to its slice so the
        # public per-seed API (snapshot/restore/read) stays live while
        # the trainer reads and writes all seeds in one gather/scatter.
        self._pvm_bank = np.full(
            (S, n, m + 1), 1.0 / (m + 1), dtype=np.float64
        )
        self.pvms = []
        for s in range(S):
            pvm = PortfolioVectorMemory(n, m)
            pvm._memory = self._pvm_bank[s]
            self.pvms.append(pvm)
        self.samplers = [
            GeometricBatchSampler.for_seed(
                self.first_index,
                self.last_index,
                self.config.batch_size,
                seed,
                bias=self.config.geometric_bias,
            )
            for seed in self.seeds
        ]
        self._perm_rngs = [make_rng(seed + 1) for seed in self.seeds]
        rel = data.close[1:] / data.close[:-1]
        self._relatives = np.concatenate([np.ones((n - 1, 1)), rel], axis=1)
        self.completed_steps = 0

        # Preallocated stacked prologue buffers.
        B = self.config.batch_size
        self._idx = np.empty((S, B), dtype=np.int64)
        self._perms = np.empty((S, m), dtype=np.int64)
        self._action_perms = np.empty((S, m + 1), dtype=np.int64)
        self._action_perms[:, 0] = 0
        if not self.config.permute_assets:
            self._perms[:] = np.arange(m)
            self._action_perms[:, 1:] = 1 + self._perms
        self._seed_col = np.arange(S)[:, None]
        self._unperm = np.empty((S, B, m + 1))

        # Observability: resolved once; one attribute check per step
        # when disabled (the process-global default null handle).
        self._obs = get_obs()
        if self._obs.enabled:
            self._m_step_seconds = self._obs.histogram(
                "repro_train_step_seconds", help="trainer step wall-clock"
            )
            self._m_steps = self._obs.counter(
                "repro_train_steps_total", help="trainer steps executed"
            )

    # ------------------------------------------------------------------
    def _prepare_stacked(self):
        """The serial :meth:`PolicyTrainer._prepare_batch` for all seeds.

        The per-seed RNG draws stay serial (each seed consumes its own
        streams exactly as the serial trainer would); the PVM reads,
        permutation gathers, and drift arithmetic run stacked — gathers
        copy the same values and the drift is row-wise, so every seed's
        slice is bit-identical to its serial counterpart.
        """
        idx = self._idx
        perms = self._perms
        for s in range(self.n_seeds):
            idx[s] = self.samplers[s].sample()
        if self.config.permute_assets:
            m = self.data.n_assets
            for s in range(self.n_seeds):
                perms[s] = self._perm_rngs[s].permutation(m)
            self._action_perms[:, 1:] = 1 + perms
        action_perms = self._action_perms
        prev_idx = idx - 1
        w_prev_native = self._pvm_bank[self._seed_col, prev_idx]  # (S, B, A+1)
        w_prev = np.take_along_axis(
            w_prev_native, action_perms[:, None, :], axis=2
        )
        y_t = self._relatives[prev_idx[:, :, None], action_perms[:, None, :]]
        growth = w_prev * y_t
        w_drifted = growth / growth.sum(axis=2, keepdims=True)
        y_next = self._relatives[idx[:, :, None], action_perms[:, None, :]]
        return w_prev_native, w_drifted, y_next

    def _monolithic_perm_columns(self) -> np.ndarray:
        """Vectorised :meth:`SDPAgent._state_perm_columns` over seeds —
        the same affine index map, built for all S permutations at once."""
        m = self.data.n_assets
        n_h = len(self.observation.momentum_horizons)
        perms = self._perms
        S = self.n_seeds
        momentum = (
            np.arange(n_h)[None, :, None] * m + perms[:, None, :]
        ).reshape(S, -1)
        candle = n_h * m + (
            perms[:, :, None] * 3 + np.arange(3)[None, None, :]
        ).reshape(S, -1)
        weights = (
            n_h * m
            + 3 * m
            + np.concatenate(
                [np.zeros((S, 1), dtype=np.int64), 1 + perms], axis=1
            )
        )
        return np.concatenate([momentum, candle, weights], axis=1)

    def _stacked_forward(self, w_prev_native: np.ndarray) -> np.ndarray:
        """State prep over the concatenated index batch, then one
        stacked bank forward.

        The state builders are row-independent (panel gathers plus
        elementwise feature math), so one call over the ``(S·B,)``
        indices produces each seed's rows bit-identically to its serial
        per-seed call; the permutation gathers then copy those values
        per seed.
        """
        S, B = self.n_seeds, self.config.batch_size
        permute = self.config.permute_assets
        idx_flat = self._idx.reshape(S * B)
        w_prev_flat = w_prev_native.reshape(S * B, -1)
        if self._kind == "jiang":
            prices_list, w_assets_list = [], []
            for s, policy in enumerate(self.policies):
                states = policy.prepare_states(
                    self.data, self._idx[s], w_prev_native[s]
                )
                prices = states["prices"]
                w_assets = states["w_prev"][:, 1:]
                if permute:
                    perm = self._perms[s]
                    prices = prices[:, :, perm, :]
                    w_assets = w_assets[:, perm]
                prices_list.append(prices)
                w_assets_list.append(w_assets)
            return self._bank.forward(prices_list, w_assets_list)
        if self._kind == "shared":
            feats = sdp_asset_features_batch(
                self.data, idx_flat, w_prev_flat, self.policies[0].observation
            )
            if permute:
                feats4 = feats.reshape(S, B, feats.shape[1], feats.shape[2])
                feats = np.take_along_axis(
                    feats4, self._perms[:, None, :, None], axis=2
                ).reshape(feats.shape)
            return self._bank.forward(feats)
        states = sdp_state_batch(
            self.data, idx_flat, w_prev_flat, self.policies[0].observation
        )
        if permute:
            cols = self._monolithic_perm_columns()
            states = np.take_along_axis(
                states.reshape(S, B, states.shape[1]), cols[:, None, :], axis=2
            ).reshape(states.shape)
        return self._bank.forward(states)

    def train_step(self) -> Dict[str, np.ndarray]:
        """One stacked minibatch update across all seeds.

        Per seed this performs exactly the serial fused step — prologue,
        forward, loss, zero_grad/backward/step, PVM write-back — with
        every stage executed on the stacked buffers.  Gradients are
        per-seed independent, so the bank-wide update is arithmetically
        the serial per-seed order.

        With an enabled obs handle each step feeds the shared
        ``repro_train_step_seconds`` histogram and emits one debug-level
        ``train_step_multiseed`` event (per-seed losses, action-gradient
        norms, duration); none of it touches the update arithmetic.
        """
        obs_on = self._obs.enabled
        if obs_on:
            t0 = time.perf_counter()
        w_prev_native, w_drifted, y_next = self._prepare_stacked()
        actions = self._stacked_forward(w_prev_native)
        S, B = self.n_seeds, self.config.batch_size
        losses, rewards, grad_actions = fused_training_loss_banked(
            actions,
            w_drifted.reshape(S * B, -1),
            y_next.reshape(S * B, -1),
            S,
            self.config.commission,
        )
        if self._opt_exec is not None:
            # Grad banks are freshly written by backward (equal to
            # zero_grad + accumulate); the banked step applies the
            # serial update chain bank-wide.
            self._bank.backward(grad_actions)
            self._opt_exec.step()
        else:
            for optimizer in self.optimizers:
                optimizer.zero_grad()
            self._bank.backward(grad_actions)
            for optimizer in self.optimizers:
                optimizer.step()
        # Un-permute the actions back to native asset order and write
        # all seeds' rows into the PVM bank in one scatter (per-seed
        # row sets are disjoint by construction).
        a3 = actions.reshape(S, B, -1)
        if self.config.permute_assets:
            np.put_along_axis(
                self._unperm, self._action_perms[:, None, :], a3, axis=2
            )
            rows = self._unperm
        else:
            rows = a3
        idx = self._idx
        if int(idx.min()) < 0 or int(idx.max()) >= self.data.n_periods:
            raise IndexError("PVM write out of range")
        self._pvm_bank[self._seed_col, idx] = rows
        self.completed_steps += 1
        if obs_on:
            elapsed = time.perf_counter() - t0
            self._m_step_seconds.observe(elapsed)
            self._m_steps.inc(self.n_seeds)
            g3 = grad_actions.reshape(S, B, -1)
            self._obs.event(
                "train_step_multiseed",
                level="debug",
                step=self.completed_steps,
                n_seeds=self.n_seeds,
                loss=[float(x) for x in losses],
                action_grad_norm=[
                    float(x) for x in np.sqrt((g3 * g3).sum(axis=(1, 2)))
                ],
                seconds=round(elapsed, 9),
            )
        return {"loss": losses, "reward": rewards}

    def train(
        self,
        steps: Optional[int] = None,
        callback: Optional[Callable[[int, Dict[str, np.ndarray]], None]] = None,
    ) -> List[TrainHistory]:
        """Run ``steps`` stacked updates; returns one
        :class:`~repro.agents.trainer.TrainHistory` per seed, recorded
        on the serial trainer's ``log_every`` schedule."""
        steps = steps if steps is not None else self.config.steps
        histories = [TrainHistory() for _ in range(self.n_seeds)]
        first = self.completed_steps + 1
        last = self.completed_steps + steps
        for step in range(first, last + 1):
            stats = self.train_step()
            if step % self.config.log_every == 0 or step == last:
                for s, history in enumerate(histories):
                    history.record(
                        step, float(stats["loss"][s]), float(stats["reward"][s])
                    )
            if callback is not None:
                callback(step, stats)
        return histories
