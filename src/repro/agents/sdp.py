"""The SDP agent: the paper's primary contribution, wrapped for training
and back-testing.

Two architectures are provided:

* ``"shared"`` (default) — :class:`~repro.snn.network.SharedSDPNetwork`:
  one population-coded spiking scorer applied to every asset with
  shared weights, plus a learned cash bias.  Algorithm 1's dynamics and
  STBP training are unchanged; the sharing is what makes the policy
  sample-efficient enough to train at reproduction scale (DESIGN.md §6).
* ``"monolithic"`` — :class:`~repro.snn.network.SDPNetwork`: the
  verbatim Algorithm 1 network over the full flat state.  Kept for the
  architecture ablation bench and the paper-exact Table 2 configuration.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..autograd import Tensor
from ..data.market import MarketData
from ..envs.observations import (
    ObservationConfig,
    sdp_asset_features_batch,
    sdp_state_batch,
)
from ..snn import (
    ActivityRecord,
    LIFParameters,
    SDPConfig,
    SDPNetwork,
    SharedSDPConfig,
    SharedSDPNetwork,
)
from ..utils.rng import make_rng
from .base import Agent

ARCHITECTURES = ("shared", "monolithic")


class SDPAgent(Agent):
    """Spiking Deterministic Policy agent.

    Parameters
    ----------
    n_assets:
        Number of traded assets M; the action dimension is M + 1.
    observation:
        Observation window/scaling (shared with the environment).
    architecture:
        ``"shared"`` (weight-shared per-asset scorer, default) or
        ``"monolithic"`` (Algorithm 1 verbatim over the flat state).
    hidden_sizes, timesteps, encoder_pop_size, decoder_pop_size, lif:
        SDP network hyper-parameters (Table 2 defaults).
    seed:
        Network initialisation seed.
    """

    name = "SDP"
    stateless = True
    #: Both SDP architectures implement the fused STBP training path
    #: (policy_forward_fused / policy_backward_fused), so PolicyTrainer
    #: routes them through the analytic kernels by default.
    supports_fused_training = True

    def __init__(
        self,
        n_assets: int,
        observation: Optional[ObservationConfig] = None,
        architecture: str = "shared",
        hidden_sizes: Tuple[int, ...] = (128, 128),
        timesteps: int = 5,
        encoder_pop_size: int = 10,
        decoder_pop_size: int = 10,
        encoder_mode: str = "deterministic",
        lif: Optional[LIFParameters] = None,
        surrogate_amplifier: float = 9.0,
        surrogate_window: float = 0.4,
        seed: int = 0,
    ):
        if n_assets <= 0:
            raise ValueError(f"n_assets must be positive, got {n_assets}")
        if architecture not in ARCHITECTURES:
            raise ValueError(
                f"unknown architecture {architecture!r}; choose from {ARCHITECTURES}"
            )
        self.n_assets = n_assets
        self.architecture = architecture
        self.observation = observation if observation is not None else ObservationConfig()
        lif = lif if lif is not None else LIFParameters()

        if architecture == "shared":
            self.config = SharedSDPConfig(
                feature_dim=self.observation.sdp_asset_feature_dim(),
                hidden_sizes=tuple(hidden_sizes),
                timesteps=timesteps,
                encoder_pop_size=encoder_pop_size,
                output_pop_size=decoder_pop_size,
                encoder_mode=encoder_mode,
                lif=lif,
                surrogate_amplifier=surrogate_amplifier,
                surrogate_window=surrogate_window,
            )
            self.network = SharedSDPNetwork(self.config, rng=make_rng(seed))
        else:
            self.config = SDPConfig(
                state_dim=self.observation.sdp_state_dim(n_assets),
                num_actions=n_assets + 1,
                hidden_sizes=tuple(hidden_sizes),
                timesteps=timesteps,
                encoder_pop_size=encoder_pop_size,
                decoder_pop_size=decoder_pop_size,
                encoder_mode=encoder_mode,
                state_range=(-1.0, 1.0),
                lif=lif,
                surrogate_amplifier=surrogate_amplifier,
                surrogate_window=surrogate_window,
            )
            self.network = SDPNetwork(self.config, rng=make_rng(seed))

    # ------------------------------------------------------------------
    def parameters(self):
        return self.network.parameters()

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.network.parameters()))

    # ------------------------------------------------------------------
    def prepare_states(
        self, data: MarketData, indices: np.ndarray, w_prev: np.ndarray
    ) -> np.ndarray:
        """Architecture-aware state batch (flat or per-asset features)."""
        if self.architecture == "shared":
            return sdp_asset_features_batch(data, indices, w_prev, self.observation)
        return sdp_state_batch(data, indices, w_prev, self.observation)

    def _states(
        self, data: MarketData, indices: np.ndarray, w_prev: np.ndarray
    ) -> np.ndarray:
        """Pre-registry private name, kept for backward compatibility."""
        return self.prepare_states(data, indices, w_prev)

    def decide_batch(self, states: np.ndarray) -> np.ndarray:
        """One batched SNN forward over a prepared state batch.

        Inference never takes a gradient, so this routes through the
        fused graph-free kernels (:meth:`SDPNetwork.forward_inference`) —
        bit-identical decisions to the autograd path at a fraction of
        the cost.  Training goes through :meth:`policy_forward`.
        """
        return self.network.forward_inference(states)

    def policy_forward(
        self, data: MarketData, indices: np.ndarray, w_prev: np.ndarray
    ) -> Tensor:
        """Differentiable batched action computation for the trainer."""
        return self.network.forward(self.prepare_states(data, indices, w_prev))

    def _state_perm_columns(self, perm: np.ndarray) -> np.ndarray:
        """Flat-state column map applying an asset permutation.

        The monolithic state concatenates a ``(H, A)`` momentum block, a
        ``(A, 3)`` candle block, and the ``A + 1`` previous weights
        (cash first); permuting the assets of the *panel* permutes those
        columns — gathering them is bit-identical to rebuilding the
        state on a permuted panel, since every feature is per-asset
        elementwise.
        """
        m = self.n_assets
        n_h = len(self.observation.momentum_horizons)
        momentum = (np.arange(n_h)[:, None] * m + perm[None, :]).ravel()
        candle = n_h * m + (perm[:, None] * 3 + np.arange(3)[None, :]).ravel()
        weights = n_h * m + 3 * m + np.concatenate([[0], 1 + perm])
        return np.concatenate([momentum, candle, weights])

    def policy_forward_fused(
        self,
        data: MarketData,
        indices: np.ndarray,
        w_prev: np.ndarray,
        asset_perm: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Fused STBP training forward; bit-identical to
        :meth:`policy_forward` without building a closure graph.

        With ``asset_perm``, ``data``/``w_prev`` are in native order and
        the permutation is applied to the prepared state batch — a
        ``(B, ...)`` gather instead of a whole permuted panel — which is
        bit-identical because every state feature is per-asset
        elementwise.  The returned array is a tape buffer, valid until
        the next fused forward; call :meth:`policy_backward_fused`
        before any parameter update to accumulate gradients.
        """
        states = self.prepare_states(data, indices, w_prev)
        if asset_perm is not None:
            if self.architecture == "shared":
                states = states[:, asset_perm, :]
            else:
                states = states[:, self._state_perm_columns(asset_perm)]
        return self.network.policy_forward_fused(states)

    def policy_backward_fused(self, grad_actions: np.ndarray) -> None:
        """Accumulate parameter grads for the last fused forward."""
        self.network.policy_backward_fused(grad_actions)

    def act(self, data: MarketData, t: int, w_prev: np.ndarray) -> np.ndarray:
        states = self.prepare_states(
            data, np.array([t]), np.asarray(w_prev)[None, :]
        )
        return self.decide_batch(states)[0]

    # ------------------------------------------------------------------
    def inference_activity(
        self, data: MarketData, t: int, w_prev: np.ndarray,
        timesteps: Optional[int] = None,
    ) -> ActivityRecord:
        """Spike/synop counts of one inference (Loihi energy model input)."""
        states = self.prepare_states(data, np.array([t]), np.asarray(w_prev)[None, :])
        _, activity = self.network.forward_inference_with_activity(states, timesteps)
        return activity

    def dense_equivalent_macs(self) -> int:
        """MAC count if the same topology ran as a dense ANN on CPU/GPU.

        One multiply–accumulate per synapse per forward pass (the
        conventional ANN cost the paper's CPU/GPU baselines pay), times
        the T repeats an SNN needs; the shared architecture pays per
        asset.
        """
        total = sum(i * o for i, o in self.network.layer_sizes())
        repeats = self.n_assets if self.architecture == "shared" else 1
        return total * self.config.timesteps * repeats
