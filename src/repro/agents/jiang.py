"""The DRL[Jiang] baseline: the EIIE convolutional policy of
Jiang, Xu & Liang (2017), "A Deep Reinforcement Learning Framework for
the Financial Portfolio Management Problem".

This is the method the paper compares against in Tables 3 and 4
("One of the best methods is offered by [12]").  The network is the
*Ensemble of Identical Independent Evaluators* CNN: per-asset feature
extraction with width-spanning 1-D convolutions, the previous weights
injected as an extra channel before the final scoring layer, a learned
cash bias, and a softmax over N = M + 1 outputs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, concatenate, no_grad
from ..autograd import functional as F
from ..autograd.functional import _im2col
from ..autograd.nn import Conv2d, Module, Parameter
from ..data.market import MarketData
from ..envs.observations import ObservationConfig, price_tensor_batch
from ..snn.decoding import softmax_head_backward, softmax_head_forward
from ..utils.rng import make_rng
from .base import Agent


def _conv2d_forward_fused(x: np.ndarray, conv: Conv2d):
    """Graph-free :func:`~repro.autograd.functional.conv2d` forward.

    Same im2col / matmul / bias ops in the same order, so the output is
    bit-identical to the graph path.  Returns ``(out, cols)`` — the
    patch matrix is kept for the analytic backward.
    """
    c_out, _, kh, kw = conv.weight.shape
    cols, out_h, out_w = _im2col(x, kh, kw, conv.stride)
    w_mat = conv.weight.data.reshape(c_out, -1)
    out = cols @ w_mat.T
    out = out.transpose(0, 3, 1, 2)
    out = out + conv.bias.data.reshape(1, -1, 1, 1)
    return np.ascontiguousarray(out), cols


def _conv2d_backward_fused(
    g: np.ndarray,
    cols: np.ndarray,
    conv: Conv2d,
    x_shape,
    need_input_grad: bool,
):
    """Analytic conv backward mirroring the closure inside ``conv2d``.

    Returns ``(grad_x, grad_w, grad_b)``; ``grad_x`` is ``None`` when
    the input is a leaf (e.g. the first conv's price tensor).
    """
    c_out, c_in, kh, kw = conv.weight.shape
    sh, sw = conv.stride
    g_cols = g.transpose(0, 2, 3, 1)
    grad_w = np.einsum("bijo,bijk->ok", g_cols, cols).reshape(conv.weight.shape)
    grad_b = g.sum(axis=(0, 2, 3))
    grad_x = None
    if need_input_grad:
        out_h, out_w = g.shape[2], g.shape[3]
        w_mat = conv.weight.data.reshape(c_out, -1)
        grad_cols = g_cols @ w_mat
        grad_cols = grad_cols.reshape(
            x_shape[0], out_h, out_w, c_in, kh, kw
        ).transpose(0, 3, 1, 2, 4, 5)
        grad_x = np.zeros(x_shape)
        for i in range(kh):
            for j in range(kw):
                grad_x[
                    :, :, i : i + out_h * sh : sh, j : j + out_w * sw : sw
                ] += grad_cols[:, :, :, :, i, j]
    return grad_x, grad_w, grad_b


class EIIENetwork(Module):
    """The EIIE CNN topology.

    Input: price tensor ``(B, F, A, W)`` — features × assets × window.
    conv1 slides a (1, 3) kernel along the window; conv2 collapses the
    remaining width with a (1, W−2) kernel; the previous weights (assets
    only) join as a channel; conv3 scores each asset with a (1, 1)
    kernel; a learned cash bias is appended and a softmax produces the
    portfolio vector.
    """

    def __init__(
        self,
        num_features: int,
        num_assets: int,
        window: int,
        conv1_filters: int = 2,
        conv2_filters: int = 20,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if window < 4:
            raise ValueError(f"EIIE needs a window of at least 4, got {window}")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_assets = num_assets
        self.window = window
        self.conv1 = Conv2d(num_features, conv1_filters, (1, 3), rng=rng)
        self.conv2 = Conv2d(conv1_filters, conv2_filters, (1, window - 2), rng=rng)
        self.conv3 = Conv2d(conv2_filters + 1, 1, (1, 1), rng=rng)
        self.cash_bias = Parameter(np.zeros(1))

    def forward(self, price_tensor: Tensor, w_prev_assets: Tensor) -> Tensor:
        """Portfolio weights ``(B, A+1)`` from prices and w_{t−1}.

        ``w_prev_assets`` excludes the cash component: shape (B, A).
        """
        x = self.conv1(price_tensor).relu()
        x = self.conv2(x).relu()  # (B, C2, A, 1)
        w = w_prev_assets.reshape(w_prev_assets.shape[0], 1, self.num_assets, 1)
        x = concatenate([x, w], axis=1)  # previous-weight channel
        scores = self.conv3(x)  # (B, 1, A, 1)
        scores = scores.reshape(scores.shape[0], self.num_assets)
        batch = scores.shape[0]
        cash = self.cash_bias.reshape(1, 1) * Tensor(np.ones((batch, 1)))
        logits = concatenate([cash, scores], axis=1)
        return F.softmax(logits, axis=1)

    # -- training fast path --------------------------------------------
    def policy_forward_fused(
        self, price_tensor: np.ndarray, w_prev_assets: np.ndarray
    ) -> np.ndarray:
        """Recorded graph-free :meth:`forward`; bit-identical actions.

        Keeps the im2col patch matrices, relu masks, and softmax
        activations on a tape for :meth:`policy_backward_fused`.
        """
        x = np.asarray(price_tensor, dtype=np.float64)
        w_prev_assets = np.asarray(w_prev_assets, dtype=np.float64)
        batch = x.shape[0]
        z1, cols1 = _conv2d_forward_fused(x, self.conv1)
        mask1 = z1 > 0
        x1 = np.where(mask1, z1, 0.0)
        z2, cols2 = _conv2d_forward_fused(x1, self.conv2)
        mask2 = z2 > 0
        x2 = np.where(mask2, z2, 0.0)
        w = w_prev_assets.reshape(batch, 1, self.num_assets, 1)
        cat = np.concatenate([x2, w], axis=1)
        z3, cols3 = _conv2d_forward_fused(cat, self.conv3)
        scores = z3.reshape(batch, self.num_assets)
        cash = self.cash_bias.data.reshape(1, 1) * np.ones((batch, 1))
        logits = np.concatenate([cash, scores], axis=1)
        temp = np.empty_like(logits)
        temp_sum = np.empty((batch, 1))
        action = np.empty_like(logits)
        softmax_head_forward(logits, temp, temp_sum, action)
        self._train_tape = {
            "cols1": cols1, "mask1": mask1, "x1_shape": x1.shape,
            "cols2": cols2, "mask2": mask2, "cat_shape": cat.shape,
            "cols3": cols3, "x_shape": x.shape,
            "temp": temp, "temp_sum": temp_sum, "batch": batch,
        }
        return action

    def policy_backward_fused(self, grad_action: np.ndarray) -> None:
        """Analytic backward of :meth:`policy_forward_fused`; accumulates
        gradients bit-identical to the closure-graph path."""
        tape = getattr(self, "_train_tape", None)
        if tape is None:
            raise RuntimeError("policy_forward_fused must be called first")
        g = np.asarray(grad_action, dtype=np.float64)
        g_logits = softmax_head_backward(g, tape["temp"], tape["temp_sum"])
        g_cash_bias = g_logits[:, :1].sum(axis=(0,), keepdims=True).reshape(1)
        g_z3 = g_logits[:, 1:].reshape(tape["batch"], 1, self.num_assets, 1)
        g_cat, g_w3, g_b3 = _conv2d_backward_fused(
            g_z3, tape["cols3"], self.conv3, tape["cat_shape"], True
        )
        # Concat backward: previous-weight channel is a leaf.
        g_z2 = g_cat[:, : self.conv2.out_channels] * tape["mask2"]
        g_x1, g_w2, g_b2 = _conv2d_backward_fused(
            g_z2, tape["cols2"], self.conv2, tape["x1_shape"], True
        )
        g_z1 = g_x1 * tape["mask1"]
        _, g_w1, g_b1 = _conv2d_backward_fused(
            g_z1, tape["cols1"], self.conv1, tape["x_shape"], False
        )
        self.conv1.weight._accumulate(g_w1)
        self.conv1.bias._accumulate(g_b1)
        self.conv2.weight._accumulate(g_w2)
        self.conv2.bias._accumulate(g_b2)
        self.conv3.weight._accumulate(g_w3)
        self.conv3.bias._accumulate(g_b3)
        self.cash_bias._accumulate(g_cash_bias)


class JiangDRLAgent(Agent):
    """Back-testable wrapper around :class:`EIIENetwork`.

    Uses the same trainer/objective as the SDP agent; only the network
    and the observation encoding differ.
    """

    name = "DRL[Jiang]"
    stateless = True
    #: EIIE implements the fused training path (analytic conv backward),
    #: so PolicyTrainer routes it off the closure graph by default.
    supports_fused_training = True

    def __init__(
        self,
        n_assets: int,
        observation: Optional[ObservationConfig] = None,
        conv1_filters: int = 2,
        conv2_filters: int = 20,
        seed: int = 0,
    ):
        if n_assets <= 0:
            raise ValueError(f"n_assets must be positive, got {n_assets}")
        self.n_assets = n_assets
        self.observation = observation if observation is not None else ObservationConfig()
        self.network = EIIENetwork(
            num_features=self.observation.num_features,
            num_assets=n_assets,
            window=self.observation.window,
            conv1_filters=conv1_filters,
            conv2_filters=conv2_filters,
            rng=make_rng(seed),
        )

    # ------------------------------------------------------------------
    def parameters(self):
        return self.network.parameters()

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.network.parameters()))

    # ------------------------------------------------------------------
    def prepare_states(
        self, data: MarketData, indices: np.ndarray, w_prev: np.ndarray
    ) -> dict:
        """EIIE input batch: price tensors plus the previous weights."""
        return {
            "prices": price_tensor_batch(data, indices, self.observation),
            "w_prev": np.asarray(w_prev, dtype=np.float64),
        }

    def decide_batch(self, states: dict) -> np.ndarray:
        """One batched CNN forward over a prepared state batch.

        Runs under :func:`~repro.autograd.no_grad`: the convolution
        forward is the same numpy computation, but no backward closures
        or graph nodes are allocated — inference never backpropagates.
        """
        with no_grad():
            w_assets = Tensor(states["w_prev"][:, 1:])
            return self.network(Tensor(states["prices"]), w_assets).data

    def policy_forward(
        self, data: MarketData, indices: np.ndarray, w_prev: np.ndarray
    ) -> Tensor:
        states = self.prepare_states(data, indices, w_prev)
        w_assets = Tensor(states["w_prev"][:, 1:])
        return self.network(Tensor(states["prices"]), w_assets)

    def policy_forward_fused(
        self,
        data: MarketData,
        indices: np.ndarray,
        w_prev: np.ndarray,
        asset_perm: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Fused training forward (bit-identical to :meth:`policy_forward`).

        With ``asset_perm``, the native-order price tensor has its asset
        axis gathered instead of building a permuted panel — the EIIE
        features are per-asset (window prices over that asset's own
        latest close), so the gather is bit-identical.
        """
        states = self.prepare_states(data, indices, w_prev)
        prices = states["prices"]
        w_assets = states["w_prev"][:, 1:]
        if asset_perm is not None:
            prices = prices[:, :, asset_perm, :]
            w_assets = w_assets[:, asset_perm]
        return self.network.policy_forward_fused(prices, w_assets)

    def policy_backward_fused(self, grad_actions: np.ndarray) -> None:
        """Accumulate parameter grads for the last fused forward."""
        self.network.policy_backward_fused(grad_actions)

    def act(self, data: MarketData, t: int, w_prev: np.ndarray) -> np.ndarray:
        states = self.prepare_states(
            data, np.array([t]), np.asarray(w_prev)[None, :]
        )
        return self.decide_batch(states)[0]

    # ------------------------------------------------------------------
    def macs_per_inference(self) -> int:
        """Multiply–accumulate count of one forward pass.

        Feeds the Table 4 CPU/GPU device models.
        """
        f = self.observation.num_features
        a = self.n_assets
        w = self.observation.window
        c1 = self.network.conv1.out_channels
        c2 = self.network.conv2.out_channels
        macs = 0
        macs += (w - 2) * a * c1 * f * 3          # conv1
        macs += 1 * a * c2 * c1 * (w - 2)         # conv2
        macs += a * (c2 + 1)                      # conv3
        return int(macs)
