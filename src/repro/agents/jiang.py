"""The DRL[Jiang] baseline: the EIIE convolutional policy of
Jiang, Xu & Liang (2017), "A Deep Reinforcement Learning Framework for
the Financial Portfolio Management Problem".

This is the method the paper compares against in Tables 3 and 4
("One of the best methods is offered by [12]").  The network is the
*Ensemble of Identical Independent Evaluators* CNN: per-asset feature
extraction with width-spanning 1-D convolutions, the previous weights
injected as an extra channel before the final scoring layer, a learned
cash bias, and a softmax over N = M + 1 outputs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, concatenate, no_grad
from ..autograd import functional as F
from ..autograd.nn import Conv2d, Module, Parameter
from ..data.market import MarketData
from ..envs.observations import ObservationConfig, price_tensor_batch
from ..utils.rng import make_rng
from .base import Agent


class EIIENetwork(Module):
    """The EIIE CNN topology.

    Input: price tensor ``(B, F, A, W)`` — features × assets × window.
    conv1 slides a (1, 3) kernel along the window; conv2 collapses the
    remaining width with a (1, W−2) kernel; the previous weights (assets
    only) join as a channel; conv3 scores each asset with a (1, 1)
    kernel; a learned cash bias is appended and a softmax produces the
    portfolio vector.
    """

    def __init__(
        self,
        num_features: int,
        num_assets: int,
        window: int,
        conv1_filters: int = 2,
        conv2_filters: int = 20,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if window < 4:
            raise ValueError(f"EIIE needs a window of at least 4, got {window}")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_assets = num_assets
        self.window = window
        self.conv1 = Conv2d(num_features, conv1_filters, (1, 3), rng=rng)
        self.conv2 = Conv2d(conv1_filters, conv2_filters, (1, window - 2), rng=rng)
        self.conv3 = Conv2d(conv2_filters + 1, 1, (1, 1), rng=rng)
        self.cash_bias = Parameter(np.zeros(1))

    def forward(self, price_tensor: Tensor, w_prev_assets: Tensor) -> Tensor:
        """Portfolio weights ``(B, A+1)`` from prices and w_{t−1}.

        ``w_prev_assets`` excludes the cash component: shape (B, A).
        """
        x = self.conv1(price_tensor).relu()
        x = self.conv2(x).relu()  # (B, C2, A, 1)
        w = w_prev_assets.reshape(w_prev_assets.shape[0], 1, self.num_assets, 1)
        x = concatenate([x, w], axis=1)  # previous-weight channel
        scores = self.conv3(x)  # (B, 1, A, 1)
        scores = scores.reshape(scores.shape[0], self.num_assets)
        batch = scores.shape[0]
        cash = self.cash_bias.reshape(1, 1) * Tensor(np.ones((batch, 1)))
        logits = concatenate([cash, scores], axis=1)
        return F.softmax(logits, axis=1)


class JiangDRLAgent(Agent):
    """Back-testable wrapper around :class:`EIIENetwork`.

    Uses the same trainer/objective as the SDP agent; only the network
    and the observation encoding differ.
    """

    name = "DRL[Jiang]"
    stateless = True

    def __init__(
        self,
        n_assets: int,
        observation: Optional[ObservationConfig] = None,
        conv1_filters: int = 2,
        conv2_filters: int = 20,
        seed: int = 0,
    ):
        if n_assets <= 0:
            raise ValueError(f"n_assets must be positive, got {n_assets}")
        self.n_assets = n_assets
        self.observation = observation if observation is not None else ObservationConfig()
        self.network = EIIENetwork(
            num_features=self.observation.num_features,
            num_assets=n_assets,
            window=self.observation.window,
            conv1_filters=conv1_filters,
            conv2_filters=conv2_filters,
            rng=make_rng(seed),
        )

    # ------------------------------------------------------------------
    def parameters(self):
        return self.network.parameters()

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.network.parameters()))

    # ------------------------------------------------------------------
    def prepare_states(
        self, data: MarketData, indices: np.ndarray, w_prev: np.ndarray
    ) -> dict:
        """EIIE input batch: price tensors plus the previous weights."""
        return {
            "prices": price_tensor_batch(data, indices, self.observation),
            "w_prev": np.asarray(w_prev, dtype=np.float64),
        }

    def decide_batch(self, states: dict) -> np.ndarray:
        """One batched CNN forward over a prepared state batch.

        Runs under :func:`~repro.autograd.no_grad`: the convolution
        forward is the same numpy computation, but no backward closures
        or graph nodes are allocated — inference never backpropagates.
        """
        with no_grad():
            w_assets = Tensor(states["w_prev"][:, 1:])
            return self.network(Tensor(states["prices"]), w_assets).data

    def policy_forward(
        self, data: MarketData, indices: np.ndarray, w_prev: np.ndarray
    ) -> Tensor:
        states = self.prepare_states(data, indices, w_prev)
        w_assets = Tensor(states["w_prev"][:, 1:])
        return self.network(Tensor(states["prices"]), w_assets)

    def act(self, data: MarketData, t: int, w_prev: np.ndarray) -> np.ndarray:
        states = self.prepare_states(
            data, np.array([t]), np.asarray(w_prev)[None, :]
        )
        return self.decide_batch(states)[0]

    # ------------------------------------------------------------------
    def macs_per_inference(self) -> int:
        """Multiply–accumulate count of one forward pass.

        Feeds the Table 4 CPU/GPU device models.
        """
        f = self.observation.num_features
        a = self.n_assets
        w = self.observation.window
        c1 = self.network.conv1.out_channels
        c2 = self.network.conv2.out_channels
        macs = 0
        macs += (w - 2) * a * c1 * f * 3          # conv1
        macs += 1 * a * c2 * c1 * (w - 2)         # conv2
        macs += a * (c2 + 1)                      # conv3
        return int(macs)
