"""Trainable policy agents: the SDP (paper contribution) and DRL[Jiang].

Both agents share the deterministic policy-gradient trainer
(:class:`~repro.agents.trainer.PolicyTrainer`) and the back-test loop
(:func:`~repro.agents.base.run_backtest`).
"""

from .base import Agent, BacktestResult, concat_states, run_backtest
from .jiang import EIIENetwork, JiangDRLAgent
from .multiseed import MultiSeedTrainer
from .sdp import SDPAgent
from .trainer import PolicyTrainer, TrainConfig, TrainHistory

__all__ = [
    "Agent",
    "BacktestResult",
    "EIIENetwork",
    "JiangDRLAgent",
    "MultiSeedTrainer",
    "PolicyTrainer",
    "SDPAgent",
    "TrainConfig",
    "TrainHistory",
    "concat_states",
    "run_backtest",
]
