"""The Strategy protocol shared by every policy in the repo.

Every policy — spiking, deep, or classical — implements :class:`Agent`:
single-step :meth:`~Agent.act` for sequential loops, plus the public
batched-inference pair :meth:`~Agent.prepare_states` /
:meth:`~Agent.decide_batch` that vectorised engines
(:class:`~repro.envs.backtester.Backtester`,
:class:`~repro.serving.PortfolioService`) use to evaluate many decision
points in one forward pass.  :func:`run_backtest` is the
backward-compatible entry point; the engine itself lives in
:mod:`repro.envs.backtester`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

import numpy as np

from ..data.market import MarketData
from ..envs.backtester import Backtester, BacktestResult, concat_states
from ..envs.costs import DEFAULT_COMMISSION
from ..envs.observations import ObservationConfig

__all__ = [
    "Agent",
    "BacktestResult",
    "concat_states",
    "run_backtest",
]


class Agent(ABC):
    """A policy mapping market history to portfolio weights.

    Subclasses must implement :meth:`act`; vectorised policies should
    additionally override :meth:`prepare_states` / :meth:`decide_batch`
    (the defaults fall back to looping :meth:`act`) and declare
    ``stateless = True`` when inference is a pure function of its
    inputs, which lets engines share one instance across concurrent
    sessions and micro-batch their decisions.
    """

    #: Human-readable name used in result tables.
    name: str = "agent"

    #: True when ``act``/``decide_batch`` keep no per-run mutable state,
    #: so one instance can serve many concurrent back-tests/sessions and
    #: batched inference across them is sound.
    stateless: bool = False

    @abstractmethod
    def act(self, data: MarketData, t: int, w_prev: np.ndarray) -> np.ndarray:
        """Portfolio weights (cash first) for decision index ``t``.

        Implementations may look at panel data up to and including
        period ``t`` only; ``w_prev`` is the previously chosen target
        weight vector.
        """

    def begin_backtest(self, data: MarketData) -> None:
        """Hook called once before a back-test starts (stateful agents)."""

    # -- batched inference (the serving/profiling fast path) -----------
    def prepare_states(
        self, data: MarketData, indices: np.ndarray, w_prev: np.ndarray
    ) -> object:
        """Inference states for a batch of decision points.

        ``indices`` has shape ``(batch,)`` and ``w_prev`` shape
        ``(batch, N)``.  The return value is an opaque batch consumed by
        :meth:`decide_batch`; allowed containers are a batch-first numpy
        array, a dict of such containers, or a plain list of per-row
        items (so :func:`concat_states` can merge batches from
        different panels).  The default keeps per-row tuples and gets no
        speed-up; vectorised agents return array batches.
        """
        indices = np.asarray(indices, dtype=np.int64)
        w_prev = np.asarray(w_prev, dtype=np.float64)
        if w_prev.ndim != 2 or w_prev.shape[0] != indices.shape[0]:
            raise ValueError(
                f"w_prev must have shape (batch, N) matching {indices.shape[0]} "
                f"indices, got {w_prev.shape}"
            )
        return [(data, int(t), w_prev[i]) for i, t in enumerate(indices)]

    def decide_batch(self, states: object) -> np.ndarray:
        """Portfolio weights ``(batch, N)`` for a prepared state batch.

        The default loops :meth:`act` row by row; vectorised agents
        override it with one batched network forward.
        """
        return np.stack([self.act(data, t, w) for data, t, w in states])

    @property
    def action_noise(self) -> float:
        """Optional exploration noise level (0 for deterministic)."""
        return 0.0


def run_backtest(
    agent: Agent,
    data: MarketData,
    observation: Optional[ObservationConfig] = None,
    commission: float = DEFAULT_COMMISSION,
    initial_value: float = 1.0,
    execution=None,
    risk=None,
) -> BacktestResult:
    """Back-test ``agent`` over ``data`` and compute Table 3 metrics.

    Thin wrapper over :class:`~repro.envs.backtester.Backtester` kept
    for backward compatibility (and convenience).  ``execution`` is an
    optional :class:`~repro.execution.ExecutionEngine`; when set the
    result's ``extra`` carries implementation-shortfall metrics.
    ``risk`` is an optional :class:`~repro.risk.RiskEngine`; when set
    every decision is projected onto its constraint set before
    execution and ``extra["risk"]`` carries the enforcement report.
    """
    engine = Backtester(
        observation=observation,
        commission=commission,
        initial_value=initial_value,
        execution=execution,
        risk=risk,
    )
    return engine.run(agent, data)
