"""Agent interface and the shared back-test loop.

Every policy — spiking, deep, or classical — is back-tested through the
same :func:`run_backtest` loop over :class:`~repro.envs.PortfolioEnv`,
so Table 3 comparisons are apples-to-apples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..data.market import MarketData
from ..envs.costs import DEFAULT_COMMISSION
from ..envs.observations import ObservationConfig
from ..envs.portfolio import PortfolioEnv
from ..metrics import BacktestMetrics, evaluate_backtest


class Agent(ABC):
    """A policy mapping market history to portfolio weights."""

    #: Human-readable name used in result tables.
    name: str = "agent"

    @abstractmethod
    def act(self, data: MarketData, t: int, w_prev: np.ndarray) -> np.ndarray:
        """Portfolio weights (cash first) for decision index ``t``.

        Implementations may look at panel data up to and including
        period ``t`` only; ``w_prev`` is the previously chosen target
        weight vector.
        """

    def begin_backtest(self, data: MarketData) -> None:
        """Hook called once before a back-test starts (stateful agents)."""

    @property
    def action_noise(self) -> float:
        """Optional exploration noise level (0 for deterministic)."""
        return 0.0


@dataclass
class BacktestResult:
    """Trajectory and metrics of one back-test run."""

    agent_name: str
    values: np.ndarray
    weights: np.ndarray
    rewards: np.ndarray
    mus: np.ndarray
    metrics: BacktestMetrics
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def fapv(self) -> float:
        return self.metrics.fapv

    @property
    def sharpe(self) -> float:
        return self.metrics.sharpe

    @property
    def mdd(self) -> float:
        return self.metrics.mdd


def run_backtest(
    agent: Agent,
    data: MarketData,
    observation: Optional[ObservationConfig] = None,
    commission: float = DEFAULT_COMMISSION,
    initial_value: float = 1.0,
) -> BacktestResult:
    """Back-test ``agent`` over ``data`` and compute Table 3 metrics."""
    env = PortfolioEnv(
        data,
        observation=observation,
        commission=commission,
        initial_value=initial_value,
    )
    agent.begin_backtest(data)
    done = False
    while not done:
        action = agent.act(data, env.t, env.previous_weights)
        result = env.step(action)
        done = result.done
    metrics = evaluate_backtest(env.value_history, data.period_seconds)
    return BacktestResult(
        agent_name=agent.name,
        values=np.asarray(env.value_history),
        weights=np.asarray(env.weight_history),
        rewards=np.asarray(env.reward_history),
        mus=np.asarray(env.mu_history),
        metrics=metrics,
    )
