"""Portfolio-Vector Memory (PVM).

Jiang et al.'s training trick, adopted by the paper ("The DRL method
uses reply memory to evaluate policies to overcome forgetfulness"):
the network's output weights at every training period are cached so
that, when a minibatch revisits period ``t``, the state's ``w_{t−1}``
component and the transaction-cost term use the *latest* policy's
weights rather than stale on-policy rollouts.  The memory is initialised
to uniform weights.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class PortfolioVectorMemory:
    """Per-period cache of portfolio weight vectors (cash included)."""

    def __init__(self, n_periods: int, n_assets: int):
        if n_periods <= 0 or n_assets <= 0:
            raise ValueError("n_periods and n_assets must be positive")
        self.n_periods = n_periods
        self.n_assets = n_assets
        # Uniform initialisation over assets + cash.
        self._memory = np.full(
            (n_periods, n_assets + 1), 1.0 / (n_assets + 1), dtype=np.float64
        )

    def _check_range(self, idx: np.ndarray, what: str) -> None:
        # One (min, max) pair instead of two full-array comparisons —
        # this sits on the trainer's per-step hot path.
        if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= self.n_periods):
            raise IndexError(f"PVM {what} out of range")

    def read(self, indices: Sequence[int]) -> np.ndarray:
        """Weights at ``indices``; shape (len(indices), n_assets + 1)."""
        idx = np.asarray(indices, dtype=np.int64)
        self._check_range(idx, "read")
        rows = self._memory[idx]
        # Fancy indexing already copies; only a scalar index yields a view.
        return rows.copy() if rows.base is not None else rows

    def write(
        self,
        indices: Sequence[int],
        weights: np.ndarray,
        validate: bool = True,
    ) -> None:
        """Store ``weights`` (rows on the simplex) at ``indices``.

        ``validate=False`` skips the simplex re-validation (sum-to-one,
        non-negativity); the trainer's hot write-back path uses it since
        its rows come straight off a softmax.  Shape and index-range
        checks always run.
        """
        idx = np.asarray(indices, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (idx.shape[0], self.n_assets + 1):
            raise ValueError(
                f"expected weights of shape ({idx.shape[0]}, "
                f"{self.n_assets + 1}), got {weights.shape}"
            )
        self._check_range(idx, "write")
        if validate:
            sums = weights.sum(axis=1)
            if np.any(np.abs(sums - 1.0) > 1e-6) or np.any(weights < -1e-9):
                raise ValueError("PVM rows must lie on the probability simplex")
        self._memory[idx] = weights

    def snapshot(self) -> np.ndarray:
        """Copy of the full memory (diagnostics/tests)."""
        return self._memory.copy()

    def restore(self, snapshot: np.ndarray) -> None:
        """Load a :meth:`snapshot` back (resumable-training support)."""
        snapshot = np.asarray(snapshot, dtype=np.float64)
        if snapshot.shape != self._memory.shape:
            raise ValueError(
                f"snapshot shape {snapshot.shape} does not match memory "
                f"shape {self._memory.shape}"
            )
        np.copyto(self._memory, snapshot)
