"""The portfolio-management environment (§II.A of the paper).

``PortfolioEnv`` steps through a :class:`~repro.data.market.MarketData`
panel: at each decision period the agent supplies portfolio weights
``w_t`` (cash first, then the M assets); the environment charges the
transaction remainder factor μ_t for rebalancing away from the drifted
previous weights, applies the next period's price relatives ``y_{t+1}``
and returns the log-return reward ``r_t = ln(μ_t · y_{t+1} · w_t)``
whose average is the objective of eq. (1).

The environment is agnostic to the agent type: the SDP agent, the Jiang
EIIE agent, and every classical baseline are all back-tested through
this same loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..data.market import MarketData
from ..metrics.performance import implementation_shortfall
from .costs import (
    DEFAULT_COMMISSION,
    drifted_weights,
    transaction_remainder_exact,
)
from .observations import ObservationConfig

if TYPE_CHECKING:  # execution imports envs.costs; keep the cycle type-only
    from ..execution import ExecutionEngine
    from ..risk import LockoutState, RiskEngine


def normalize_action(action: np.ndarray, action_dim: int, context: str = "action") -> np.ndarray:
    """Validate a portfolio weight vector and return it renormalised.

    The single definition of what a legal action is — shared by
    :meth:`PortfolioEnv.step` and the serving layer so served
    trajectories stay bit-comparable with back-tested ones: shape
    ``(action_dim,)``, finite, non-negative (within -1e-9), summing to
    1 (within 1e-6); then clipped to ``[0, ∞)`` and renormalised.
    """
    action = np.asarray(action, dtype=np.float64)
    if action.shape != (action_dim,):
        raise ValueError(
            f"{context} must have shape ({action_dim},), got {action.shape}"
        )
    # One reduction covers the finiteness check: any non-finite entry
    # makes the sum non-finite (inf propagates; inf − inf and nan both
    # yield nan), and the sum is needed anyway.
    total = float(action.sum())
    if not np.isfinite(total):
        raise ValueError(f"{context} must be finite")
    if float(action.min()) < -1e-9:
        raise ValueError(f"{context} weights must be non-negative")
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"{context} must sum to 1, sums to {total:.8f}")
    action = np.maximum(action, 0.0)
    return action / action.sum()


@dataclass
class StepResult:
    """Outcome of one environment step."""

    reward: float
    portfolio_value: float
    mu: float
    price_relatives: np.ndarray
    done: bool
    info: Dict[str, float] = field(default_factory=dict)


class PortfolioEnv:
    """Sequential portfolio-rebalancing environment.

    Parameters
    ----------
    data:
        OHLCV panel; asset columns are traded, plus an implicit cash
        asset at weight index 0 with constant price.
    observation:
        Window/feature configuration shared with the agents.
    commission:
        Per-side commission rate for the exact μ_t computation.
    initial_value:
        Starting portfolio value p_0.
    execution:
        Optional :class:`~repro.execution.ExecutionEngine` pricing each
        rebalance against market liquidity (impact cost, partial
        fills).  ``None`` (the default) keeps the commission-only path
        untouched; an engine with a zero-cost model is bit-identical to
        it.
    risk:
        Optional :class:`~repro.risk.RiskEngine` projecting each
        decision onto the constraint set *before* execution.  ``None``
        (the default) keeps today's unconstrained path untouched; a
        null engine (no limits) is bit-identical to it.

    Timeline
    --------
    ``reset()`` places the cursor at the first decision index with a
    full observation window.  ``step(w)`` charges costs at the cursor's
    close, applies the cursor→cursor+1 price move, advances the cursor,
    and is ``done`` when no further price relative exists.
    """

    def __init__(
        self,
        data: MarketData,
        observation: Optional[ObservationConfig] = None,
        commission: float = DEFAULT_COMMISSION,
        initial_value: float = 1.0,
        execution: Optional["ExecutionEngine"] = None,
        risk: Optional["RiskEngine"] = None,
    ):
        if initial_value <= 0:
            raise ValueError("initial_value must be positive")
        self.data = data
        self.observation = observation if observation is not None else ObservationConfig()
        self.commission = float(commission)
        self.initial_value = float(initial_value)
        if execution is not None and execution.commission != self.commission:
            # With an engine, μ_t comes from the engine's fixed point —
            # a silently different rate there would desync fAPV from
            # the engine-less run of the same configuration.
            raise ValueError(
                f"execution engine charges commission "
                f"{execution.commission}, environment expects "
                f"{self.commission}; build the engine with the same rate"
            )
        self.execution = execution
        self.risk = risk
        first = self.observation.first_decision_index()
        if first >= data.n_periods - 1:
            raise ValueError(
                f"panel too short: {data.n_periods} periods for window "
                f"{self.observation.window}"
            )
        self._first_decision = first
        self.reset()

    # ------------------------------------------------------------------
    @property
    def n_assets(self) -> int:
        return self.data.n_assets

    @property
    def action_dim(self) -> int:
        """N = M + 1: cash plus assets."""
        return self.data.n_assets + 1

    @property
    def t(self) -> int:
        """Current decision index into the panel."""
        return self._t

    @property
    def num_decisions(self) -> int:
        """Total decision steps in one episode over this panel."""
        return (self.data.n_periods - 1) - self._first_decision

    def uniform_weights(self) -> np.ndarray:
        return np.full(self.action_dim, 1.0 / self.action_dim)

    def cash_weights(self) -> np.ndarray:
        w = np.zeros(self.action_dim)
        w[0] = 1.0
        return w

    # ------------------------------------------------------------------
    def reset(self) -> int:
        """Start a new episode; returns the first decision index."""
        self._t = self._first_decision
        self._value = self.initial_value
        self._ideal_value = self.initial_value
        self._w_drifted = self.cash_weights()  # start fully in cash
        self._w_prev_target = self.cash_weights()
        self.value_history: List[float] = [self._value]
        self.reward_history: List[float] = []
        self.weight_history: List[np.ndarray] = []
        self.mu_history: List[float] = []
        # Execution-layer trajectories; stay empty without an engine.
        self.ideal_value_history: List[float] = [self._ideal_value]
        self.fill_ratio_history: List[float] = []
        self.slippage_history: List[float] = []
        # Risk-layer trajectories; stay empty without an engine.
        self.risk_binding_history: List[Dict[str, bool]] = []
        self.lockout_history: List[bool] = []
        self.pre_turnover_history: List[float] = []
        self.post_turnover_history: List[float] = []
        self._risk_state: Optional["LockoutState"] = (
            self.risk.initial_state(self._value) if self.risk is not None else None
        )
        return self._t

    # ------------------------------------------------------------------
    def price_relative(self, t: int) -> np.ndarray:
        """y_{t+1} including the cash component (index 0, always 1)."""
        if t + 1 >= self.data.n_periods:
            raise IndexError(f"no price relative beyond period {t}")
        rel = self.data.close[t + 1] / self.data.close[t]
        out = np.empty(rel.shape[0] + 1)
        out[0] = 1.0
        out[1:] = rel
        return out

    @property
    def previous_weights(self) -> np.ndarray:
        """w_{t−1}: the target weights chosen at the previous decision."""
        return self._w_prev_target.copy()

    @property
    def drifted_weights(self) -> np.ndarray:
        """w'_t: previous target drifted by realised price moves."""
        return self._w_drifted.copy()

    @property
    def portfolio_value(self) -> float:
        return self._value

    # ------------------------------------------------------------------
    def step(self, action: np.ndarray) -> StepResult:
        """Rebalance to ``action`` and advance one period.

        ``action`` must be a length-``action_dim`` vector on the
        probability simplex (cash first).
        """
        action = normalize_action(action, self.action_dim)
        if self._t + 1 >= self.data.n_periods:
            raise RuntimeError("episode finished; call reset()")

        report = None
        if self.risk is not None:
            # Project the decision onto the constraint set before any
            # execution pricing — risk limits bound what the book *asks
            # for*, not what the market fills.  A null engine returns
            # the action array itself (bit-identical path).
            report, self._risk_state = self.risk.step(
                self._w_drifted,
                action,
                t=self._t - self._first_decision,
                value=self._value,
                state=self._risk_state,
            )
            action = report.weights

        fill = None
        if self.execution is None:
            executed = action
            mu = transaction_remainder_exact(
                self._w_drifted, action, self.commission, self.commission
            )
        else:
            fill = self.execution.execute(
                self._w_drifted,
                action,
                self._value,
                self.execution.tradable_volume(self.data, self._t),
            )
            executed = fill.weights
            mu = fill.mu
        y = self.price_relative(self._t)
        growth = float(y @ executed)
        reward = float(np.log(mu * growth))
        # The executed trade: distance from the pre-trade drifted
        # weights (the same w'_t that mu was charged on).
        turnover = float(np.abs(executed - self._w_drifted).sum())

        info = {"growth": growth, "turnover": turnover}
        if report is not None:
            info["risk_violated"] = float(report.violated)
            info["risk_locked"] = float(report.locked)
            self.risk_binding_history.append(dict(report.binding))
            self.lockout_history.append(report.locked)
            self.pre_turnover_history.append(report.pre_turnover)
            self.post_turnover_history.append(report.post_turnover)
        if fill is not None:
            # The commission-only benchmark compounds the *requested*
            # trade frictionlessly beyond commission — Perold's paper
            # portfolio, given the realized history to date.
            self._ideal_value *= fill.ideal_mu * float(y @ action)
            info["fill_ratio"] = fill.fill_ratio
            info["slippage_cost"] = fill.slippage_cost
            info["commission_mu"] = fill.commission_mu
            self.fill_ratio_history.append(fill.fill_ratio)
            self.slippage_history.append(fill.slippage_cost)

        self._value *= mu * growth
        self._w_drifted = drifted_weights(executed, y)
        self._w_prev_target = executed.copy()
        self._t += 1

        self.value_history.append(self._value)
        self.reward_history.append(reward)
        self.weight_history.append(executed.copy())
        self.mu_history.append(mu)
        if fill is not None:
            self.ideal_value_history.append(self._ideal_value)

        done = self._t + 1 >= self.data.n_periods
        return StepResult(
            reward=reward,
            portfolio_value=self._value,
            mu=mu,
            price_relatives=y,
            done=done,
            info=info,
        )

    # ------------------------------------------------------------------
    def execution_summary(self) -> Dict[str, float]:
        """Implementation-shortfall report of the episode so far.

        Empty without an execution engine (the commission-only path has
        nothing to report).  ``implementation_shortfall`` is the
        fraction of terminal wealth lost versus the commission-only
        full-fill benchmark of the same decision stream.
        """
        if self.execution is None or not self.slippage_history:
            return {}
        return {
            "implementation_shortfall": implementation_shortfall(
                self.value_history, self.ideal_value_history
            ),
            "mean_fill_ratio": float(np.mean(self.fill_ratio_history)),
            "mean_slippage_cost": float(np.mean(self.slippage_history)),
        }

    # ------------------------------------------------------------------
    def risk_summary(self) -> Dict[str, object]:
        """Constraint-enforcement report of the episode so far.

        Empty without a risk engine (the unconstrained path has nothing
        to report).  ``violation_rate`` is the fraction of decisions on
        which at least one constraint bound; ``binding_counts`` the
        per-constraint attribution of those decisions.
        """
        if self.risk is None or not self.risk_binding_history:
            return {}
        n = len(self.risk_binding_history)
        counts: Dict[str, int] = {}
        violated = 0
        for binding in self.risk_binding_history:
            hit = False
            for name, bound in binding.items():
                if bound:
                    counts[name] = counts.get(name, 0) + 1
                    hit = True
            violated += int(hit)
        summary: Dict[str, object] = {
            "violation_rate": violated / n,
            "lockout_rate": sum(self.lockout_history) / n,
            "mean_pre_turnover": float(np.mean(self.pre_turnover_history)),
            "mean_post_turnover": float(np.mean(self.post_turnover_history)),
            "binding_counts": counts,
            "n_decisions": n,
        }
        if self.risk.has_lockout and self._risk_state is not None:
            summary["lockout_triggers"] = int(self._risk_state.triggers)
        return summary

    # ------------------------------------------------------------------
    def average_log_return(self) -> float:
        """The objective of eq. (1): R = (1/t_f) Σ r_t."""
        if not self.reward_history:
            return 0.0
        return float(np.mean(self.reward_history))

    def periodic_returns(self) -> np.ndarray:
        """Simple per-period portfolio returns (for Sharpe, eq. (16))."""
        values = np.asarray(self.value_history)
        return values[1:] / values[:-1] - 1.0
