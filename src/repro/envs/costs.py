"""Transaction-cost model: the transaction remainder factor μ_t.

Rebalancing from the drifted portfolio ``w'_t`` to the new target
``w_t`` costs commission on every trade, shrinking the portfolio value
by the *transaction remainder factor* μ_t ∈ (0, 1].  Jiang et al. (2017)
— the framework the paper adopts (its eq. (1) uses the same μ_t) — show
μ_t solves the fixed-point equation

.. math::

    \\mu_t = \\frac{1}{1 - c_p w_{t,0}} \\Big[ 1 - c_p w'_{t,0}
            - (c_s + c_p - c_s c_p) \\sum_i (w'_{t,i} - \\mu_t w_{t,i})^+ \\Big]

where ``c_p``/``c_s`` are purchase/sale commission rates and index 0 is
cash.  Two implementations are provided:

* :func:`transaction_remainder_exact` — the fixed-point iteration, used
  in back-tests;
* :func:`transaction_remainder_approx` — the differentiable first-order
  approximation ``μ_t ≈ 1 − c Σ_i |w'_{t,i} − w_{t,i}|`` used inside the
  training loss (also following Jiang et al.).
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ..autograd import Tensor, ensure_tensor

# Poloniex's commission rate at the time of the paper's data: 0.25%.
DEFAULT_COMMISSION = 0.0025
_MAX_ITERATIONS = 64
_TOLERANCE = 1e-12


def _check_weights(w: np.ndarray, name: str) -> np.ndarray:
    w = np.asarray(w, dtype=np.float64)
    if w.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {w.shape}")
    if w.min() < -1e-9:
        raise ValueError(f"{name} has negative entries")
    if abs(w.sum() - 1.0) > 1e-6:
        raise ValueError(f"{name} must sum to 1, sums to {w.sum():.8f}")
    return np.maximum(w, 0.0)


def drifted_weights(w_prev: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Portfolio weights after prices move: w' = (y ⊙ w) / (y · w).

    ``w_prev`` are the weights chosen at the previous step (cash first),
    ``y`` the price relatives (cash component 1).
    """
    w_prev = np.asarray(w_prev, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    growth = y * w_prev
    total = growth.sum()
    if total <= 0:
        raise ValueError("portfolio value collapsed to zero")
    return growth / total


def transaction_remainder_exact(
    w_drifted: np.ndarray,
    w_target: np.ndarray,
    commission_purchase: float = DEFAULT_COMMISSION,
    commission_sale: float = DEFAULT_COMMISSION,
) -> float:
    """Solve the μ_t fixed point (Jiang et al. 2017, eq. (14)).

    Index 0 of both weight vectors is the cash asset.  Converges
    monotonically from the initial guess
    ``μ⁰ = c Σ|w' − w|`` shrinkage; iteration stops at
    ``|μ_{k+1} − μ_k| < 1e-12`` or 64 iterations.
    """
    w_prime = _check_weights(w_drifted, "w_drifted")
    w = _check_weights(w_target, "w_target")
    if w_prime.shape != w.shape:
        raise ValueError("weight vectors must have identical shapes")
    cp, cs = commission_purchase, commission_sale
    if not (0.0 <= cp < 1.0 and 0.0 <= cs < 1.0):
        raise ValueError("commission rates must be in [0, 1)")
    if cp == 0.0 and cs == 0.0:
        return 1.0

    # The fixed point iterates over a handful of scalars; plain Python
    # floats run it an order of magnitude faster than numpy ufuncs on
    # length-N arrays (this sits on the back-test/serving hot path).
    wp = w_prime.tolist()
    wt = w.tolist()
    wp0, wt0 = wp[0], wt[0]
    wp_assets, wt_assets = wp[1:], wt[1:]
    combined = cs + cp - cs * cp
    sell = 0.0
    for a, b in zip(wp_assets, wt_assets):
        d = a - b
        if d > 0.0:
            sell += d
    mu = 1.0 - cp * wt0 - combined * sell
    mu = min(max(mu, 0.0), 1.0)
    denom = 1.0 - cp * wt0
    for _ in range(_MAX_ITERATIONS):
        sell = 0.0
        for a, b in zip(wp_assets, wt_assets):
            d = a - mu * b
            if d > 0.0:
                sell += d
        mu_next = (1.0 - cp * wp0 - combined * sell) / denom
        mu_next = min(max(mu_next, 0.0), 1.0)
        if abs(mu_next - mu) < _TOLERANCE:
            return mu_next
        mu = mu_next
    return mu


def transaction_remainder_approx(
    w_drifted: Union[np.ndarray, Tensor],
    w_target: Union[np.ndarray, Tensor],
    commission: float = DEFAULT_COMMISSION,
) -> Tensor:
    """Differentiable μ_t ≈ 1 − c Σ_i |w'_i − w_i| (cash excluded).

    Accepts batches: inputs of shape ``(batch, n_assets+1)`` return a
    ``(batch,)`` tensor.  Used inside the training objective so gradients
    flow into the action.
    """
    w_prime = ensure_tensor(w_drifted)
    w = ensure_tensor(w_target)
    if w_prime.shape != w.shape:
        raise ValueError("weight vectors must have identical shapes")
    diff = (w_prime - w).abs()
    if diff.ndim == 1:
        turnover = diff[1:].sum()
    else:
        turnover = diff[:, 1:].sum(axis=1)
    mu = 1.0 - commission * turnover
    return mu.clip(1e-8, 1.0)


_MU_CLIP_LOW = 1e-8
_MU_CLIP_HIGH = 1.0


def fused_training_loss(
    actions: np.ndarray,
    w_drifted: np.ndarray,
    y_next: np.ndarray,
    commission: float = DEFAULT_COMMISSION,
) -> Tuple[float, float, np.ndarray]:
    """Forward + analytic backward of the trainer's objective (eq. (1)).

    Computes ``loss = −mean(log(μ_t · (w_t · y_{t+1})))`` with the
    differentiable μ_t of :func:`transaction_remainder_approx`, plus the
    gradient ``∂loss/∂actions`` — all in plain numpy, mirroring the
    closure-graph ops one for one so both the scalar diagnostics and the
    gradient are bit-identical to building the graph and calling
    ``backward()``.

    Returns ``(loss, reward, grad_actions)`` where ``reward`` is the
    mean per-period log return (the trainer's diagnostic).
    """
    a = np.asarray(actions, dtype=np.float64)
    w_prime = np.asarray(w_drifted, dtype=np.float64)
    y = np.asarray(y_next, dtype=np.float64)
    if a.ndim != 2 or a.shape != w_prime.shape or a.shape != y.shape:
        raise ValueError(
            f"expected matching (batch, n_assets+1) arrays, got "
            f"{a.shape}, {w_prime.shape}, {y.shape}"
        )
    batch = a.shape[0]

    # -- forward (same op order as the graph path) ---------------------
    diff_raw = w_prime - a
    diff = np.abs(diff_raw)
    turnover = diff[:, 1:].sum(axis=1)
    mu_raw = 1.0 - turnover * commission
    mu = np.clip(mu_raw, _MU_CLIP_LOW, _MU_CLIP_HIGH)
    growth = (a * y).sum(axis=1)
    portfolio = mu * growth
    log_return = np.log(portfolio)
    loss = float(-(log_return.sum() * (1.0 / batch)))
    reward = float(log_return.mean())

    # -- backward ------------------------------------------------------
    # d(−mean)/d(log_return) then the log: (−1/B) / (μ·growth).
    g_log = (-1.0 * (1.0 / batch)) / portfolio
    g_mu = g_log * growth
    g_growth = g_log * mu
    # Growth branch: growth = Σ_i a_i y_i.
    g_a_growth = np.broadcast_to(g_growth[:, None], a.shape) * y
    # μ branch: clip mask, the 1 − c·turnover chain, |w' − a|.
    clip_mask = (mu_raw >= _MU_CLIP_LOW) & (mu_raw <= _MU_CLIP_HIGH)
    g_turnover = -(g_mu * clip_mask) * commission
    g_diff = np.zeros_like(diff)
    g_diff[:, 1:] = np.broadcast_to(g_turnover[:, None], (batch, a.shape[1] - 1))
    g_a_mu = -(g_diff * np.sign(diff_raw))
    grad_actions = g_a_growth + g_a_mu
    return loss, reward, grad_actions


def fused_training_loss_banked(
    actions: np.ndarray,
    w_drifted: np.ndarray,
    y_next: np.ndarray,
    n_seeds: int,
    commission: float = DEFAULT_COMMISSION,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`fused_training_loss` over a seed-stacked ``(S·B, …)`` batch.

    Every row of the objective and its gradient depends only on that
    row plus the scalar ``1/B`` (the *per-seed* batch size, identical
    across seeds), so the gradient is computed once over the whole
    stack with the same arithmetic as the serial kernel — bit-identical
    per row.  The scalar loss/reward reductions run per seed over
    contiguous row slices (numpy's pairwise summation over the same
    values in the same order as a serial call), so they too match the
    serial trainer exactly.

    Returns ``(losses, rewards, grad_actions)`` where ``losses`` and
    ``rewards`` are ``(S,)`` float64 arrays (seed-blocked row order) and
    ``grad_actions`` is the stacked ``(S·B, n_assets+1)`` gradient.
    """
    a = np.asarray(actions, dtype=np.float64)
    w_prime = np.asarray(w_drifted, dtype=np.float64)
    y = np.asarray(y_next, dtype=np.float64)
    if a.ndim != 2 or a.shape != w_prime.shape or a.shape != y.shape:
        raise ValueError(
            f"expected matching (S·batch, n_assets+1) arrays, got "
            f"{a.shape}, {w_prime.shape}, {y.shape}"
        )
    if n_seeds <= 0 or a.shape[0] % n_seeds:
        raise ValueError(
            f"stacked batch of {a.shape[0]} rows does not split into "
            f"{n_seeds} equal per-seed batches"
        )
    batch = a.shape[0] // n_seeds

    # -- forward (rows are seed-independent; reductions per seed) ------
    diff_raw = w_prime - a
    diff = np.abs(diff_raw)
    turnover = diff[:, 1:].sum(axis=1)
    mu_raw = 1.0 - turnover * commission
    mu = np.clip(mu_raw, _MU_CLIP_LOW, _MU_CLIP_HIGH)
    growth = (a * y).sum(axis=1)
    portfolio = mu * growth
    log_return = np.log(portfolio)
    # Per-seed reductions over the contiguous (S, B) rows: summing the
    # last axis reduces each seed's B values with the same pairwise
    # order as the serial 1-D sum — bit-identical loss/reward scalars.
    log_return_2d = log_return.reshape(n_seeds, batch)
    losses = -(log_return_2d.sum(axis=1) * (1.0 / batch))
    rewards = log_return_2d.mean(axis=1)

    # -- backward (scalar 1/B is per-seed B: identical for every row) --
    g_log = (-1.0 * (1.0 / batch)) / portfolio
    g_mu = g_log * growth
    g_growth = g_log * mu
    g_a_growth = np.broadcast_to(g_growth[:, None], a.shape) * y
    clip_mask = (mu_raw >= _MU_CLIP_LOW) & (mu_raw <= _MU_CLIP_HIGH)
    g_turnover = -(g_mu * clip_mask) * commission
    g_diff = np.zeros_like(diff)
    g_diff[:, 1:] = np.broadcast_to(
        g_turnover[:, None], (a.shape[0], a.shape[1] - 1)
    )
    g_a_mu = -(g_diff * np.sign(diff_raw))
    grad_actions = g_a_growth + g_a_mu
    return losses, rewards, grad_actions
