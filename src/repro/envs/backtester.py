"""The back-testing engine behind :func:`repro.agents.run_backtest`.

``Backtester`` holds the evaluation configuration (observation window,
commission, initial value) once and drives any object implementing the
:class:`~repro.agents.base.Agent` protocol through
:class:`~repro.envs.portfolio.PortfolioEnv`.  Two execution modes:

* :meth:`Backtester.run` — the classical sequential loop: one ``act``
  per decision period.  Every agent supports it.
* :meth:`Backtester.run_many` — back-test one *stateless* agent over
  several panels in lockstep.  At each step the per-panel states are
  concatenated and decided with a single ``decide_batch`` call, so the
  policy network does one batched forward pass per period instead of
  one per panel.  Stateful agents transparently fall back to
  sequential per-panel runs.

The lockstep mode is the same mechanism :class:`repro.serving`
uses to micro-batch concurrent rebalance requests across sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import no_grad
from ..data.market import MarketData
from ..data.splits import ExperimentWindow
from ..metrics import BacktestMetrics, evaluate_backtest
from .costs import DEFAULT_COMMISSION
from .observations import ObservationConfig
from .portfolio import PortfolioEnv

if TYPE_CHECKING:  # avoid a circular import; agents.base imports this module
    from ..agents.base import Agent


@dataclass
class BacktestResult:
    """Trajectory and metrics of one back-test run."""

    agent_name: str
    values: np.ndarray
    weights: np.ndarray
    rewards: np.ndarray
    mus: np.ndarray
    metrics: BacktestMetrics
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def fapv(self) -> float:
        return self.metrics.fapv

    @property
    def sharpe(self) -> float:
        return self.metrics.sharpe

    @property
    def mdd(self) -> float:
        return self.metrics.mdd


def concat_states(parts: Sequence) -> object:
    """Concatenate prepared state batches along the batch axis.

    Understands the three state containers the agent protocol allows:
    numpy arrays (batch-first), dicts of containers (keys must agree),
    and plain lists (the default per-row representation).
    """
    if not parts:
        raise ValueError("concat_states needs at least one state batch")
    first = parts[0]
    if len(parts) == 1:
        return first
    if isinstance(first, np.ndarray):
        return np.concatenate(parts, axis=0)
    if isinstance(first, dict):
        keys = set(first)
        for p in parts[1:]:
            if set(p) != keys:
                raise ValueError(
                    f"state batches disagree on dict keys: {sorted(keys)} "
                    f"vs {sorted(p)}"
                )
        return {key: concat_states([p[key] for p in parts]) for key in first}
    if isinstance(first, list):
        merged: List = []
        for p in parts:
            merged.extend(p)
        return merged
    raise TypeError(
        f"cannot concatenate state batches of type {type(first).__name__}; "
        "prepare_states must return an ndarray, dict, or list"
    )


class Backtester:
    """Reusable back-test engine over :class:`PortfolioEnv`.

    Parameters
    ----------
    observation:
        Window/feature configuration shared with the agents.
    commission:
        Per-side commission rate for the exact μ_t computation.
    initial_value:
        Starting portfolio value p_0.
    execution:
        Optional :class:`~repro.execution.ExecutionEngine`; when set,
        every environment this engine builds prices rebalances against
        market liquidity and results carry implementation-shortfall
        metrics in :attr:`BacktestResult.extra`.
    risk:
        Optional :class:`~repro.risk.RiskEngine`; when set, every
        decision is projected onto the constraint set before execution
        and results carry a constraint-enforcement report under
        ``extra["risk"]``.
    """

    def __init__(
        self,
        observation: Optional[ObservationConfig] = None,
        commission: float = DEFAULT_COMMISSION,
        initial_value: float = 1.0,
        execution=None,
        risk=None,
    ):
        self.observation = observation if observation is not None else ObservationConfig()
        self.commission = float(commission)
        self.initial_value = float(initial_value)
        self.execution = execution
        self.risk = risk

    # ------------------------------------------------------------------
    def make_env(self, data: MarketData) -> PortfolioEnv:
        """A fresh environment over ``data`` with this engine's settings."""
        return PortfolioEnv(
            data,
            observation=self.observation,
            commission=self.commission,
            initial_value=self.initial_value,
            execution=self.execution,
            risk=self.risk,
        )

    def _result(self, agent_name: str, env: PortfolioEnv, data: MarketData) -> BacktestResult:
        metrics = evaluate_backtest(env.value_history, data.period_seconds)
        # Execution keys stay flat (historical shape callers key on);
        # the risk report nests under its own key so the two layers
        # can never collide.
        extra: Dict[str, float] = env.execution_summary()
        risk_summary = env.risk_summary()
        if risk_summary:
            extra["risk"] = risk_summary
        return BacktestResult(
            agent_name=agent_name,
            values=np.asarray(env.value_history),
            weights=np.asarray(env.weight_history),
            rewards=np.asarray(env.reward_history),
            mus=np.asarray(env.mu_history),
            metrics=metrics,
            extra=extra,
        )

    # ------------------------------------------------------------------
    def run(self, agent: "Agent", data: MarketData) -> BacktestResult:
        """Sequential back-test of ``agent`` over ``data``.

        ``act`` runs in whatever grad mode is ambient: the built-in
        agents route their own inference through graph-free kernels,
        while user strategies that adapt online (backprop inside
        ``act``) keep working.
        """
        env = self.make_env(data)
        agent.begin_backtest(data)
        done = False
        while not done:
            action = agent.act(data, env.t, env.previous_weights)
            done = env.step(action).done
        return self._result(agent.name, env, data)

    def run_window(
        self, agent: "Agent", data: MarketData, window: ExperimentWindow
    ) -> Tuple[BacktestResult, MarketData]:
        """Back-test ``agent`` on the *test* slice of ``window``.

        The fold-sliced entry point walk-forward evaluation uses: the
        panel is split with the Table 1 machinery (the test slice keeps
        its one-period anchor so the first decision has a previous
        close) and the agent runs over the test slice only.  Returns the
        result together with the test sub-panel, whose timestamps are
        what per-regime attribution labels.
        """
        _, test = window.split(data)
        return self.run(agent, test), test

    def run_many(
        self,
        agent: "Agent",
        panels: Sequence[MarketData],
        backend=None,
    ) -> List[BacktestResult]:
        """Back-test one agent over several panels, batching decisions.

        For a stateless agent the panels advance in lockstep and each
        period's decisions come from a single ``decide_batch`` forward
        over all still-running panels.  Stateful agents (whose
        ``begin_backtest``/``act`` carry per-run state) fall back to
        sequential :meth:`run` calls — same results, no batching.

        ``backend`` selects a :class:`~repro.backend.Backend` tier.  A
        backend with ``threads > 1`` fans the panels out over a
        threadpool instead of the lockstep batch: each thread runs one
        sequential back-test on its own deep copy of the agent (panels
        are independent, and a copied agent's decisions must be a pure
        function of its weights and the state — true for every built-in
        agent, whose inference mutates nothing).  Results come back in
        panel order and, for deterministic agents, equal the sequential
        ones; ``None``/zero-thread backends keep the exact lockstep
        path of every previous PR.
        """
        import copy

        from ..backend import resolve_backend, thread_map

        panels = list(panels)
        resolved = resolve_backend(backend)
        if resolved.threads > 1 and len(panels) > 1:
            return thread_map(
                lambda panel: self.run(copy.deepcopy(agent), panel),
                panels,
                threads=resolved.threads,
            )
        if not getattr(agent, "stateless", False) or len(panels) <= 1:
            return [self.run(agent, panel) for panel in panels]

        envs = [self.make_env(panel) for panel in panels]
        live = list(range(len(envs)))
        while live:
            parts = [
                agent.prepare_states(
                    panels[i],
                    np.array([envs[i].t]),
                    envs[i].previous_weights[None, :],
                )
                for i in live
            ]
            # decide_batch is pure inference on a stateless agent (the
            # stateless contract: no mutable state, no backprop), so
            # graph construction can be disabled outright.
            with no_grad():
                actions = np.asarray(agent.decide_batch(concat_states(parts)))
            if actions.ndim != 2 or actions.shape[0] != len(live):
                raise ValueError(
                    f"{agent.name}: decide_batch returned shape "
                    f"{actions.shape} for a batch of {len(live)} states"
                )
            still_running = []
            for row, i in enumerate(live):
                if not envs[i].step(actions[row]).done:
                    still_running.append(i)
            live = still_running
        return [
            self._result(agent.name, env, panel)
            for env, panel in zip(envs, panels)
        ]
