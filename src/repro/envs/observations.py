"""State construction for the policy networks.

The paper defines the state as ``{w_{t−1}, close, high, low, open}``
(§II.A).  Two concrete encodings are produced from that definition:

* :func:`price_tensor` — the Jiang et al. EIIE input: a
  ``(features, assets, window)`` tensor of prices normalised by the
  latest close (features = close, high, low — optionally open).
* :func:`sdp_state` — the flat continuous vector the SDP population
  encoder consumes: per-asset *multi-horizon cumulative log returns*
  (a compressed, linear re-parameterisation of the same trailing close
  prices the EIIE tensor contains), the current candle's shape
  (high/low/open relative to close), and the previous portfolio
  weights — every component mapped into ``[-1, 1]`` (the encoder's
  receptive-field range).  Population coding resolves a handful of
  well-scaled continuous dimensions far better than thousands of raw
  price cells, which is the design intent of population-coded SNN
  policies (Tang et al. 2020); the information content is the paper's
  state {w_{t−1}, close, high, low, open} over the lookback.

Both encodings look *only backwards* from the decision period; the
no-look-ahead property is covered by property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from ..data.market import MarketData


@lru_cache(maxsize=128)
def _momentum_scales(
    horizons: Tuple[int, ...], log_scale: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Cached per-config horizon index array and ``(1, H, 1)`` scales."""
    h = np.asarray(horizons, dtype=np.int64)
    return h, (log_scale / np.sqrt(h))[None, :, None]

#: Feature order of the price tensor (open is appended when requested).
PRICE_FEATURES = ("close", "high", "low")


@dataclass(frozen=True)
class ObservationConfig:
    """Shape and scaling of policy observations.

    Parameters
    ----------
    window:
        Number of trailing *samples* visible to the policy.
    stride:
        Periods between consecutive samples: the observation covers
        ``window · stride`` periods of history at ``window`` points.
        A stride > 1 extends the lookback horizon (momentum lives on
        multi-day timescales) without inflating the state dimension.
    include_open:
        Whether the open price is a fourth feature row.
    log_scale:
        Multiplier applied to log price-ratios before clipping into
        ``[-1, 1]``; 30-minute crypto moves are a fraction of a percent,
        so a scale of ~20 spreads them across the encoder range.
    """

    window: int = 30
    stride: int = 1
    include_open: bool = True
    log_scale: float = 20.0
    momentum_horizons: Tuple[int, ...] = (1, 3, 9, 18, 36)

    def __post_init__(self):
        # Normalise sequence input (e.g. JSON round-trips) so configs
        # built from lists compare and hash equal to tuple-built ones.
        object.__setattr__(
            self, "momentum_horizons", tuple(self.momentum_horizons)
        )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")
        if self.log_scale <= 0:
            raise ValueError(f"log_scale must be positive, got {self.log_scale}")
        if not self.momentum_horizons or any(
            h < 1 for h in self.momentum_horizons
        ):
            raise ValueError("momentum_horizons must be positive ints")

    @property
    def lookback_periods(self) -> int:
        """Total trailing periods covered by the observation."""
        return (self.window - 1) * self.stride + 1

    @property
    def num_features(self) -> int:
        return len(PRICE_FEATURES) + (1 if self.include_open else 0)

    def sdp_state_dim(self, n_assets: int) -> int:
        """Flat SDP state dimension: per-asset momentum features over
        ``momentum_horizons``, 3 candle-shape features, plus w_{t−1}
        (cash included)."""
        return n_assets * (len(self.momentum_horizons) + 3) + (n_assets + 1)

    def max_momentum_lookback(self) -> int:
        """Trailing periods the momentum horizons reach back."""
        return max(self.momentum_horizons)

    def sdp_asset_feature_dim(self) -> int:
        """Per-asset feature dimension of the weight-shared SDP state:
        momentum horizons + 3 candle features + own weight + cash weight."""
        return len(self.momentum_horizons) + 5

    def first_decision_index(self) -> int:
        """Earliest period index with a full window of history.

        Covers both the strided price window (EIIE tensor) and the
        longest momentum horizon (SDP state).
        """
        return max(self.lookback_periods - 1, self.max_momentum_lookback())


def _feature_panel(data: MarketData, include_open: bool) -> np.ndarray:
    """Stack OHLC features into shape (features, periods, assets)."""
    return data.feature_panel(include_open)


def price_tensor(
    data: MarketData, t: int, config: ObservationConfig
) -> np.ndarray:
    """EIIE price tensor at decision index ``t``.

    Returns shape ``(features, assets, window)``: prices sampled every
    ``stride`` periods over the lookback ending at ``t``, divided by
    each asset's close at ``t`` (so the last close entry is identically
    1), per Jiang et al.
    """
    return price_tensor_batch(data, np.array([t]), config)[0]


def price_tensor_batch(
    data: MarketData, indices: np.ndarray, config: ObservationConfig
) -> np.ndarray:
    """Vectorised :func:`price_tensor` for many decision indices.

    Returns shape ``(batch, features, assets, window)``.
    """
    indices = np.asarray(indices, dtype=np.int64)
    first = config.first_decision_index()
    if np.any(indices < first) or np.any(indices >= data.n_periods):
        raise IndexError("batch indices out of range for the window")
    panel = _feature_panel(data, config.include_open)  # (F, N, A)
    offsets = np.arange(-(config.window - 1), 1) * config.stride
    gather = indices[:, None] + offsets[None, :]  # (B, W)
    win = panel[:, gather, :]  # (F, B, W, A)
    latest_close = data.close[indices, :]  # (B, A)
    win = win / latest_close[None, :, None, :]
    return np.ascontiguousarray(win.transpose(1, 0, 3, 2))


def sdp_state(
    data: MarketData,
    t: int,
    w_prev: np.ndarray,
    config: ObservationConfig,
) -> np.ndarray:
    """Flat SDP state vector at decision index ``t``.

    Momentum block: per asset and horizon ``h``,
    ``clip(log_scale/√h · ln(close_t / close_{t−h}), −1, 1)`` — the √h
    scaling equalises the variance across horizons so every population
    sees a well-spread input.  Candle block: scaled log high/low/open
    ratios of period ``t``.  Weight block: ``2·w − 1`` maps the simplex
    into ``[-1, 1]``.
    """
    return sdp_state_batch(data, np.array([t]), w_prev[None, :], config)[0]


def sdp_asset_features_batch(
    data: MarketData,
    indices: np.ndarray,
    w_prev: np.ndarray,
    config: ObservationConfig,
) -> np.ndarray:
    """Per-asset feature matrix for the weight-shared SDP network.

    Returns shape ``(batch, n_assets, d)`` where each asset's row holds
    its multi-horizon momentum features, three candle-shape features,
    its own previous weight, and the previous cash weight — everything a
    shared spiking scorer needs, in ``[-1, 1]``.

    ``d == config.sdp_asset_feature_dim()``.
    """
    indices = np.asarray(indices, dtype=np.int64)
    first = config.first_decision_index()
    if np.any(indices < first) or np.any(indices >= data.n_periods):
        raise IndexError("batch indices out of range for the lookback")
    batch = indices.shape[0]
    w_prev = np.asarray(w_prev, dtype=np.float64)
    if w_prev.shape != (batch, data.n_assets + 1):
        raise ValueError(
            f"w_prev must have shape ({batch}, {data.n_assets + 1}), "
            f"got {w_prev.shape}"
        )

    # Fully vectorised over batch, horizon, and asset, gathering from
    # panels of logs cached on the MarketData (the seed re-logged the
    # whole close panel on every call).  Elementwise ops on the same
    # values — bit-identical features to the seed's per-column loop.
    horizons, scale = _momentum_scales(config.momentum_horizons, config.log_scale)
    n_h = horizons.shape[0]
    log_close = data.log_close_panel()
    ret = (
        log_close[indices][:, None, :]
        - log_close[indices[:, None] - horizons[None, :]]
    )  # (B, H, A)
    momentum = np.clip(scale * ret, -1.0, 1.0)

    candle = np.clip(
        config.log_scale * data.log_candle_panel()[indices], -1.0, 1.0
    )  # (B, A, 3)

    out = np.empty((batch, data.n_assets, n_h + 5))
    out[:, :, :n_h] = np.swapaxes(momentum, 1, 2)
    out[:, :, n_h : n_h + 3] = candle
    out[:, :, n_h + 3] = 2.0 * w_prev[:, 1:] - 1.0  # own previous weight
    # Previous cash weight (same for every asset).
    out[:, :, n_h + 4] = 2.0 * w_prev[:, :1] - 1.0
    return out


def sdp_state_batch(
    data: MarketData,
    indices: np.ndarray,
    w_prev: np.ndarray,
    config: ObservationConfig,
) -> np.ndarray:
    """Vectorised :func:`sdp_state`; ``w_prev`` has shape (batch, A+1)."""
    indices = np.asarray(indices, dtype=np.int64)
    first = config.first_decision_index()
    if np.any(indices < first) or np.any(indices >= data.n_periods):
        raise IndexError("batch indices out of range for the lookback")
    batch = indices.shape[0]
    w_prev = np.asarray(w_prev, dtype=np.float64)
    if w_prev.shape != (batch, data.n_assets + 1):
        raise ValueError(
            f"w_prev must have shape ({batch}, {data.n_assets + 1}), "
            f"got {w_prev.shape}"
        )

    # Vectorised over batch × horizon × asset, gathering from cached
    # log panels (bit-identical to per-horizon np.log over the full
    # panel — the log runs once per panel instead of once per call).
    horizons, scale = _momentum_scales(config.momentum_horizons, config.log_scale)
    log_close = data.log_close_panel()
    ret = (
        log_close[indices][:, None, :]
        - log_close[indices[:, None] - horizons[None, :]]
    )  # (B, H, A)
    blocks = [np.clip(scale * ret, -1.0, 1.0).reshape(batch, -1)]
    candle = data.log_candle_panel()[indices]  # (B, A, 3)
    blocks.append(
        np.clip(config.log_scale * candle, -1.0, 1.0).reshape(batch, -1)
    )
    blocks.append(2.0 * w_prev - 1.0)
    return np.concatenate(blocks, axis=1)
