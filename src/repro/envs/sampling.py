"""Geometrically-biased minibatch sampling over training periods.

Jiang et al. sample the *start* of each training minibatch so that
recent periods are exponentially more likely:
``P(start = t_b) ∝ (1 − β)^{N − t_b}`` — markets drift, so the policy
should weight the recent past.  The paper trains SDP in the same
framework (batch size 128, Table 2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..utils.rng import make_rng

DEFAULT_GEOMETRIC_BIAS = 5e-3


class GeometricBatchSampler:
    """Sample blocks of consecutive decision indices.

    Parameters
    ----------
    first_index:
        Earliest valid decision index (needs a full observation window
        and a previous period for the PVM).
    last_index:
        Latest decision index with a next-period price relative
        available (exclusive bound is ``last_index + 1``).
    batch_size:
        Number of consecutive periods per minibatch.
    bias:
        Geometric decay β; larger = more concentrated on the recent end.
    """

    def __init__(
        self,
        first_index: int,
        last_index: int,
        batch_size: int,
        bias: float = DEFAULT_GEOMETRIC_BIAS,
        rng: Optional[np.random.Generator] = None,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if not 0.0 < bias < 1.0:
            raise ValueError(f"bias must be in (0, 1), got {bias}")
        if last_index - first_index + 1 < batch_size:
            raise ValueError(
                f"range [{first_index}, {last_index}] shorter than batch "
                f"size {batch_size}"
            )
        self.first_index = int(first_index)
        self.last_index = int(last_index)
        self.batch_size = int(batch_size)
        self.bias = float(bias)
        self._rng = rng if rng is not None else make_rng(0)
        # Valid start positions: start + batch_size - 1 <= last_index.
        n_starts = self.last_index - self.batch_size + 2 - self.first_index
        exponents = np.arange(n_starts - 1, -1, -1, dtype=np.float64)
        weights = (1.0 - self.bias) ** exponents
        self._probabilities = weights / weights.sum()
        # Precomputed inverse CDF.  ``Generator.choice(n, p=...)`` builds
        # this cumsum, renormalises, and searchsorts one uniform draw on
        # *every* call (plus an O(n) validation of p); doing it once here
        # keeps the sampled index stream bit-identical — same uniforms
        # consumed, same searchsorted — at O(log n) per sample.
        cdf = self._probabilities.cumsum()
        cdf /= cdf[-1]
        self._cdf = cdf

    @classmethod
    def for_seed(
        cls,
        first_index: int,
        last_index: int,
        batch_size: int,
        seed: int,
        bias: float = DEFAULT_GEOMETRIC_BIAS,
    ) -> "GeometricBatchSampler":
        """A sampler whose index stream is a pure function of ``seed``.

        This is the per-seed stream constructor the multi-seed trainer
        and the serial :class:`~repro.agents.trainer.PolicyTrainer`
        share: both build the stream as ``make_rng(seed)``, so a seed's
        draw sequence is identical whether it trains alone or stacked
        with other seeds — the shard spec's seed alone determines the
        stream, with no dependence on which seeds ride along.
        """
        return cls(
            first_index,
            last_index,
            batch_size,
            bias=bias,
            rng=make_rng(seed),
        )

    def sample(self) -> np.ndarray:
        """One minibatch of consecutive decision indices."""
        start = self.first_index + int(
            self._cdf.searchsorted(self._rng.random(), side="right")
        )
        return np.arange(start, start + self.batch_size, dtype=np.int64)

    def start_distribution(self) -> np.ndarray:
        """Probability of each valid start index (diagnostics/tests)."""
        return self._probabilities.copy()
