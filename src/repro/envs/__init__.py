"""Portfolio-management environment substrate (§II.A of the paper).

Price-tensor/flat-state observation builders, the transaction remainder
factor μ_t, the sequential :class:`PortfolioEnv`, Jiang-style
portfolio-vector memory, and the geometric minibatch sampler.
"""

from .backtester import Backtester, BacktestResult, concat_states
from .costs import (
    DEFAULT_COMMISSION,
    drifted_weights,
    transaction_remainder_approx,
    transaction_remainder_exact,
)
from .observations import (
    ObservationConfig,
    PRICE_FEATURES,
    price_tensor,
    price_tensor_batch,
    sdp_state,
    sdp_state_batch,
)
from .portfolio import PortfolioEnv, StepResult, normalize_action
from .pvm import PortfolioVectorMemory
from .sampling import DEFAULT_GEOMETRIC_BIAS, GeometricBatchSampler

__all__ = [
    "Backtester",
    "BacktestResult",
    "DEFAULT_COMMISSION",
    "DEFAULT_GEOMETRIC_BIAS",
    "GeometricBatchSampler",
    "concat_states",
    "ObservationConfig",
    "PRICE_FEATURES",
    "PortfolioEnv",
    "PortfolioVectorMemory",
    "StepResult",
    "drifted_weights",
    "normalize_action",
    "price_tensor",
    "price_tensor_batch",
    "sdp_state",
    "sdp_state_batch",
    "transaction_remainder_approx",
    "transaction_remainder_exact",
]
