"""Performance metrics: fAPV, Sharpe, MDD (eqs. (15)–(17)) and companions."""

from .performance import (
    BacktestMetrics,
    annualized_volatility,
    calmar_ratio,
    evaluate_backtest,
    final_apv,
    hit_rate,
    implementation_shortfall,
    max_drawdown,
    periodic_returns,
    sharpe_ratio,
    sortino_ratio,
    turnover,
)

__all__ = [
    "BacktestMetrics",
    "annualized_volatility",
    "calmar_ratio",
    "evaluate_backtest",
    "final_apv",
    "hit_rate",
    "implementation_shortfall",
    "max_drawdown",
    "periodic_returns",
    "sharpe_ratio",
    "sortino_ratio",
    "turnover",
]
