"""Performance metrics: fAPV, Sharpe, MDD (eqs. (15)–(17)) and companions."""

from .performance import (
    BacktestMetrics,
    annualized_volatility,
    calmar_ratio,
    constraint_violation_rate,
    evaluate_backtest,
    final_apv,
    hit_rate,
    implementation_shortfall,
    max_drawdown,
    max_drawdown_duration,
    periodic_returns,
    sharpe_ratio,
    sortino_ratio,
    turnover,
    turnover_series,
)

__all__ = [
    "BacktestMetrics",
    "annualized_volatility",
    "calmar_ratio",
    "constraint_violation_rate",
    "evaluate_backtest",
    "final_apv",
    "hit_rate",
    "implementation_shortfall",
    "max_drawdown",
    "max_drawdown_duration",
    "periodic_returns",
    "sharpe_ratio",
    "sortino_ratio",
    "turnover",
    "turnover_series",
]
