"""Portfolio-performance metrics (§III.A of the paper).

Implements the paper's three headline metrics —

* **fAPV** (eq. (15)): final accumulated portfolio value ``p_f / p_0``;
* **Sharpe ratio** (eq. (16)): mean excess periodic return over its
  standard deviation (per-period, as the paper reports — the small
  magnitudes in Table 3 are un-annualised 30-minute Sharpe values);
* **MDD** (eq. (17)): maximum drawdown, the largest peak-to-trough loss

— plus the companion statistics any portfolio study needs (Sortino,
Calmar, annualised volatility, turnover, hit rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..data.regimes import SECONDS_PER_YEAR


def _values_array(values: Sequence[float]) -> np.ndarray:
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 1 or v.size < 2:
        raise ValueError("need a 1-D value series with at least two points")
    if np.any(v <= 0):
        raise ValueError("portfolio values must be strictly positive")
    return v


def final_apv(values: Sequence[float]) -> float:
    """fAPV = p_f / p_0 (eq. (15))."""
    v = _values_array(values)
    return float(v[-1] / v[0])


def periodic_returns(values: Sequence[float]) -> np.ndarray:
    """Simple per-period returns ρ_t = p_t / p_{t−1} − 1."""
    v = _values_array(values)
    return v[1:] / v[:-1] - 1.0


def sharpe_ratio(
    values: Sequence[float], risk_free_rate: float = 0.0, ddof: int = 1
) -> float:
    """Per-period Sharpe ratio (eq. (16)).

    ``risk_free_rate`` is the per-period risk-free return p_f of the
    paper's eq. (16) (zero for crypto back-tests, as is standard).
    Returns 0 for a zero-variance series (flat portfolio).
    """
    excess = periodic_returns(values) - risk_free_rate
    std = excess.std(ddof=ddof) if excess.size > 1 else 0.0
    # Treat numerically-flat series (std at float-epsilon scale) as
    # zero-variance: a constant-return portfolio has no defined Sharpe.
    if std <= 1e-12 * max(1.0, float(np.abs(excess).max(initial=0.0))):
        return 0.0
    return float(excess.mean() / std)


def max_drawdown(values: Sequence[float]) -> float:
    """Maximum drawdown (eq. (17)): max over t of (peak_t − p_τ)/peak_t.

    Returned as a positive fraction in [0, 1); 0 for a monotonically
    non-decreasing series.
    """
    v = _values_array(values)
    running_peak = np.maximum.accumulate(v)
    drawdowns = (running_peak - v) / running_peak
    return float(drawdowns.max())


def sortino_ratio(values: Sequence[float], risk_free_rate: float = 0.0) -> float:
    """Mean excess return over downside deviation (0 if no downside)."""
    excess = periodic_returns(values) - risk_free_rate
    downside = excess[excess < 0]
    if downside.size == 0:
        return float("inf") if excess.mean() > 0 else 0.0
    denom = np.sqrt((downside ** 2).mean())
    if denom == 0.0:
        return 0.0
    return float(excess.mean() / denom)


def annualized_volatility(
    values: Sequence[float], period_seconds: int
) -> float:
    """Std of periodic returns scaled to one year."""
    if period_seconds <= 0:
        raise ValueError("period_seconds must be positive")
    rets = periodic_returns(values)
    periods_per_year = SECONDS_PER_YEAR / period_seconds
    return float(rets.std(ddof=1) * np.sqrt(periods_per_year)) if rets.size > 1 else 0.0


def calmar_ratio(values: Sequence[float], period_seconds: int) -> float:
    """Annualised return over maximum drawdown."""
    v = _values_array(values)
    years = (v.size - 1) * period_seconds / SECONDS_PER_YEAR
    if years <= 0:
        return 0.0
    annual_return = (v[-1] / v[0]) ** (1.0 / years) - 1.0
    mdd = max_drawdown(values)
    if mdd == 0.0:
        return float("inf") if annual_return > 0 else 0.0
    return float(annual_return / mdd)


def turnover(weights: np.ndarray) -> float:
    """Average one-step L1 weight change (rebalancing intensity)."""
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] < 2:
        return 0.0
    return float(np.abs(np.diff(w, axis=0)).sum(axis=1).mean())


def turnover_series(weights: np.ndarray) -> np.ndarray:
    """Per-decision L1 weight changes ``‖w_t − w_{t−1}‖₁``.

    The series :func:`turnover` averages — what a
    :class:`~repro.risk.TurnoverBudget` bounds decision by decision, so
    budget compliance is checkable pointwise: under a budget ``τ``
    every entry is ``<= τ`` (up to float epsilon).  A ``(T, N)`` weight
    matrix yields ``T − 1`` entries; fewer than two rows yield an empty
    array.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError(f"weights must be 2-D (T, N), got shape {w.shape}")
    if w.shape[0] < 2:
        return np.empty(0, dtype=np.float64)
    return np.abs(np.diff(w, axis=0)).sum(axis=1)


def max_drawdown_duration(values: Sequence[float]) -> int:
    """Longest stretch of consecutive periods spent below a prior peak.

    The time dimension :func:`max_drawdown` ignores: how long the
    portfolio stayed underwater, in periods.  A new all-time high ends
    the stretch; 0 for a monotonically non-decreasing series.  (A
    :class:`~repro.risk.DrawdownLockout` shows up here as lockout
    periods extending the underwater stretch.)
    """
    v = _values_array(values)
    running_peak = np.maximum.accumulate(v)
    underwater = v < running_peak
    longest = current = 0
    for below in underwater:
        current = current + 1 if below else 0
        longest = max(longest, current)
    return int(longest)


def constraint_violation_rate(binding_history: Sequence[Dict[str, bool]]) -> float:
    """Fraction of decisions on which at least one constraint bound.

    ``binding_history`` is a per-decision sequence of
    ``{constraint_name: bound}`` masks — exactly what
    ``PortfolioEnv.risk_binding_history`` records.  Returns 0.0 for an
    empty history (no decisions, or no risk engine).
    """
    if not binding_history:
        return 0.0
    violated = sum(1 for binding in binding_history if any(binding.values()))
    return violated / len(binding_history)


def hit_rate(values: Sequence[float]) -> float:
    """Fraction of periods with positive return."""
    rets = periodic_returns(values)
    return float((rets > 0).mean())


def implementation_shortfall(
    values: Sequence[float], ideal_values: Sequence[float]
) -> float:
    """Fraction of terminal wealth lost to execution frictions.

    ``values`` is the realized trajectory (impact, partial fills);
    ``ideal_values`` the commission-only benchmark trajectory of the
    *same decision stream* (Perold's paper portfolio).  Returns
    ``1 − (values_f/values_0) / (ideal_f/ideal_0)`` — 0 under ideal
    execution, positive when frictions cost wealth.
    """
    actual = _values_array(values)
    ideal = _values_array(ideal_values)
    if actual.shape != ideal.shape:
        raise ValueError(
            f"trajectories must align, got {actual.shape} vs {ideal.shape}"
        )
    return float(1.0 - (actual[-1] / actual[0]) / (ideal[-1] / ideal[0]))


@dataclass(frozen=True)
class BacktestMetrics:
    """The paper's Table 3 metric triple plus companions."""

    fapv: float
    sharpe: float
    mdd: float
    sortino: float
    calmar: float
    annual_volatility: float
    hit_rate: float
    num_periods: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "fAPV": self.fapv,
            "Sharpe": self.sharpe,
            "MDD": self.mdd,
            "Sortino": self.sortino,
            "Calmar": self.calmar,
            "AnnVol": self.annual_volatility,
            "HitRate": self.hit_rate,
            "Periods": self.num_periods,
        }


def evaluate_backtest(
    values: Sequence[float],
    period_seconds: int,
    risk_free_rate: float = 0.0,
) -> BacktestMetrics:
    """Compute the full metric set for a portfolio value trajectory."""
    v = _values_array(values)
    return BacktestMetrics(
        fapv=final_apv(v),
        sharpe=sharpe_ratio(v, risk_free_rate),
        mdd=max_drawdown(v),
        sortino=sortino_ratio(v, risk_free_rate),
        calmar=calmar_ratio(v, period_seconds),
        annual_volatility=annualized_volatility(v, period_seconds),
        hit_rate=hit_rate(v),
        num_periods=int(v.size - 1),
    )
