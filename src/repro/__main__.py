"""``python -m repro`` — the repo's command-line front door.

Thin argparse over the experiment engine and the existing entry points:

* ``run``          — one Table 3 experiment end to end (+ tables)
* ``sweep``        — a seeds × strategies × windows × costs × execution
  × risk grid on the sharded engine, with checkpoint/resume into an
  artifact store
* ``walkforward``  — rolling train/test evaluation with per-fold and
  per-regime aggregate tables
* ``bench``        — delegate to a benchmark script (default:
  ``benchmarks/bench_throughput.py``)
* ``serve``        — the HTTP portfolio service (demo market, a saved
  service checkpoint, or a strategy out of a sweep artifact store)
* ``obs``          — observability utilities (``obs summarize`` renders
  a JSONL event log as tables)

``run``/``sweep``/``walkforward``/``serve`` accept ``--obs-dir`` (arm
the observability layer, events land in ``<dir>/events.jsonl``) and
``--obs-level`` (event threshold, default ``info``).

Every subcommand is deliberately a few lines of wiring — the behaviour
lives in the library so tests (and users) can drive it directly.
"""

from __future__ import annotations

import argparse
import runpy
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple


def _add_overrides(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", default="standard", help="config profile (paper/standard/quick)"
    )
    parser.add_argument(
        "--train-steps", type=int, default=None, help="override profile train steps"
    )
    parser.add_argument(
        "--batch-size", type=int, default=None, help="override profile batch size"
    )


def _overrides(args: argparse.Namespace) -> dict:
    out = {}
    if args.train_steps is not None:
        out["train_steps"] = args.train_steps
    if getattr(args, "batch_size", None) is not None:
        out["batch_size"] = args.batch_size
    return out


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--obs-dir", default=None,
        help="arm the observability layer; structured events append to "
        "<dir>/events.jsonl and a metrics snapshot lands there on exit "
        "(default: observability off, bit-identical hot paths)",
    )
    parser.add_argument(
        "--obs-level", default="info",
        choices=("debug", "info", "warn", "error"),
        help="event-log threshold when --obs-dir is set (default: info)",
    )


def _configure_obs(args: argparse.Namespace):
    """Install the global obs handle for this command, or leave the
    null object in place when ``--obs-dir`` was not given."""
    if getattr(args, "obs_dir", None) is None:
        return None
    from .obs import configure

    Path(args.obs_dir).mkdir(parents=True, exist_ok=True)
    return configure(args.obs_dir, level=args.obs_level)


def _finish_obs(obs, args: argparse.Namespace) -> None:
    """Write the final metrics snapshot next to the event log."""
    if obs is None:
        return
    import json

    from .obs import set_obs

    path = Path(args.obs_dir) / "snapshot.json"
    path.write_text(json.dumps(obs.snapshot(), indent=2, sort_keys=True))
    obs.close()
    set_obs(None)  # a closed handle must not stay installed
    print(f"obs: events in {Path(args.obs_dir) / 'events.jsonl'}, "
          f"snapshot in {path}")


# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    from .experiments import (
        ArtifactStore,
        make_config,
        render_table3,
        render_table4,
        run_experiment,
        run_power_comparison,
        summarize_shape_check,
    )

    obs = _configure_obs(args)
    config = make_config(args.experiment, args.profile, **_overrides(args))
    result = run_experiment(config, include_baselines=not args.no_baselines)
    print(render_table3(result))
    for line in summarize_shape_check(result):
        print(line)
    if args.power:
        print(render_table4(run_power_comparison(result)))
    if args.store is not None:
        store = ArtifactStore(args.store)
        key = args.key or config.label
        directory = store.save_experiment(key, result)
        print(f"saved experiment to {directory}")
    _finish_obs(obs, args)
    return 0


def _parse_costs(specs: Sequence[str]) -> Tuple:
    from .experiments import CostRegime, DEFAULT_COST_REGIMES

    if not specs:
        return DEFAULT_COST_REGIMES
    regimes = []
    for item in specs:
        if "=" not in item:
            raise SystemExit(
                f"--costs entries look like name=rate (got {item!r})"
            )
        name, rate = item.split("=", 1)
        regimes.append(CostRegime(name, float(rate)))
    return tuple(regimes)


def _parse_execution_spec(item: str, name: str = None):
    """``model[:coef[:cap[:notional]]]`` → :class:`ExecutionRegime`."""
    from .experiments import ExecutionRegime

    parts = item.split(":")
    model = parts[0]
    kwargs = {}
    try:
        if len(parts) > 1:
            kwargs["impact_coef"] = float(parts[1])
        if len(parts) > 2:
            kwargs["max_participation"] = float(parts[2])
        if len(parts) > 3:
            kwargs["portfolio_notional"] = float(parts[3])
    except ValueError:
        raise SystemExit(
            f"execution specs look like model[:coef[:cap[:notional]]] "
            f"(got {item!r})"
        ) from None
    if len(parts) > 4:
        raise SystemExit(
            f"execution specs look like model[:coef[:cap[:notional]]] "
            f"(got {item!r})"
        )
    try:
        return ExecutionRegime(name if name is not None else model, model, **kwargs)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _parse_executions(specs: Sequence[str]) -> Tuple:
    from .experiments import DEFAULT_EXECUTION_REGIMES

    if not specs:
        return DEFAULT_EXECUTION_REGIMES
    regimes = []
    for item in specs:
        if "=" not in item:
            raise SystemExit(
                f"--executions entries look like "
                f"name=model[:coef[:cap[:notional]]] (got {item!r})"
            )
        name, rest = item.split("=", 1)
        regimes.append(_parse_execution_spec(rest, name))
    return tuple(regimes)


def _parse_risk_spec(item: str, name: str = None):
    """``preset`` (none|caps|turnover|lockout|tight) → :class:`RiskRegime`."""
    from .experiments import RiskRegime

    try:
        return RiskRegime(name if name is not None else item, item)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _parse_risks(specs: Sequence[str]) -> Tuple:
    from .experiments import DEFAULT_RISK_REGIMES

    if not specs:
        return DEFAULT_RISK_REGIMES
    regimes = []
    for item in specs:
        if "=" in item:
            name, rest = item.split("=", 1)
            regimes.append(_parse_risk_spec(rest, name))
        else:
            regimes.append(_parse_risk_spec(item))
    return tuple(regimes)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments import (
        DEFAULT_SHARD_RETRY,
        ExperimentSpec,
        SweepRunner,
        render_sweep_table,
    )
    from .resilience import FaultPlan, RetryPolicy

    fault_plan = None
    if args.fault_plan is not None:
        fault_plan = FaultPlan.load(args.fault_plan)
    retry = DEFAULT_SHARD_RETRY
    if args.retries is not None or args.retry_base_delay is not None:
        retry = RetryPolicy(
            max_attempts=(
                args.retries if args.retries is not None
                else DEFAULT_SHARD_RETRY.max_attempts
            ),
            base_delay=(
                args.retry_base_delay if args.retry_base_delay is not None
                else DEFAULT_SHARD_RETRY.base_delay
            ),
            multiplier=DEFAULT_SHARD_RETRY.multiplier,
            max_delay=DEFAULT_SHARD_RETRY.max_delay,
            jitter=DEFAULT_SHARD_RETRY.jitter,
        )

    spec = ExperimentSpec(
        name=args.name,
        profile=args.profile,
        experiments=tuple(args.experiments),
        strategies=tuple(args.strategies),
        seeds=tuple(args.seeds),
        cost_regimes=_parse_costs(args.costs),
        execution_regimes=_parse_executions(args.executions),
        risk_regimes=_parse_risks(args.risks),
        overrides=tuple(_overrides(args).items()),
    )
    obs = _configure_obs(args)
    runner = SweepRunner(
        spec, args.store, max_workers=args.workers,
        retry=retry, fault_plan=fault_plan,
        vectorize_seeds=args.vectorize_seeds, backend=args.backend,
        obs_dir=args.obs_dir, obs_level=args.obs_level,
    )
    result = runner.run(
        parallel=not args.serial,
        max_shards=args.max_shards,
        progress=lambda shard_id, status: print(f"[{status:>7}] {shard_id}"),
    )
    print(
        f"sweep {spec.name!r}: {len(result.ran)} ran, "
        f"{len(result.skipped)} skipped, {len(result.pending)} pending, "
        f"{len(result.quarantined)} quarantined"
    )
    for outcome in result.quarantined:
        print(f"quarantined {outcome.shard_id} after {outcome.attempts} "
              f"attempt(s): {outcome.error}")
    if result.outcomes:
        print(render_sweep_table(result))
    _finish_obs(obs, args)
    return 0 if result.complete else 3


def _cmd_walkforward(args: argparse.Namespace) -> int:
    from .data import MarketGenerator, top_volume_assets, walk_forward_windows
    from .experiments import (
        WalkForwardEvaluator,
        make_config,
        render_regime_table,
        render_walkforward_table,
    )

    obs = _configure_obs(args)
    config = make_config(args.experiment, args.profile, **_overrides(args))
    start = args.start or config.window.train_start
    end = args.end or config.window.test_end
    folds = walk_forward_windows(
        start, end, args.train_days, args.test_days, args.step_days,
        anchored=args.anchored,
    )
    generator = MarketGenerator(seed=config.market_seed)
    full = generator.generate(start, end, config.period_seconds)
    # Universe as of the first hold-out start — no look-ahead into any
    # fold's test span.
    assets = top_volume_assets(full, folds[0].test_start, k=config.num_assets)
    panel = full.select_assets(assets)
    execution = None
    if args.execution is not None:
        execution = _parse_execution_spec(args.execution).build_engine(
            config.commission
        )
    risk = None
    if args.risk is not None:
        risk = _parse_risk_spec(args.risk).build_engine()
    evaluator = WalkForwardEvaluator(
        panel,
        folds,
        config,
        strategies=tuple(args.strategies),
        seeds=tuple(args.seeds),
        fine_tune_steps=args.fine_tune_steps,
        execution=execution,
        risk=risk,
    )
    report = evaluator.run()
    print(render_walkforward_table(report))
    print()
    print(render_regime_table(report))
    _finish_obs(obs, args)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    script = Path(args.script)
    if not script.exists():
        raise SystemExit(
            f"benchmark script {script} not found — run from the repo root "
            "or pass --script"
        )
    argv = [str(script)] + list(args.bench_args)
    old = sys.argv
    sys.argv = argv
    try:
        runpy.run_path(str(script), run_name="__main__")
    except SystemExit as exc:
        return int(exc.code or 0)
    finally:
        sys.argv = old
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .data import MarketGenerator, top_volume_assets
    from .experiments import make_config
    from .resilience import FaultPlan
    from .serving import PortfolioService, ServingSupervisor
    from .serving.http import serve

    obs = _configure_obs(args)
    faults = (
        FaultPlan.load(args.fault_plan) if args.fault_plan is not None else None
    )

    def demo_panel():
        config = make_config(1, args.profile)
        generator = MarketGenerator(seed=config.market_seed)
        panel = generator.generate(
            config.window.train_start, config.window.test_end,
            config.period_seconds,
        )
        assets = top_volume_assets(
            panel, config.window.test_start, k=config.num_assets
        )
        return panel.select_assets(assets)

    supervisor = None
    if args.workers is not None:
        # Supervised multi-worker tier: sessions persist write-through
        # in --state-dir and survive worker crashes and restarts.
        if args.state_dir is None:
            raise SystemExit("--workers requires --state-dir (the session store)")
        if args.checkpoint is not None or args.artifact_store is not None:
            raise SystemExit(
                "--workers serves from --state-dir; --checkpoint/"
                "--artifact-store apply to the in-process mode only"
            )
        supervisor = ServingSupervisor(
            args.state_dir, workers=args.workers, faults=faults
        )
        if "default" not in supervisor.market_names():
            supervisor.register_market("default", demo_panel())
        front = supervisor
    elif args.checkpoint is not None:
        front = PortfolioService.load_checkpoint(args.checkpoint, faults=faults)
    else:
        service = PortfolioService(faults=faults)
        service.register_market("default", demo_panel())
        if args.artifact_store is not None and args.shard is not None:
            service.create_session_from_artifact(
                "artifact", args.artifact_store, args.shard, market="default"
            )
        front = service
    server = serve(front, host=args.host, port=args.port)
    host, port = server.server_address[:2]

    # Graceful drain: SIGTERM/SIGINT stop the accept loop (from a helper
    # thread — server.shutdown() deadlocks when called from the thread
    # running serve_forever), then in-flight work flushes and state is
    # checkpointed before exit, instead of dying mid-batch.
    stopping = threading.Event()

    def _graceful(signum, frame):
        if stopping.is_set():
            return
        stopping.set()
        print(f"received signal {signum}; draining...", flush=True)
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    mode = (
        f"{args.workers} supervised workers" if supervisor is not None
        else "in-process"
    )
    print(f"serving on http://{host}:{port} ({mode}; SIGTERM/Ctrl-C drains)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    if supervisor is not None:
        report = supervisor.drain()
        print(
            f"drained: {report['sessions_checkpointed']} sessions "
            f"checkpointed across {len(report['workers'])} workers "
            f"(exit codes {[w['exit_code'] for w in report['workers']]})"
        )
    elif args.state_dir is not None:
        # In-process mode still honours --state-dir as "where the final
        # checkpoint goes" on shutdown.
        path = front.save_checkpoint(Path(args.state_dir) / "final")
        print(f"final checkpoint saved to {path}")
    _finish_obs(obs, args)
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from .obs import summarize_events

    if args.obs_command == "summarize":
        print(summarize_events(args.events, level=args.level, kind=args.kind))
        return 0
    raise SystemExit(f"unknown obs subcommand {args.obs_command!r}")


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="one Table 3 experiment end to end")
    p_run.add_argument("--experiment", type=int, default=1, choices=(1, 2, 3))
    _add_overrides(p_run)
    p_run.add_argument("--no-baselines", action="store_true")
    p_run.add_argument("--power", action="store_true", help="also print Table 4")
    p_run.add_argument("--store", default=None, help="artifact store root to save into")
    p_run.add_argument("--key", default=None, help="experiment key in the store")
    _add_obs(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser("sweep", help="sharded multi-seed sweep")
    p_sweep.add_argument("--store", required=True, help="artifact store root")
    p_sweep.add_argument("--name", default="sweep")
    _add_overrides(p_sweep)
    p_sweep.add_argument("--experiments", type=int, nargs="+", default=[1])
    p_sweep.add_argument("--strategies", nargs="+", default=["sdp", "jiang"])
    p_sweep.add_argument("--seeds", type=int, nargs="+", default=[7])
    p_sweep.add_argument(
        "--costs", nargs="+", default=[],
        help="cost regimes as name=rate (default: paper=0.0025)",
    )
    p_sweep.add_argument(
        "--executions", nargs="+", default=[],
        help="execution regimes as name=model[:coef[:cap[:notional]]], "
        "model one of zero|linear|sqrt|depth (default: ideal=zero)",
    )
    p_sweep.add_argument(
        "--risks", nargs="+", default=[],
        help="risk regimes as [name=]preset, preset one of "
        "none|caps|turnover|lockout|tight (default: none)",
    )
    p_sweep.add_argument("--workers", type=int, default=None)
    p_sweep.add_argument("--serial", action="store_true", help="no process pool")
    p_sweep.add_argument(
        "--max-shards", type=int, default=None,
        help="run at most N pending shards (resume later)",
    )
    p_sweep.add_argument(
        "--fault-plan", default=None,
        help="JSON fault plan (repro.resilience.FaultPlan) arming "
        "deterministic chaos seams for this sweep",
    )
    p_sweep.add_argument(
        "--retries", type=int, default=None,
        help="per-shard attempts before quarantine (default: 3)",
    )
    p_sweep.add_argument(
        "--retry-base-delay", type=float, default=None,
        help="backoff before the first per-shard retry, seconds",
    )
    p_sweep.add_argument(
        "--vectorize-seeds", action="store_true",
        help="train same-config seed shards as one stacked multi-seed "
        "run (bit-identical per-shard artifacts on the reference "
        "backend); resume works with or without the flag",
    )
    p_sweep.add_argument(
        "--backend", default=None, choices=("reference", "fast"),
        help="numeric backend for vectorized groups (default: "
        "reference, the bit-identical float64 tier; fast = float32 "
        "tapes, tolerance-level deviations)",
    )
    _add_obs(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_wf = sub.add_parser("walkforward", help="rolling-window evaluation")
    p_wf.add_argument("--experiment", type=int, default=1, choices=(1, 2, 3))
    _add_overrides(p_wf)
    p_wf.add_argument("--start", default=None, help="span start (default: window)")
    p_wf.add_argument("--end", default=None, help="span end (default: window)")
    p_wf.add_argument("--train-days", type=int, default=365)
    p_wf.add_argument("--test-days", type=int, default=90)
    p_wf.add_argument("--step-days", type=int, default=0)
    p_wf.add_argument("--anchored", action="store_true")
    p_wf.add_argument("--strategies", nargs="+", default=["sdp", "jiang", "ucrp"])
    p_wf.add_argument("--seeds", type=int, nargs="+", default=[7])
    p_wf.add_argument("--fine-tune-steps", type=int, default=0)
    p_wf.add_argument(
        "--execution", default=None,
        help="execution regime as model[:coef[:cap[:notional]]] "
        "(zero|linear|sqrt|depth; default: ideal fills)",
    )
    p_wf.add_argument(
        "--risk", default=None,
        help="risk regime preset (none|caps|turnover|lockout|tight; "
        "default: unconstrained)",
    )
    _add_obs(p_wf)
    p_wf.set_defaults(func=_cmd_walkforward)

    p_bench = sub.add_parser("bench", help="run a benchmark script")
    p_bench.add_argument(
        "--script", default="benchmarks/bench_throughput.py",
        help="path to the benchmark script",
    )
    # Everything else passes through to the script (parse_known_args).
    p_bench.set_defaults(func=_cmd_bench, bench_args=[])

    p_serve = sub.add_parser("serve", help="HTTP portfolio service")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8000)
    p_serve.add_argument("--profile", default="standard")
    p_serve.add_argument(
        "--checkpoint", default=None, help="service checkpoint directory"
    )
    p_serve.add_argument(
        "--artifact-store", default=None,
        help="sweep artifact store to load a strategy from",
    )
    p_serve.add_argument("--shard", default=None, help="shard id in the store")
    p_serve.add_argument(
        "--workers", type=int, default=None,
        help="run the supervised multi-worker tier with N worker "
        "processes (requires --state-dir; default: in-process)",
    )
    p_serve.add_argument(
        "--state-dir", default=None,
        help="session state store root (supervised mode: write-through "
        "persistence + crash failover; in-process mode: where the final "
        "checkpoint lands on shutdown)",
    )
    p_serve.add_argument(
        "--fault-plan", default=None,
        help="JSON fault plan (repro.resilience.FaultPlan) arming the "
        "serving chaos seams, including supervised worker crashes",
    )
    _add_obs(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_obs = sub.add_parser("obs", help="observability utilities")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_summ = obs_sub.add_parser(
        "summarize", help="render a JSONL event log as tables"
    )
    p_summ.add_argument("events", help="path to an events.jsonl file")
    p_summ.add_argument(
        "--level", default=None,
        choices=("debug", "info", "warn", "error"),
        help="only count events at or above this level",
    )
    p_summ.add_argument(
        "--kind", default=None, help="only count events of this kind"
    )
    p_obs.set_defaults(func=_cmd_obs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args, unknown = parser.parse_known_args(argv)
    if args.command == "bench":
        args.bench_args = list(unknown)
    elif unknown:
        parser.error(f"unrecognized arguments: {' '.join(unknown)}")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
