"""Population decoding of output spikes into a portfolio action (eqs. (8)-(10)).

The last spiking layer is organised as ``N`` populations of
``pop_size`` neurons (N = M + 1 actions: M assets plus cash).  After the
``T``-step unroll:

1. spikes are summed over time and divided by ``T`` → firing rates
   (eq. (8));
2. each population's rates are combined with learned weights
   ``w_d^{(i)}`` and bias ``b_d^{(i)}`` and exponentiated, per
   Algorithm 1: ``tempAction(i) = exp(w_d(i)·rate(i) + b_d(i))``
   (the exponential makes the subsequent normalisation a softmax and
   guarantees non-negative weights);
3. actions are normalised to the probability simplex (eq. (10)).

The decoder is fully differentiable, so the parameter updates of
eq. (12) arise from ordinary backpropagation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..autograd.nn import Module, Parameter


def softmax_head_forward(
    logits: np.ndarray,
    temp: np.ndarray,
    temp_sum: np.ndarray,
    action: np.ndarray,
) -> np.ndarray:
    """Stable softmax into caller buffers (Algorithm 1's exp + eq. (10)).

    The exact op sequence of every graph-path policy head — shift by the
    row max, exponentiate, normalise — written into the supplied
    ``temp``/``temp_sum``/``action`` buffers so the fused forwards stay
    allocation-free and bit-identical.  One implementation for all
    fused heads; pairs with :func:`softmax_head_backward`.
    """
    np.subtract(logits, logits.max(axis=1, keepdims=True), out=temp)
    np.exp(temp, out=temp)
    np.sum(temp, axis=1, keepdims=True, out=temp_sum)
    np.divide(temp, temp_sum, out=action)
    return action


def softmax_head_backward(
    grad_action: np.ndarray, temp: np.ndarray, temp_sum: np.ndarray
) -> np.ndarray:
    """Analytic backward of ``action = temp / temp.sum()`` with
    ``temp = exp(logits − max)``.

    Mirrors the closure-graph ops (div backward, sum backward, exp
    backward; the stability ``max`` is a constant) so the returned
    gradient into the logits is bit-identical to the graph path.  The
    single implementation is shared by every fused policy head (both
    SDP networks and the EIIE baseline) — the bit-identity contract
    must not fork.
    """
    g_temp = grad_action / temp_sum
    g_ts = (-grad_action * temp / (temp_sum ** 2)).sum(axis=(1,), keepdims=True)
    return (g_temp + np.broadcast_to(g_ts, temp.shape)) * temp


@dataclass
class DecoderTape:
    """Recorded activations of one fused decoder forward (for training).

    ``rates`` keeps the population-grouped firing rates the weight
    gradient needs; ``temp``/``temp_sum`` carry the softmax
    numerator/denominator for the analytic softmax backward.
    """

    rates: np.ndarray     # (batch, num_actions, pop_size)
    temp: np.ndarray      # (batch, num_actions) exp(shifted logits)
    temp_sum: np.ndarray  # (batch, 1)
    action: np.ndarray    # (batch, num_actions)

    @classmethod
    def zeros(cls, batch: int, num_actions: int, pop_size: int) -> "DecoderTape":
        return cls(
            rates=np.empty((batch, num_actions, pop_size)),
            temp=np.empty((batch, num_actions)),
            temp_sum=np.empty((batch, 1)),
            action=np.empty((batch, num_actions)),
        )


class PopulationDecoder(Module):
    """Decode summed output-layer spikes into a simplex action vector."""

    def __init__(
        self,
        num_actions: int,
        pop_size: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if num_actions <= 0:
            raise ValueError(f"num_actions must be positive, got {num_actions}")
        if pop_size <= 0:
            raise ValueError(f"pop_size must be positive, got {pop_size}")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_actions = num_actions
        self.pop_size = pop_size
        scale = 1.0 / np.sqrt(pop_size)
        self.weight = Parameter(rng.uniform(-scale, scale, (num_actions, pop_size)))
        self.bias = Parameter(np.zeros(num_actions))

    @property
    def num_neurons(self) -> int:
        """Size of the spiking output layer this decoder consumes."""
        return self.num_actions * self.pop_size

    def forward(self, sum_spikes: Tensor, timesteps: int) -> Tensor:
        """Map summed spikes to an action on the simplex.

        Parameters
        ----------
        sum_spikes:
            Tensor of shape ``(batch, num_actions * pop_size)`` holding
            ``Σ_t o^{(L)}(t)``.
        timesteps:
            The unroll length ``T`` used to convert counts to rates.

        Returns
        -------
        Tensor of shape ``(batch, num_actions)``; rows are non-negative
        and sum to 1 (eq. (10)).
        """
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        batch = sum_spikes.shape[0]
        rates = sum_spikes * (1.0 / timesteps)  # eq. (8)
        rates = rates.reshape(batch, self.num_actions, self.pop_size)
        # eq. (9) / Algorithm 1: logit_i = w_d(i)·rate(i) + b_d(i)
        logits = (rates * self.weight.expand_dims(0)).sum(axis=2) + self.bias
        # Algorithm 1 applies exp(); eq. (10) normalises -> softmax.
        # Subtract the max for numerical stability (invariant under the
        # normalisation).
        shifted = logits - Tensor(logits.data.max(axis=1, keepdims=True))
        temp_action = shifted.exp()
        return temp_action / temp_action.sum(axis=1, keepdims=True)

    def decode_inference(self, sum_spikes: np.ndarray, timesteps: int) -> np.ndarray:
        """Pure-numpy :meth:`forward`, bit-identical, for the fast path.

        Performs the same operations in the same order on the same
        arrays — only without building an autograd graph — so decoded
        actions match the graph path exactly.
        """
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        sum_spikes = np.asarray(sum_spikes, dtype=np.float64)
        batch = sum_spikes.shape[0]
        rates = sum_spikes * (1.0 / timesteps)  # eq. (8)
        rates = rates.reshape(batch, self.num_actions, self.pop_size)
        logits = (rates * self.weight.data[None]).sum(axis=2) + self.bias.data
        shifted = logits - logits.max(axis=1, keepdims=True)
        temp_action = np.exp(shifted)
        return temp_action / temp_action.sum(axis=1, keepdims=True)

    # -- training fast path --------------------------------------------
    def make_train_tape(self, batch: int) -> DecoderTape:
        return DecoderTape.zeros(batch, self.num_actions, self.pop_size)

    def decode_train(
        self, sum_spikes: np.ndarray, timesteps: int, tape: DecoderTape
    ) -> np.ndarray:
        """Fused :meth:`forward` recording onto ``tape`` (bit-identical).

        Same operations in the same order as the graph path; the
        activations the analytic backward needs land in the
        preallocated tape buffers.  Returns ``tape.action``.
        """
        batch = sum_spikes.shape[0]
        rates = tape.rates
        np.multiply(
            sum_spikes.reshape(batch, self.num_actions, self.pop_size),
            1.0 / timesteps,
            out=rates,
        )
        logits = (rates * self.weight.data[None]).sum(axis=2) + self.bias.data
        return softmax_head_forward(logits, tape.temp, tape.temp_sum, tape.action)

    def decode_backward(
        self, grad_action: np.ndarray, timesteps: int, tape: DecoderTape
    ) -> np.ndarray:
        """Analytic backward of :meth:`decode_train`.

        Mirrors the closure-graph backward op for op: softmax (div /
        exp), the per-population logit contraction, and the rate
        scaling.  Accumulates ``weight.grad``/``bias.grad`` and returns
        the gradient into ``sum_spikes``.
        """
        temp, ts, rates = tape.temp, tape.temp_sum, tape.rates
        batch = temp.shape[0]
        g_logits = softmax_head_backward(grad_action, temp, ts)
        g_bias = g_logits.sum(axis=(0,)).reshape(self.num_actions)
        g_exp = np.broadcast_to(
            np.expand_dims(g_logits, 2), rates.shape
        )
        g_rates = g_exp * self.weight.data[None]
        g_weight = np.squeeze(
            (g_exp * rates).sum(axis=(0,), keepdims=True), axis=0
        )
        self.weight._accumulate(g_weight)
        self.bias._accumulate(g_bias)
        g_flat = g_rates.reshape(batch, self.num_actions * self.pop_size)
        return g_flat * (1.0 / timesteps)

    def firing_rates(self, sum_spikes: np.ndarray, timesteps: int) -> np.ndarray:
        """Plain-numpy firing rates grouped by population (diagnostics)."""
        rates = np.asarray(sum_spikes, dtype=np.float64) / timesteps
        return rates.reshape(rates.shape[0], self.num_actions, self.pop_size)
