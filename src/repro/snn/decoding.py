"""Population decoding of output spikes into a portfolio action (eqs. (8)-(10)).

The last spiking layer is organised as ``N`` populations of
``pop_size`` neurons (N = M + 1 actions: M assets plus cash).  After the
``T``-step unroll:

1. spikes are summed over time and divided by ``T`` → firing rates
   (eq. (8));
2. each population's rates are combined with learned weights
   ``w_d^{(i)}`` and bias ``b_d^{(i)}`` and exponentiated, per
   Algorithm 1: ``tempAction(i) = exp(w_d(i)·rate(i) + b_d(i))``
   (the exponential makes the subsequent normalisation a softmax and
   guarantees non-negative weights);
3. actions are normalised to the probability simplex (eq. (10)).

The decoder is fully differentiable, so the parameter updates of
eq. (12) arise from ordinary backpropagation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..autograd.nn import Module, Parameter


class PopulationDecoder(Module):
    """Decode summed output-layer spikes into a simplex action vector."""

    def __init__(
        self,
        num_actions: int,
        pop_size: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if num_actions <= 0:
            raise ValueError(f"num_actions must be positive, got {num_actions}")
        if pop_size <= 0:
            raise ValueError(f"pop_size must be positive, got {pop_size}")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_actions = num_actions
        self.pop_size = pop_size
        scale = 1.0 / np.sqrt(pop_size)
        self.weight = Parameter(rng.uniform(-scale, scale, (num_actions, pop_size)))
        self.bias = Parameter(np.zeros(num_actions))

    @property
    def num_neurons(self) -> int:
        """Size of the spiking output layer this decoder consumes."""
        return self.num_actions * self.pop_size

    def forward(self, sum_spikes: Tensor, timesteps: int) -> Tensor:
        """Map summed spikes to an action on the simplex.

        Parameters
        ----------
        sum_spikes:
            Tensor of shape ``(batch, num_actions * pop_size)`` holding
            ``Σ_t o^{(L)}(t)``.
        timesteps:
            The unroll length ``T`` used to convert counts to rates.

        Returns
        -------
        Tensor of shape ``(batch, num_actions)``; rows are non-negative
        and sum to 1 (eq. (10)).
        """
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        batch = sum_spikes.shape[0]
        rates = sum_spikes * (1.0 / timesteps)  # eq. (8)
        rates = rates.reshape(batch, self.num_actions, self.pop_size)
        # eq. (9) / Algorithm 1: logit_i = w_d(i)·rate(i) + b_d(i)
        logits = (rates * self.weight.expand_dims(0)).sum(axis=2) + self.bias
        # Algorithm 1 applies exp(); eq. (10) normalises -> softmax.
        # Subtract the max for numerical stability (invariant under the
        # normalisation).
        shifted = logits - Tensor(logits.data.max(axis=1, keepdims=True))
        temp_action = shifted.exp()
        return temp_action / temp_action.sum(axis=1, keepdims=True)

    def decode_inference(self, sum_spikes: np.ndarray, timesteps: int) -> np.ndarray:
        """Pure-numpy :meth:`forward`, bit-identical, for the fast path.

        Performs the same operations in the same order on the same
        arrays — only without building an autograd graph — so decoded
        actions match the graph path exactly.
        """
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        sum_spikes = np.asarray(sum_spikes, dtype=np.float64)
        batch = sum_spikes.shape[0]
        rates = sum_spikes * (1.0 / timesteps)  # eq. (8)
        rates = rates.reshape(batch, self.num_actions, self.pop_size)
        logits = (rates * self.weight.data[None]).sum(axis=2) + self.bias.data
        shifted = logits - logits.max(axis=1, keepdims=True)
        temp_action = np.exp(shifted)
        return temp_action / temp_action.sum(axis=1, keepdims=True)

    def firing_rates(self, sum_spikes: np.ndarray, timesteps: int) -> np.ndarray:
        """Plain-numpy firing rates grouped by population (diagnostics)."""
        rates = np.asarray(sum_spikes, dtype=np.float64) / timesteps
        return rates.reshape(rates.shape[0], self.num_actions, self.pop_size)
