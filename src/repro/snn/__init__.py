"""Spiking neural-network substrate: population coding, LIF dynamics, STBP.

Implements §II.B–§II.C of the paper: the Gaussian population encoder
(eqs. (2)–(4)), two-state current-based LIF neurons (eqs. (5)–(7)), the
firing-rate population decoder (eqs. (8)–(10)), the rectangular
surrogate gradient (eq. (11)), and the full SDP network (Algorithm 1).
"""

from .decoding import PopulationDecoder
from .encoding import EncoderConfig, PopulationEncoder
from .layers import SpikingLinear, SpikingStack
from .network import (
    ActivityRecord,
    SDPConfig,
    SDPNetwork,
    SharedSDPConfig,
    SharedSDPNetwork,
)
from .neurons import (
    LIFInferenceState,
    LIFParameters,
    LIFState,
    lif_step,
    lif_step_inference,
    spike_function,
)
from .surrogate import (
    SurrogateGradient,
    arctan,
    fast_sigmoid,
    get_surrogate,
    rectangular,
    triangular,
)

__all__ = [
    "ActivityRecord",
    "EncoderConfig",
    "LIFInferenceState",
    "LIFParameters",
    "LIFState",
    "PopulationDecoder",
    "PopulationEncoder",
    "SDPConfig",
    "SDPNetwork",
    "SharedSDPConfig",
    "SharedSDPNetwork",
    "SpikingLinear",
    "SpikingStack",
    "SurrogateGradient",
    "arctan",
    "fast_sigmoid",
    "get_surrogate",
    "lif_step",
    "lif_step_inference",
    "rectangular",
    "spike_function",
    "triangular",
]
