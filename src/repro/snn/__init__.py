"""Spiking neural-network substrate: population coding, LIF dynamics, STBP.

Implements §II.B–§II.C of the paper: the Gaussian population encoder
(eqs. (2)–(4)), two-state current-based LIF neurons (eqs. (5)–(7)), the
firing-rate population decoder (eqs. (8)–(10)), the rectangular
surrogate gradient (eq. (11)), and the full SDP network (Algorithm 1).
"""

from .decoding import DecoderTape, PopulationDecoder
from .encoding import EncoderConfig, PopulationEncoder
from .layers import SpikingLinear, SpikingLinearTape, SpikingStack
from .network import (
    ActivityRecord,
    SDPConfig,
    SDPNetwork,
    SDPTrainTape,
    SharedSDPConfig,
    SharedSDPNetwork,
    SharedTrainTape,
)
from .neurons import (
    LIFInferenceState,
    LIFParameters,
    LIFState,
    LIFTrainTape,
    lif_backward_step,
    lif_step,
    lif_step_inference,
    lif_step_train,
    spike_function,
)
from .surrogate import (
    SurrogateGradient,
    arctan,
    fast_sigmoid,
    get_surrogate,
    rectangular,
    triangular,
)

__all__ = [
    "ActivityRecord",
    "DecoderTape",
    "EncoderConfig",
    "LIFInferenceState",
    "LIFParameters",
    "LIFState",
    "LIFTrainTape",
    "PopulationDecoder",
    "PopulationEncoder",
    "SDPConfig",
    "SDPNetwork",
    "SDPTrainTape",
    "SharedSDPConfig",
    "SharedSDPNetwork",
    "SharedTrainTape",
    "SpikingLinear",
    "SpikingLinearTape",
    "SpikingStack",
    "SurrogateGradient",
    "arctan",
    "fast_sigmoid",
    "get_surrogate",
    "lif_backward_step",
    "lif_step",
    "lif_step_inference",
    "lif_step_train",
    "rectangular",
    "spike_function",
    "triangular",
]
