"""Seed-banked SNN kernels: S independent networks on one stacked tape.

The fused STBP kernels (:mod:`~repro.snn.neurons`,
:mod:`~repro.snn.layers`, :mod:`~repro.snn.network`) are almost entirely
row-independent — encoder chain, LIF dynamics, surrogate, softmax rows —
so S seeds' batches can ride one static ``(S·B, …)`` tape and every
elementwise kernel steps all seeds per call.  The weighted ops (layer
GEMMs, readout, decoder) see per-seed parameters; this module runs them
as *banks*: one BLAS-batched 3-D ``np.matmul`` over the
``(S, rows, ·)`` stack, with the per-seed weight matrices stored as
contiguous slices of one C-contiguous bank array.

Bit-parity of the batched path
------------------------------

numpy's batched matmul loops the same BLAS GEMM over axis-0 slices, so
when every per-seed operand slice has *the serial operand's memory
layout* — the same values with the same strides — each slice issues
the identical BLAS call the serial kernel would, and the results are
bit-identical.  The banks are arranged to preserve those layouts
exactly: one ``(S, out, in)`` C-contiguous bank per layer whose slices
are the serial ``W`` (used directly for the input gradient ``g @ W``),
with the forward drive ``x @ W.T`` taking the bank's axis-swapped
*view* — the same transposed-view operand the serial ``x @
layer.weight.data.T`` hands BLAS.  Mixing orientations (e.g. a
contiguous copy where the serial op passes a transposed view) changes
the BLAS kernel's memory-access order and flips last-ulp roundings at
some shapes, so operand layout mirroring is load-bearing, not a
convenience.

Elementwise bank ops (bias broadcast, reductions over the per-seed row
axis) reduce the same values in the same order as their serial
counterparts.  The parity suite and the bench ``--check`` gate assert
the end-to-end guarantee: on the ``reference`` (float64) backend every
seed's weight trajectory and PVM are bit-identical to S serial runs.
On the ``fast`` backend the same code runs on float32 tapes and
float32-cast weights — close, not bit-identical; see
:mod:`repro.backend`.

Row layout is seed-blocked: rows ``[s·R, (s+1)·R)`` belong to seed
``s``, so every per-seed view is a contiguous axis-0 slice of a
C-contiguous buffer.

Parameter banking
-----------------

Banks *own* the parameter storage: at construction each per-seed
:class:`~repro.autograd.nn.Parameter`'s ``.data`` is rebound to its
contiguous slice of the float64 bank (same values, same shape — the
live networks keep working for inference, ``state_dict``, and serial
retraining).  Gradients land in matching float64 grad banks, freshly
written every step, and each parameter's ``.grad`` is pointed at its
slice — so a per-seed ``optimizer.step()`` loop still works, while the
:class:`~repro.agents.multiseed.MultiSeedTrainer` can instead update
whole banks with one elementwise op per optimizer state buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..autograd.tensor import Tensor
from .decoding import softmax_head_backward, softmax_head_forward
from .encoding import EncoderBuffers, PopulationEncoder
from .layers import SpikingLinear, SpikingStack
from .network import SDPNetwork, SharedSDPNetwork
from .neurons import LIFTrainTape, lif_backward_step, lif_step_train

__all__ = [
    "ParamBank",
    "BankedLinearTape",
    "SpikingLinearBank",
    "SpikingStackBank",
    "SharedSDPBank",
    "MonolithicSDPBank",
]


# ----------------------------------------------------------------------
# parameter banking
# ----------------------------------------------------------------------

@dataclass
class ParamBank:
    """One logical parameter across S seeds, stored as one array.

    ``bank[s]`` *is* seed ``s``'s live parameter storage (the
    Parameter's ``.data`` is a view into it) and ``grad[s]`` its
    gradient, rewritten every training step.  Both stay float64 on
    every backend tier.
    """

    bank: np.ndarray          # (S,) + param shape, float64
    grad: np.ndarray          # (S,) + param shape, float64
    params: List[Tensor]      # per-seed Parameters; params[s].data is bank[s]


def _bank_params(params: Sequence[Tensor]) -> ParamBank:
    """Stack per-seed parameters into a bank and rebind their storage."""
    params = list(params)
    bank = np.stack([np.asarray(p.data, dtype=np.float64) for p in params])
    for s, p in enumerate(params):
        p.data = bank[s]
    return ParamBank(bank=bank, grad=np.zeros_like(bank), params=params)


def _publish_grads(pb: ParamBank) -> None:
    """Point each seed's ``.grad`` at its freshly written bank slice."""
    for s, p in enumerate(pb.params):
        p.grad = pb.grad[s]


# ----------------------------------------------------------------------
# dtype-parametrised buffer construction
# ----------------------------------------------------------------------

def _lif_tape(timesteps: int, shape, dtype) -> LIFTrainTape:
    """A :class:`LIFTrainTape` with buffers of ``dtype`` (float64 gives
    exactly :meth:`LIFTrainTape.zeros`)."""
    return LIFTrainTape(
        voltage=np.zeros((timesteps + 1,) + tuple(shape), dtype=dtype),
        spikes=np.zeros((timesteps + 1,) + tuple(shape), dtype=dtype),
        current=np.zeros(shape, dtype=dtype),
        drive=np.empty(shape, dtype=dtype),
        scratch=np.empty(shape, dtype=dtype),
        g_voltage=np.empty(shape, dtype=dtype),
        g_current=np.empty(shape, dtype=dtype),
        g_gate=np.empty(shape, dtype=dtype),
        g_spikes=np.empty(shape, dtype=dtype),
        timesteps=timesteps,
    )


def _encoder_buffers(
    encoder: PopulationEncoder, rows: int, timesteps: int, dtype
) -> EncoderBuffers:
    """:meth:`PopulationEncoder.make_buffers` with a selectable dtype."""
    cfg = encoder.config
    neurons = cfg.state_dim * cfg.pop_size
    return EncoderBuffers(
        stim=np.empty((rows, cfg.state_dim, cfg.pop_size), dtype=dtype),
        scaled=np.empty((rows, cfg.state_dim, cfg.pop_size), dtype=dtype),
        voltage=np.empty((rows, neurons), dtype=dtype),
        fired=np.empty((rows, neurons), dtype=bool),
        spikes=np.empty((timesteps, rows, neurons), dtype=dtype),
    )


# ----------------------------------------------------------------------
# layer-level banks
# ----------------------------------------------------------------------

@dataclass
class BankedLinearTape:
    """Stacked-tape analogue of :class:`~repro.snn.layers.SpikingLinearTape`.

    The LIF tape covers all seeds' rows at once; the gradient
    accumulators keep the per-seed ``(in, out)`` GEMM orientation (one
    3-D slot per seed) so the t = T first-write / t < T accumulate
    arithmetic stays the serial kernel's.
    """

    lif: LIFTrainTape            # stacked (T+1, S·R, out)
    g_weight: np.ndarray         # (S, in, out)
    g_weight_step: np.ndarray    # (S, in, out)
    g_bias: np.ndarray           # (S, out)
    g_bias_step: np.ndarray      # (S, out)
    g_input: np.ndarray          # (S·R, in)


class SpikingLinearBank:
    """S same-shaped :class:`SpikingLinear` layers stepped on one tape."""

    def __init__(
        self,
        layers: Sequence[SpikingLinear],
        dtype=np.float64,
        batched: bool = True,
    ):
        layers = list(layers)
        if not layers:
            raise ValueError("bank needs at least one layer")
        first = layers[0]
        for layer in layers[1:]:
            if (
                layer.in_features != first.in_features
                or layer.out_features != first.out_features
            ):
                raise ValueError(
                    "banked layers must share shapes: "
                    f"({first.in_features}, {first.out_features}) vs "
                    f"({layer.in_features}, {layer.out_features})"
                )
            if layer.lif != first.lif:
                raise ValueError("banked layers must share LIF parameters")
        self.layers = layers
        self.n_seeds = len(layers)
        self.in_features = first.in_features
        self.out_features = first.out_features
        self.lif = first.lif
        self.surrogate = first.surrogate
        self.dtype = np.dtype(dtype)
        self.batched = bool(batched)
        if not self.batched and self.dtype != np.float64:
            raise ValueError("the per-seed GEMM loop path is float64-only")

        # Live parameter banks: w (S, out, in) and b (S, out); the
        # layers' Parameters become views into them.  Both GEMM
        # orientations come from this one bank — the input gradient
        # uses it directly, the forward drive its axis-swapped view
        # (mirroring the serial operands' layouts exactly; see the
        # module docstring's bit-parity note).
        self.w = _bank_params([layer.weight for layer in layers])
        self.b = _bank_params([layer.bias for layer in layers])
        if self.dtype != np.float64:
            self._w_cast = np.empty_like(self.w.bank, dtype=self.dtype)
            self._b_cast = np.empty_like(self.b.bank, dtype=self.dtype)
        else:
            self._w_cast = None
            self._b_cast = None

    # -- buffers -------------------------------------------------------
    def make_tape(self, rows_per_seed: int, timesteps: int) -> BankedLinearTape:
        S, R = self.n_seeds, rows_per_seed
        dt = self.dtype
        return BankedLinearTape(
            lif=_lif_tape(timesteps, (S * R, self.out_features), dt),
            g_weight=np.empty((S, self.in_features, self.out_features), dtype=dt),
            g_weight_step=np.empty(
                (S, self.in_features, self.out_features), dtype=dt
            ),
            g_bias=np.empty((S, self.out_features), dtype=dt),
            g_bias_step=np.empty((S, self.out_features), dtype=dt),
            g_input=np.empty((S * R, self.in_features), dtype=dt),
        )

    def refresh(self) -> None:
        """Re-cast the live float64 banks into the fast tier's float32
        GEMM operands (call once per train step, after the optimizer
        moved them).  No-op on the reference tier, which runs GEMMs
        straight off the live banks."""
        if self.dtype != np.float64:
            np.copyto(self._w_cast, self.w.bank, casting="same_kind")
            np.copyto(self._b_cast, self.b.bank, casting="same_kind")

    # GEMM operands for the active tier.
    def _fw_weight(self) -> np.ndarray:   # (S, in, out) transposed view
        w = self.w.bank if self._w_cast is None else self._w_cast
        return w.transpose(0, 2, 1)

    def _bw_weight(self) -> np.ndarray:   # (S, out, in), contiguous
        return self.w.bank if self._w_cast is None else self._w_cast

    def _fw_bias(self) -> np.ndarray:     # (S, 1, out) broadcast view
        b = self.b.bank if self._b_cast is None else self._b_cast
        return b.reshape(self.n_seeds, 1, self.out_features)

    # -- forward -------------------------------------------------------
    def step_train(
        self, input_spikes: np.ndarray, tape: BankedLinearTape, t: int
    ) -> np.ndarray:
        """All seeds' ``x @ W.T + b`` then one stacked LIF update."""
        drive = tape.lif.drive
        S = self.n_seeds
        R = drive.shape[0] // S
        if self.batched:
            x3 = input_spikes.reshape(S, R, self.in_features)
            d3 = drive.reshape(S, R, self.out_features)
            np.matmul(x3, self._fw_weight(), out=d3)
            np.add(d3, self._fw_bias(), out=d3)
        else:
            for s, layer in enumerate(self.layers):
                sl = slice(s * R, (s + 1) * R)
                np.matmul(input_spikes[sl], layer.weight.data.T, out=drive[sl])
                np.add(drive[sl], layer.bias.data, out=drive[sl])
        return lif_step_train(drive, tape.lif, self.lif, t)

    # -- backward ------------------------------------------------------
    def backward_step_train(
        self,
        grad_spikes: np.ndarray,
        input_spikes: np.ndarray,
        tape: BankedLinearTape,
        t: int,
        need_input_grad: bool = True,
    ) -> Optional[np.ndarray]:
        """Stacked LIF backward, then batched GEMM grads — the serial
        t == T first-write / t < T accumulate pattern."""
        g_drive = lif_backward_step(
            grad_spikes, tape.lif, self.lif, self.surrogate, t
        )
        S = self.n_seeds
        R = g_drive.shape[0] // S
        last = t == tape.lif.timesteps
        if self.batched:
            x3 = input_spikes.reshape(S, R, self.in_features)
            g3 = g_drive.reshape(S, R, self.out_features)
            if last:
                np.matmul(x3.transpose(0, 2, 1), g3, out=tape.g_weight)
                np.add.reduce(g3, axis=1, out=tape.g_bias)
            else:
                np.matmul(x3.transpose(0, 2, 1), g3, out=tape.g_weight_step)
                np.add(tape.g_weight, tape.g_weight_step, out=tape.g_weight)
                np.add.reduce(g3, axis=1, out=tape.g_bias_step)
                np.add(tape.g_bias, tape.g_bias_step, out=tape.g_bias)
            if need_input_grad:
                gi3 = tape.g_input.reshape(S, R, self.in_features)
                np.matmul(g3, self._bw_weight(), out=gi3)
                return tape.g_input
            return None
        for s, layer in enumerate(self.layers):
            sl = slice(s * R, (s + 1) * R)
            if last:
                np.matmul(input_spikes[sl].T, g_drive[sl], out=tape.g_weight[s])
                np.add.reduce(g_drive[sl], axis=0, out=tape.g_bias[s])
            else:
                np.matmul(
                    input_spikes[sl].T, g_drive[sl], out=tape.g_weight_step[s]
                )
                np.add(tape.g_weight[s], tape.g_weight_step[s], out=tape.g_weight[s])
                np.add.reduce(g_drive[sl], axis=0, out=tape.g_bias_step[s])
                np.add(tape.g_bias[s], tape.g_bias_step[s], out=tape.g_bias[s])
            if need_input_grad:
                np.matmul(g_drive[sl], layer.weight.data, out=tape.g_input[sl])
        return tape.g_input if need_input_grad else None

    def finalize_train_grads(self, tape: BankedLinearTape) -> None:
        """Flush the tape's accumulated gradients into the grad banks.

        The transpose back to the parameter's ``(out, in)`` orientation
        is an elementwise copy (value-identical to the serial ``.T``
        accumulate), widening float32 tapes to float64 exactly.
        """
        self.w.grad[:] = tape.g_weight.transpose(0, 2, 1)
        self.b.grad[:] = tape.g_bias
        _publish_grads(self.w)
        _publish_grads(self.b)

    def param_banks(self) -> List[ParamBank]:
        return [self.w, self.b]


class SpikingStackBank:
    """Per-layer :class:`SpikingLinearBank` chain over S spiking stacks."""

    def __init__(
        self,
        stacks: Sequence[SpikingStack],
        dtype=np.float64,
        batched: bool = True,
    ):
        stacks = list(stacks)
        depth = len(stacks[0].layers)
        for stack in stacks[1:]:
            if len(stack.layers) != depth:
                raise ValueError("banked stacks must share depth")
        self.banks = [
            SpikingLinearBank(
                [stack.layers[k] for stack in stacks], dtype=dtype, batched=batched
            )
            for k in range(depth)
        ]
        self.n_seeds = len(stacks)
        self.out_features = stacks[0].out_features

    def make_tapes(self, rows_per_seed: int, timesteps: int) -> List[BankedLinearTape]:
        return [bank.make_tape(rows_per_seed, timesteps) for bank in self.banks]

    def refresh(self) -> None:
        for bank in self.banks:
            bank.refresh()

    def step_train(
        self, input_spikes: np.ndarray, tapes: List[BankedLinearTape], t: int
    ) -> np.ndarray:
        spikes = input_spikes
        for bank, tape in zip(self.banks, tapes):
            spikes = bank.step_train(spikes, tape, t)
        return spikes

    def backward(
        self,
        tapes: List[BankedLinearTape],
        spike_trains: np.ndarray,
        grad_sum_spikes: np.ndarray,
        timesteps: int,
    ) -> None:
        """Stacked replay of :func:`~repro.snn.network._stbp_backward` —
        same t = T..1, top-down layer schedule."""
        banks = self.banks
        for t in range(timesteps, 0, -1):
            g = grad_sum_spikes
            for k in range(len(banks) - 1, -1, -1):
                inp = tapes[k - 1].lif.spikes[t] if k > 0 else spike_trains[t - 1]
                g = banks[k].backward_step_train(
                    g, inp, tapes[k], t, need_input_grad=k > 0
                )
        for bank, tape in zip(banks, tapes):
            bank.finalize_train_grads(tape)

    def param_banks(self) -> List[ParamBank]:
        out: List[ParamBank] = []
        for bank in self.banks:
            out.extend(bank.param_banks())
        return out


# ----------------------------------------------------------------------
# network-level bank executors
# ----------------------------------------------------------------------

def _check_bank_networks(networks) -> None:
    if len(networks) < 1:
        raise ValueError("bank needs at least one network")
    first = networks[0]
    for net in networks[1:]:
        if net.config != first.config:
            raise ValueError(
                "banked networks must share a config (only the seed may differ)"
            )
    if first.config.encoder_mode != "deterministic":
        raise ValueError(
            "seed-banked training requires the deterministic encoder: the "
            "probabilistic mode consumes a per-network RNG stream that a "
            "shared stacked encode cannot reproduce"
        )


@dataclass
class _SharedBankTape:
    """Stacked analogue of :class:`~repro.snn.network.SharedTrainTape`."""

    layer_tapes: List[BankedLinearTape]
    encoder: EncoderBuffers
    sum_spikes: np.ndarray   # (S·batch·assets, P)
    rates: np.ndarray        # (S·batch·assets, P)
    scores: np.ndarray       # (S·batch·assets,)
    logits: np.ndarray       # (S·batch, assets + 1)
    temp: np.ndarray         # (S·batch, assets + 1)
    temp_sum: np.ndarray     # (S·batch, 1)
    action: np.ndarray       # (S·batch, assets + 1)
    g_rates: np.ndarray      # (S·batch·assets, P)
    g_sum: np.ndarray        # (S·batch·assets, P)
    batch: int               # per-seed batch
    n_assets: int
    timesteps: int
    spike_trains: Optional[np.ndarray] = None


class SharedSDPBank:
    """S :class:`SharedSDPNetwork` instances trained on one stacked tape.

    Mirrors :meth:`SharedSDPNetwork.policy_forward_fused` /
    :meth:`policy_backward_fused` op for op; the readout head runs as a
    batched matvec over contiguous per-seed weight banks and batched
    per-seed-axis reductions — each seed's slice sees exactly the serial
    arithmetic (same values, same reduction order), so the reference
    tier stays bit-identical.
    """

    def __init__(
        self,
        networks: Sequence[SharedSDPNetwork],
        dtype=np.float64,
        batched: bool = True,
    ):
        networks = list(networks)
        _check_bank_networks(networks)
        self.networks = networks
        self.n_seeds = len(networks)
        self.dtype = np.dtype(dtype)
        self.batched = bool(batched)
        self.stack_bank = SpikingStackBank(
            [net.stack for net in networks], dtype=self.dtype, batched=batched
        )
        self.encoder = networks[0].encoder
        # Head banks: readout weight (S, P), readout bias (S, 1),
        # cash bias (S, 1).
        self.r_w = _bank_params([net.readout_weight for net in networks])
        self.r_b = _bank_params([net.readout_bias for net in networks])
        self.c_b = _bank_params([net.cash_bias for net in networks])
        self._r_w_cast = (
            np.empty_like(self.r_w.bank, dtype=self.dtype)
            if self.dtype != np.float64
            else None
        )
        self._r_b_cast = (
            np.empty_like(self.r_b.bank, dtype=self.dtype)
            if self.dtype != np.float64
            else None
        )
        self._train_tape: Optional[_SharedBankTape] = None

    # -- buffers -------------------------------------------------------
    def _ensure_tape(
        self, batch: int, n_assets: int, timesteps: int
    ) -> _SharedBankTape:
        tape = self._train_tape
        if (
            tape is None
            or tape.batch != batch
            or tape.n_assets != n_assets
            or tape.timesteps != timesteps
        ):
            S = self.n_seeds
            rows = S * batch * n_assets
            P = self.stack_bank.out_features
            dt = self.dtype
            tape = _SharedBankTape(
                layer_tapes=self.stack_bank.make_tapes(batch * n_assets, timesteps),
                encoder=_encoder_buffers(self.encoder, rows, timesteps, dt),
                sum_spikes=np.empty((rows, P), dtype=dt),
                rates=np.empty((rows, P), dtype=dt),
                scores=np.empty(rows, dtype=dt),
                logits=np.empty((S * batch, n_assets + 1), dtype=dt),
                temp=np.empty((S * batch, n_assets + 1), dtype=dt),
                temp_sum=np.empty((S * batch, 1), dtype=dt),
                action=np.empty((S * batch, n_assets + 1), dtype=dt),
                g_rates=np.empty((rows, P), dtype=dt),
                g_sum=np.empty((rows, P), dtype=dt),
                batch=batch,
                n_assets=n_assets,
                timesteps=timesteps,
            )
            self._train_tape = tape
        return tape

    def _refresh(self) -> None:
        self.stack_bank.refresh()
        if self._r_w_cast is not None:
            np.copyto(self._r_w_cast, self.r_w.bank, casting="same_kind")
            np.copyto(self._r_b_cast, self.r_b.bank, casting="same_kind")

    def _readout_w(self) -> np.ndarray:   # (S, P)
        return self.r_w.bank if self._r_w_cast is None else self._r_w_cast

    def _readout_b(self) -> np.ndarray:   # (S, 1)
        return self.r_b.bank if self._r_b_cast is None else self._r_b_cast

    # -- forward -------------------------------------------------------
    def forward(self, stacked_features: np.ndarray) -> np.ndarray:
        """Fused forward over a seed-stacked ``(S·B, A, D)`` feature batch.

        Returns the stacked ``(S·B, A + 1)`` action buffer (rows
        ``[s·B, (s+1)·B)`` belong to seed ``s``), valid until the next
        forward.
        """
        feats = np.asarray(stacked_features, dtype=np.float64)
        S = self.n_seeds
        if feats.ndim != 3 or feats.shape[0] % S:
            raise ValueError(
                f"expected (S·B, assets, features) with S={S}, got {feats.shape}"
            )
        batch = feats.shape[0] // S
        n_assets = feats.shape[1]
        timesteps = self.networks[0].config.timesteps
        tape = self._ensure_tape(batch, n_assets, timesteps)
        flat = feats.reshape(feats.shape[0] * n_assets, feats.shape[2])
        tape.spike_trains = self.encoder.encode_buffered(
            flat, timesteps, tape.encoder
        )
        for lt in tape.layer_tapes:
            lt.lif.begin()
        self._refresh()
        for t in range(1, timesteps + 1):
            spikes = self.stack_bank.step_train(
                tape.spike_trains[t - 1], tape.layer_tapes, t
            )
            if t == 1:
                np.copyto(tape.sum_spikes, spikes)
            else:
                np.add(tape.sum_spikes, spikes, out=tape.sum_spikes)
        np.multiply(tape.sum_spikes, 1.0 / timesteps, out=tape.rates)
        R = batch * n_assets
        P = self.stack_bank.out_features
        # Batched per-seed matvec rates @ w: (S, R, P) @ (S, P, 1).
        rates3 = tape.rates.reshape(S, R, P)
        scores3 = tape.scores.reshape(S, R, 1)
        np.matmul(rates3, self._readout_w().reshape(S, P, 1), out=scores3)
        np.add(scores3, self._readout_b().reshape(S, 1, 1), out=scores3)
        logits3 = tape.logits.reshape(S, batch, n_assets + 1)
        logits3[:, :, 0] = self.c_b.bank
        tape.logits[:, 1:] = tape.scores.reshape(S * batch, n_assets)
        return softmax_head_forward(
            tape.logits, tape.temp, tape.temp_sum, tape.action
        )

    # -- backward ------------------------------------------------------
    def backward(self, grad_action: np.ndarray) -> None:
        tape = self._train_tape
        if tape is None or tape.spike_trains is None:
            raise RuntimeError("forward must be called first")
        grad_action = np.asarray(grad_action, dtype=self.dtype)
        S = self.n_seeds
        batch, n_assets = tape.batch, tape.n_assets
        R = batch * n_assets
        P = self.stack_bank.out_features
        g_logits = softmax_head_backward(grad_action, tape.temp, tape.temp_sum)
        g_scores = g_logits[:, 1:].reshape(S * R)
        # Head gradients, batched over the per-seed row axis.  Each
        # reduction runs over the same values in the same order as the
        # serial per-seed sums; results land in the float64 grad banks
        # (widening float32 exactly, as the serial cast does).
        g_logits3 = g_logits.reshape(S, batch, n_assets + 1)
        self.c_b.grad[:] = g_logits3[:, :, :1].sum(axis=1)
        self.r_b.grad[:, 0] = g_scores.reshape(S, R).sum(axis=1)
        self.r_w.grad[:] = (
            tape.rates * g_scores[:, None]
        ).reshape(S, R, P).sum(axis=1)
        g_scores3 = g_scores.reshape(S, R, 1)
        g_rates3 = tape.g_rates.reshape(S, R, P)
        np.multiply(
            g_scores3, self._readout_w().reshape(S, 1, P), out=g_rates3
        )
        np.multiply(tape.g_rates, 1.0 / tape.timesteps, out=tape.g_sum)
        self.stack_bank.backward(
            tape.layer_tapes, tape.spike_trains, tape.g_sum, tape.timesteps
        )
        _publish_grads(self.r_w)
        _publish_grads(self.r_b)
        _publish_grads(self.c_b)

    def param_banks(self) -> List[ParamBank]:
        return self.stack_bank.param_banks() + [self.r_w, self.r_b, self.c_b]


@dataclass
class _MonolithicBankTape:
    """Stacked analogue of :class:`~repro.snn.network.SDPTrainTape`.

    The decoder head runs in float64 on every tier (as the serial
    decoder does); its buffers are stacked across seeds.
    """

    layer_tapes: List[BankedLinearTape]
    encoder: EncoderBuffers
    sum_spikes: np.ndarray   # (S·batch, N·P)
    rates: np.ndarray        # (S·batch, N, P) float64 decoder rates
    temp: np.ndarray         # (S·batch, N) float64
    temp_sum: np.ndarray     # (S·batch, 1) float64
    action: np.ndarray       # (S·batch, N) float64
    g_sum: np.ndarray        # (S·batch, N·P)
    batch: int               # per-seed batch
    timesteps: int
    spike_trains: Optional[np.ndarray] = None


class MonolithicSDPBank:
    """S :class:`SDPNetwork` instances trained on one stacked tape."""

    def __init__(
        self,
        networks: Sequence[SDPNetwork],
        dtype=np.float64,
        batched: bool = True,
    ):
        networks = list(networks)
        _check_bank_networks(networks)
        self.networks = networks
        self.n_seeds = len(networks)
        self.dtype = np.dtype(dtype)
        self.batched = bool(batched)
        self.stack_bank = SpikingStackBank(
            [net.stack for net in networks], dtype=self.dtype, batched=batched
        )
        self.encoder = networks[0].encoder
        # Decoder head banks: weight (S, N, P), bias (S, N).
        self.d_w = _bank_params([net.decoder.weight for net in networks])
        self.d_b = _bank_params([net.decoder.bias for net in networks])
        self._train_tape: Optional[_MonolithicBankTape] = None

    def _ensure_tape(self, batch: int, timesteps: int) -> _MonolithicBankTape:
        tape = self._train_tape
        if tape is None or tape.batch != batch or tape.timesteps != timesteps:
            S = self.n_seeds
            rows = S * batch
            out = self.stack_bank.out_features
            dt = self.dtype
            decoder = self.networks[0].decoder
            N, P = decoder.num_actions, decoder.pop_size
            tape = _MonolithicBankTape(
                layer_tapes=self.stack_bank.make_tapes(batch, timesteps),
                encoder=_encoder_buffers(self.encoder, rows, timesteps, dt),
                sum_spikes=np.empty((rows, out), dtype=dt),
                rates=np.empty((rows, N, P)),
                temp=np.empty((rows, N)),
                temp_sum=np.empty((rows, 1)),
                action=np.empty((rows, N)),
                g_sum=np.empty((rows, out), dtype=dt),
                batch=batch,
                timesteps=timesteps,
            )
            self._train_tape = tape
        return tape

    def forward(self, stacked_states: np.ndarray) -> np.ndarray:
        """Fused forward over a seed-stacked ``(S·B, D)`` state batch."""
        states = np.asarray(stacked_states, dtype=np.float64)
        S = self.n_seeds
        if states.ndim != 2 or states.shape[0] % S:
            raise ValueError(
                f"expected (S·B, state_dim) with S={S}, got {states.shape}"
            )
        batch = states.shape[0] // S
        timesteps = self.networks[0].config.timesteps
        tape = self._ensure_tape(batch, timesteps)
        tape.spike_trains = self.encoder.encode_buffered(
            states, timesteps, tape.encoder
        )
        for lt in tape.layer_tapes:
            lt.lif.begin()
        self.stack_bank.refresh()
        for t in range(1, timesteps + 1):
            spikes = self.stack_bank.step_train(
                tape.spike_trains[t - 1], tape.layer_tapes, t
            )
            if t == 1:
                np.copyto(tape.sum_spikes, spikes)
            else:
                np.add(tape.sum_spikes, spikes, out=tape.sum_spikes)
        # Stacked decoder forward — the serial decode_train op sequence
        # on seed-stacked rows (per-seed weights broadcast from banks).
        decoder = self.networks[0].decoder
        N, P = decoder.num_actions, decoder.pop_size
        rows = S * batch
        np.multiply(
            tape.sum_spikes.reshape(rows, N, P),
            1.0 / timesteps,
            out=tape.rates,
        )
        rates4 = tape.rates.reshape(S, batch, N, P)
        logits = (rates4 * self.d_w.bank[:, None]).sum(axis=3) + self.d_b.bank[
            :, None, :
        ]
        return softmax_head_forward(
            logits.reshape(rows, N), tape.temp, tape.temp_sum, tape.action
        )

    def backward(self, grad_action: np.ndarray) -> None:
        tape = self._train_tape
        if tape is None or tape.spike_trains is None:
            raise RuntimeError("forward must be called first")
        grad_action = np.asarray(grad_action, dtype=np.float64)
        S, batch = self.n_seeds, tape.batch
        decoder = self.networks[0].decoder
        N, P = decoder.num_actions, decoder.pop_size
        rows = S * batch
        # Stacked decoder backward — the serial decode_backward op
        # sequence; per-seed reductions run over the seed's own rows.
        g_logits = softmax_head_backward(grad_action, tape.temp, tape.temp_sum)
        g_logits3 = g_logits.reshape(S, batch, N)
        self.d_b.grad[:] = g_logits3.sum(axis=1)
        g_exp = np.broadcast_to(g_logits3[..., None], (S, batch, N, P))
        rates4 = tape.rates.reshape(S, batch, N, P)
        g_rates = g_exp * self.d_w.bank[:, None]
        self.d_w.grad[:] = (g_exp * rates4).sum(axis=1)
        g_flat = g_rates.reshape(rows, N * P)
        tape.g_sum[:] = g_flat * (1.0 / tape.timesteps)
        self.stack_bank.backward(
            tape.layer_tapes, tape.spike_trains, tape.g_sum, tape.timesteps
        )
        _publish_grads(self.d_w)
        _publish_grads(self.d_b)

    def param_banks(self) -> List[ParamBank]:
        return self.stack_bank.param_banks() + [self.d_w, self.d_b]
