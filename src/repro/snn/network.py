"""The Spiking Deterministic Policy network (Algorithm 1 / Fig. 1).

``SDPNetwork`` wires together the Gaussian population encoder
(eqs. (2)-(4)), a stack of two-state LIF layers (eqs. (5)-(7)), and the
population decoder (eqs. (8)-(10)).  A forward pass unrolls the network
for ``T`` timesteps and returns a portfolio-weight vector on the
probability simplex.

The network also exposes :meth:`forward_with_activity`, which records
the spike and synaptic-operation counts the Loihi energy model
(:mod:`repro.loihi.energy`) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import Tensor
from ..autograd.nn import Module
from .decoding import (
    DecoderTape,
    PopulationDecoder,
    softmax_head_backward,
    softmax_head_forward,
)
from .encoding import EncoderBuffers, EncoderConfig, PopulationEncoder
from .layers import SpikingLinear, SpikingLinearTape, SpikingStack
from .neurons import LIFParameters
from .surrogate import SurrogateGradient, rectangular

# Table 2: two hidden layers of 128 neurons; T = 5.
DEFAULT_HIDDEN_SIZES = (128, 128)
DEFAULT_TIMESTEPS = 5


@dataclass(frozen=True)
class SDPConfig:
    """Complete hyper-parameter set of the SDP network.

    Defaults follow Table 2 of the paper; encoder/decoder population
    sizes follow the population-coding literature the paper builds on
    (Tang et al. 2020).
    """

    state_dim: int
    num_actions: int
    hidden_sizes: Tuple[int, ...] = DEFAULT_HIDDEN_SIZES
    timesteps: int = DEFAULT_TIMESTEPS
    encoder_pop_size: int = 10
    decoder_pop_size: int = 10
    state_range: Tuple[float, float] = (-1.0, 1.0)
    encoder_mode: str = "deterministic"
    lif: LIFParameters = field(default_factory=LIFParameters)
    surrogate_amplifier: float = 9.0
    surrogate_window: float = 0.4

    def __post_init__(self):
        if self.timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {self.timesteps}")
        if not self.hidden_sizes:
            raise ValueError("at least one hidden layer is required")
        if self.num_actions < 2:
            raise ValueError(
                f"num_actions must be >= 2 (assets + cash), got {self.num_actions}"
            )


@dataclass
class ActivityRecord:
    """Spike/synop counts of one forward pass (for energy modelling).

    Attributes
    ----------
    timesteps:
        Unroll length T.
    batch_size:
        Number of inferences represented.
    input_spikes:
        Total encoder spikes delivered over all steps.
    layer_spikes:
        Total output spikes per spiking layer over all steps.
    synaptic_ops:
        Total synaptic operations (input spike × fan-out) per layer.
    neuron_updates:
        Total neuron-update events (neurons × steps) per layer.
    """

    timesteps: int
    batch_size: int
    input_spikes: float
    layer_spikes: List[float]
    synaptic_ops: List[float]
    neuron_updates: List[float]

    @property
    def total_spikes(self) -> float:
        return self.input_spikes + sum(self.layer_spikes)

    @property
    def total_synops(self) -> float:
        return sum(self.synaptic_ops)

    @property
    def total_neuron_updates(self) -> float:
        return sum(self.neuron_updates)

    def per_inference(self) -> "ActivityRecord":
        """Normalise counts to a single inference."""
        b = max(self.batch_size, 1)
        return ActivityRecord(
            timesteps=self.timesteps,
            batch_size=1,
            input_spikes=self.input_spikes / b,
            layer_spikes=[s / b for s in self.layer_spikes],
            synaptic_ops=[s / b for s in self.synaptic_ops],
            neuron_updates=[n / b for n in self.neuron_updates],
        )


def _stbp_backward(
    stack: SpikingStack,
    layer_tapes: List[SpikingLinearTape],
    spike_trains: np.ndarray,
    grad_sum_spikes: np.ndarray,
    timesteps: int,
) -> None:
    """Replay a recorded unroll backward through time (eq. (13)).

    Walks t = T..1 with layers in top-down order — the same schedule the
    closure graph's reverse-topological traversal produces — handing
    each layer the gradient into its output spikes (the rate-readout
    term for the top layer, the synaptic back-projection for hidden
    ones) and accumulating weight/bias gradients along the way.
    """
    layers = stack.layers
    for t in range(timesteps, 0, -1):
        g = grad_sum_spikes
        for k in range(len(layers) - 1, -1, -1):
            inp = layer_tapes[k - 1].lif.spikes[t] if k > 0 else spike_trains[t - 1]
            g = layers[k].backward_step_train(
                g, inp, layer_tapes[k], t, need_input_grad=k > 0
            )
    for layer, tape in zip(layers, layer_tapes):
        layer.finalize_train_grads(tape)


@dataclass
class SharedTrainTape:
    """Preallocated buffers of one :class:`SharedSDPNetwork` train pass."""

    layer_tapes: List[SpikingLinearTape]
    encoder: EncoderBuffers
    sum_spikes: np.ndarray   # (batch·assets, P)
    rates: np.ndarray        # (batch·assets, P)
    scores: np.ndarray       # (batch·assets,)
    logits: np.ndarray       # (batch, assets + 1)
    temp: np.ndarray         # (batch, assets + 1)
    temp_sum: np.ndarray     # (batch, 1)
    action: np.ndarray       # (batch, assets + 1)
    batch: int
    n_assets: int
    timesteps: int
    spike_trains: Optional[np.ndarray] = None  # (T, batch·assets, N_in)


@dataclass
class SDPTrainTape:
    """Preallocated buffers of one :class:`SDPNetwork` train pass."""

    layer_tapes: List[SpikingLinearTape]
    encoder: EncoderBuffers
    decoder: DecoderTape
    sum_spikes: np.ndarray   # (batch, N·P)
    batch: int
    timesteps: int
    spike_trains: Optional[np.ndarray] = None  # (T, batch, N_in)


@dataclass(frozen=True)
class SharedSDPConfig:
    """Hyper-parameters of the weight-shared SDP variant.

    One spiking scorer (population encoder → LIF stack → rate readout)
    is applied to every asset's feature vector with *shared weights*;
    a learned cash bias joins the per-asset scores and eq. (10)'s
    normalisation (a softmax) produces the portfolio vector.  This is
    Algorithm 1 applied per asset — the spiking dynamics, STBP training,
    and Loihi mapping are identical — but the weight sharing gives the
    gradient 11× the signal per parameter, which is what makes the
    policy trainable at reproduction scale (see DESIGN.md §6).
    """

    feature_dim: int
    hidden_sizes: Tuple[int, ...] = DEFAULT_HIDDEN_SIZES
    timesteps: int = DEFAULT_TIMESTEPS
    encoder_pop_size: int = 10
    output_pop_size: int = 10
    state_range: Tuple[float, float] = (-1.0, 1.0)
    encoder_mode: str = "deterministic"
    lif: LIFParameters = field(default_factory=LIFParameters)
    surrogate_amplifier: float = 9.0
    surrogate_window: float = 0.4

    def __post_init__(self):
        if self.timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {self.timesteps}")
        if not self.hidden_sizes:
            raise ValueError("at least one hidden layer is required")
        if self.feature_dim <= 0:
            raise ValueError(f"feature_dim must be positive, got {self.feature_dim}")


class SharedSDPNetwork(Module):
    """Weight-shared population-coded spiking policy (per-asset scorer)."""

    def __init__(
        self, config: SharedSDPConfig, rng: Optional[np.random.Generator] = None
    ):
        super().__init__()
        from ..autograd import Tensor as _T  # local alias for clarity
        from ..autograd import concatenate
        from ..autograd.nn import Parameter

        rng = rng if rng is not None else np.random.default_rng()
        self.config = config
        encoder_cfg = EncoderConfig(
            state_dim=config.feature_dim,
            pop_size=config.encoder_pop_size,
            v_min=config.state_range[0],
            v_max=config.state_range[1],
            mode=config.encoder_mode,
        )
        self.encoder = PopulationEncoder(encoder_cfg, rng=rng)
        surrogate = rectangular(config.surrogate_amplifier, config.surrogate_window)
        sizes = (
            [encoder_cfg.num_neurons]
            + list(config.hidden_sizes)
            + [config.output_pop_size]
        )
        layers = [
            SpikingLinear(sizes[i], sizes[i + 1], lif=config.lif,
                          surrogate=surrogate, rng=rng)
            for i in range(len(sizes) - 1)
        ]
        self.stack = SpikingStack(layers)
        scale = 1.0 / np.sqrt(config.output_pop_size)
        self.readout_weight = Parameter(
            rng.uniform(-scale, scale, config.output_pop_size)
        )
        self.readout_bias = Parameter(np.zeros(1))
        self.cash_bias = Parameter(np.zeros(1))

    # ------------------------------------------------------------------
    @property
    def timesteps(self) -> int:
        return self.config.timesteps

    def layer_sizes(self) -> List[Tuple[int, int]]:
        return [(l.in_features, l.out_features) for l in self.stack.layers]

    # ------------------------------------------------------------------
    def forward(
        self, asset_features: np.ndarray, timesteps: Optional[int] = None
    ) -> "Tensor":
        """Portfolio weights from per-asset features.

        Parameters
        ----------
        asset_features:
            ``(batch, n_assets, feature_dim)`` array.

        Returns
        -------
        ``(batch, n_assets + 1)`` tensor on the simplex, cash first.
        """
        action, _ = self._run(asset_features, timesteps, record=False)
        return action

    def forward_with_activity(
        self, asset_features: np.ndarray, timesteps: Optional[int] = None
    ) -> Tuple["Tensor", ActivityRecord]:
        return self._run(asset_features, timesteps, record=True)

    def forward_inference(
        self, asset_features: np.ndarray, timesteps: Optional[int] = None
    ) -> np.ndarray:
        """Graph-free fused forward; bit-identical to :meth:`forward`.

        Runs the whole ``T``-step unroll on preallocated, in-place
        updated LIF buffers and returns a plain ``(batch, n_assets + 1)``
        ndarray — no autograd nodes are created anywhere.
        """
        action, _ = self._run_inference(asset_features, timesteps, record=False)
        return action

    def forward_inference_with_activity(
        self, asset_features: np.ndarray, timesteps: Optional[int] = None
    ) -> Tuple[np.ndarray, ActivityRecord]:
        """Fused forward that also returns the Loihi activity counts."""
        return self._run_inference(asset_features, timesteps, record=True)

    # -- training fast path --------------------------------------------
    def _ensure_train_tape(
        self, batch: int, n_assets: int, timesteps: int
    ) -> SharedTrainTape:
        tape = getattr(self, "_train_tape", None)
        if (
            tape is None
            or tape.batch != batch
            or tape.n_assets != n_assets
            or tape.timesteps != timesteps
        ):
            rows = batch * n_assets
            tape = SharedTrainTape(
                layer_tapes=self.stack.make_train_tapes(rows, timesteps),
                encoder=self.encoder.make_buffers(rows, timesteps),
                sum_spikes=np.empty((rows, self.stack.out_features)),
                rates=np.empty((rows, self.stack.out_features)),
                scores=np.empty(rows),
                logits=np.empty((batch, n_assets + 1)),
                temp=np.empty((batch, n_assets + 1)),
                temp_sum=np.empty((batch, 1)),
                action=np.empty((batch, n_assets + 1)),
                batch=batch,
                n_assets=n_assets,
                timesteps=timesteps,
            )
            self._train_tape = tape
        return tape

    def policy_forward_fused(
        self, asset_features: np.ndarray, timesteps: Optional[int] = None
    ) -> np.ndarray:
        """Recorded fused forward for training; bit-identical to
        :meth:`forward`.

        Runs the ``T``-step unroll on a compact static tape (per-layer
        ``v``/``o`` slices plus the softmax head activations) held in
        preallocated buffers that are reused across train steps, so the
        hot training loop allocates almost nothing.  Call
        :meth:`policy_backward_fused` afterwards — before any parameter
        update — to accumulate gradients.  The returned action array is
        a tape buffer, valid until the next fused forward.  Not
        thread-safe: one trainer per network instance.
        """
        timesteps = timesteps if timesteps is not None else self.config.timesteps
        feats = np.asarray(asset_features, dtype=np.float64)
        if feats.ndim == 2:
            feats = feats[None]
        batch, n_assets, d = feats.shape
        if d != self.config.feature_dim:
            raise ValueError(
                f"expected feature_dim={self.config.feature_dim}, got {d}"
            )
        tape = self._ensure_train_tape(batch, n_assets, timesteps)
        flat = feats.reshape(batch * n_assets, d)
        tape.spike_trains = self.encoder.encode_buffered(
            flat, timesteps, tape.encoder
        )
        for lt in tape.layer_tapes:
            lt.lif.begin()
        for t in range(1, timesteps + 1):
            spikes = self.stack.step_train(tape.spike_trains[t - 1], tape.layer_tapes, t)
            if t == 1:
                np.copyto(tape.sum_spikes, spikes)
            else:
                np.add(tape.sum_spikes, spikes, out=tape.sum_spikes)
        np.multiply(tape.sum_spikes, 1.0 / timesteps, out=tape.rates)
        np.matmul(tape.rates, self.readout_weight.data, out=tape.scores)
        np.add(tape.scores, self.readout_bias.data, out=tape.scores)
        # Concatenate [cash | per-asset scores]; the cash column is the
        # learned bias broadcast over the batch (bias · 1 ≡ bias).
        tape.logits[:, 0] = self.cash_bias.data[0]
        tape.logits[:, 1:] = tape.scores.reshape(batch, n_assets)
        return softmax_head_forward(
            tape.logits, tape.temp, tape.temp_sum, tape.action
        )

    def policy_backward_fused(self, grad_action: np.ndarray) -> None:
        """Analytic backward of :meth:`policy_forward_fused`.

        Replays the recorded tape backward — softmax head, readout, then
        BPTT through the spiking stack — mirroring every closure-graph
        op, and accumulates bit-identical gradients into the network's
        parameters.  Must run against the parameters the forward saw.
        """
        tape: Optional[SharedTrainTape] = getattr(self, "_train_tape", None)
        if tape is None or tape.spike_trains is None:
            raise RuntimeError("policy_forward_fused must be called first")
        grad_action = np.asarray(grad_action, dtype=np.float64)
        rows = tape.batch * tape.n_assets
        g_logits = softmax_head_backward(grad_action, tape.temp, tape.temp_sum)
        g_cash_bias = g_logits[:, :1].sum(axis=(0,), keepdims=True).reshape(1)
        g_scores = g_logits[:, 1:].reshape(rows)
        g_readout_bias = g_scores.sum(axis=(0,), keepdims=True).reshape(1)
        g_readout_weight = (tape.rates * g_scores[:, None]).sum(axis=(0,))
        g_rates = g_scores[:, None] * self.readout_weight.data
        g_sum_spikes = g_rates * (1.0 / tape.timesteps)
        _stbp_backward(
            self.stack, tape.layer_tapes, tape.spike_trains,
            g_sum_spikes, tape.timesteps,
        )
        self.readout_weight._accumulate(g_readout_weight)
        self.readout_bias._accumulate(g_readout_bias)
        self.cash_bias._accumulate(g_cash_bias)

    def _run(self, asset_features, timesteps, record):
        from ..autograd import Tensor as _T
        from ..autograd import concatenate

        timesteps = timesteps if timesteps is not None else self.config.timesteps
        feats = np.asarray(asset_features, dtype=np.float64)
        if feats.ndim == 2:
            feats = feats[None]
        batch, n_assets, d = feats.shape
        if d != self.config.feature_dim:
            raise ValueError(
                f"expected feature_dim={self.config.feature_dim}, got {d}"
            )
        flat = feats.reshape(batch * n_assets, d)
        spike_trains = self.encoder.encode(flat, timesteps)
        self.stack.reset(batch * n_assets)

        sum_spikes = None
        layer_spikes = [0.0] * len(self.stack.layers)
        synaptic_ops = [0.0] * len(self.stack.layers)
        input_total = 0.0
        for t in range(timesteps):
            spikes = _T(spike_trains[t])
            if record:
                input_total += float(spike_trains[t].sum())
            for k, layer in enumerate(self.stack.layers):
                if record:
                    synaptic_ops[k] += float(spikes.data.sum()) * layer.out_features
                spikes = layer.step(spikes)
                if record:
                    layer_spikes[k] += float(spikes.data.sum())
            sum_spikes = spikes if sum_spikes is None else sum_spikes + spikes

        rates = sum_spikes * (1.0 / timesteps)
        scores = rates @ self.readout_weight + self.readout_bias
        scores = scores.reshape(batch, n_assets)
        cash = self.cash_bias.reshape(1, 1) * _T(np.ones((batch, 1)))
        logits = concatenate([cash, scores], axis=1)
        shifted = logits - _T(logits.data.max(axis=1, keepdims=True))
        temp = shifted.exp()
        action = temp / temp.sum(axis=1, keepdims=True)

        activity = None
        if record:
            activity = ActivityRecord(
                timesteps=timesteps,
                batch_size=batch,  # one *inference* covers all assets
                input_spikes=input_total,
                layer_spikes=layer_spikes,
                synaptic_ops=synaptic_ops,
                neuron_updates=[
                    float(l.out_features * timesteps * batch * n_assets)
                    for l in self.stack.layers
                ],
            )
        return action, activity

    def _run_inference(
        self, asset_features, timesteps, record
    ) -> Tuple[np.ndarray, Optional[ActivityRecord]]:
        timesteps = timesteps if timesteps is not None else self.config.timesteps
        feats = np.asarray(asset_features, dtype=np.float64)
        if feats.ndim == 2:
            feats = feats[None]
        batch, n_assets, d = feats.shape
        if d != self.config.feature_dim:
            raise ValueError(
                f"expected feature_dim={self.config.feature_dim}, got {d}"
            )
        flat = feats.reshape(batch * n_assets, d)
        spike_trains = self.encoder.encode(flat, timesteps)  # (T, B·A, N)
        states = self.stack.make_inference_states(batch * n_assets)

        sum_spikes = np.zeros((batch * n_assets, self.stack.out_features))
        layer_spikes = [0.0] * len(self.stack.layers)
        synaptic_ops = [0.0] * len(self.stack.layers)
        input_total = 0.0
        for t in range(timesteps):
            spikes = spike_trains[t]
            if record:
                input_total += float(spikes.sum())
            for k, (layer, state) in enumerate(zip(self.stack.layers, states)):
                if record:
                    synaptic_ops[k] += float(spikes.sum()) * layer.out_features
                spikes = layer.step_inference(spikes, state)
                if record:
                    layer_spikes[k] += float(spikes.sum())
            sum_spikes += spikes

        rates = sum_spikes * (1.0 / timesteps)
        scores = rates @ self.readout_weight.data + self.readout_bias.data
        scores = scores.reshape(batch, n_assets)
        cash = self.cash_bias.data.reshape(1, 1) * np.ones((batch, 1))
        logits = np.concatenate([cash, scores], axis=1)
        shifted = logits - logits.max(axis=1, keepdims=True)
        temp = np.exp(shifted)
        action = temp / temp.sum(axis=1, keepdims=True)

        activity = None
        if record:
            activity = ActivityRecord(
                timesteps=timesteps,
                batch_size=batch,  # one *inference* covers all assets
                input_spikes=input_total,
                layer_spikes=layer_spikes,
                synaptic_ops=synaptic_ops,
                neuron_updates=[
                    float(l.out_features * timesteps * batch * n_assets)
                    for l in self.stack.layers
                ],
            )
        return action, activity

    def act(self, asset_features: np.ndarray, timesteps: Optional[int] = None) -> np.ndarray:
        action = self.forward_inference(np.asarray(asset_features)[None], timesteps)
        return action[0]


class SDPNetwork(Module):
    """Population-coded spiking policy network (the paper's SDP)."""

    def __init__(self, config: SDPConfig, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.config = config

        encoder_cfg = EncoderConfig(
            state_dim=config.state_dim,
            pop_size=config.encoder_pop_size,
            v_min=config.state_range[0],
            v_max=config.state_range[1],
            mode=config.encoder_mode,
        )
        self.encoder = PopulationEncoder(encoder_cfg, rng=rng)
        self.decoder = PopulationDecoder(
            config.num_actions, config.decoder_pop_size, rng=rng
        )

        surrogate = rectangular(config.surrogate_amplifier, config.surrogate_window)
        sizes = (
            [encoder_cfg.num_neurons]
            + list(config.hidden_sizes)
            + [self.decoder.num_neurons]
        )
        layers = [
            SpikingLinear(
                sizes[i],
                sizes[i + 1],
                lif=config.lif,
                surrogate=surrogate,
                rng=rng,
            )
            for i in range(len(sizes) - 1)
        ]
        self.stack = SpikingStack(layers)

    # ------------------------------------------------------------------
    @property
    def timesteps(self) -> int:
        return self.config.timesteps

    def layer_sizes(self) -> List[Tuple[int, int]]:
        """(in, out) of each spiking layer, for quantisation/energy models."""
        return [(l.in_features, l.out_features) for l in self.stack.layers]

    # ------------------------------------------------------------------
    def forward(self, states: np.ndarray, timesteps: Optional[int] = None) -> Tensor:
        """Compute portfolio weights for a batch of states (Algorithm 1).

        Parameters
        ----------
        states:
            ``(batch, state_dim)`` array of continuous observations.
        timesteps:
            Optional override of the configured T (used by the T-sweep
            ablation bench).

        Returns
        -------
        ``(batch, num_actions)`` tensor on the probability simplex.
        """
        action, _ = self._run(states, timesteps, record=False)
        return action

    def forward_with_activity(
        self, states: np.ndarray, timesteps: Optional[int] = None
    ) -> Tuple[Tensor, ActivityRecord]:
        """Forward pass that also returns spike/synop counts."""
        return self._run(states, timesteps, record=True)

    def forward_inference(
        self, states: np.ndarray, timesteps: Optional[int] = None
    ) -> np.ndarray:
        """Graph-free fused forward; bit-identical to :meth:`forward`.

        The ``T``-step unroll runs on preallocated, in-place-updated
        ``c``/``v``/``o`` buffers and returns a plain
        ``(batch, num_actions)`` ndarray — no autograd nodes anywhere.
        """
        action, _ = self._run_inference(states, timesteps, record=False)
        return action

    def forward_inference_with_activity(
        self, states: np.ndarray, timesteps: Optional[int] = None
    ) -> Tuple[np.ndarray, ActivityRecord]:
        """Fused forward that also returns the Loihi activity counts."""
        return self._run_inference(states, timesteps, record=True)

    # -- training fast path --------------------------------------------
    def _ensure_train_tape(self, batch: int, timesteps: int) -> SDPTrainTape:
        tape = getattr(self, "_train_tape", None)
        if tape is None or tape.batch != batch or tape.timesteps != timesteps:
            tape = SDPTrainTape(
                layer_tapes=self.stack.make_train_tapes(batch, timesteps),
                encoder=self.encoder.make_buffers(batch, timesteps),
                decoder=self.decoder.make_train_tape(batch),
                sum_spikes=np.empty((batch, self.stack.out_features)),
                batch=batch,
                timesteps=timesteps,
            )
            self._train_tape = tape
        return tape

    def policy_forward_fused(
        self, states: np.ndarray, timesteps: Optional[int] = None
    ) -> np.ndarray:
        """Recorded fused forward for training; bit-identical to
        :meth:`forward` (see :meth:`SharedSDPNetwork.policy_forward_fused`
        for the contract — tape reuse, buffer lifetime, thread-safety).
        """
        timesteps = timesteps if timesteps is not None else self.config.timesteps
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        batch = states.shape[0]
        tape = self._ensure_train_tape(batch, timesteps)
        tape.spike_trains = self.encoder.encode_buffered(
            states, timesteps, tape.encoder
        )
        for lt in tape.layer_tapes:
            lt.lif.begin()
        for t in range(1, timesteps + 1):
            spikes = self.stack.step_train(tape.spike_trains[t - 1], tape.layer_tapes, t)
            if t == 1:
                np.copyto(tape.sum_spikes, spikes)
            else:
                np.add(tape.sum_spikes, spikes, out=tape.sum_spikes)
        return self.decoder.decode_train(tape.sum_spikes, timesteps, tape.decoder)

    def policy_backward_fused(self, grad_action: np.ndarray) -> None:
        """Analytic backward of :meth:`policy_forward_fused`; accumulates
        gradients bit-identical to the closure-graph path."""
        tape: Optional[SDPTrainTape] = getattr(self, "_train_tape", None)
        if tape is None or tape.spike_trains is None:
            raise RuntimeError("policy_forward_fused must be called first")
        grad_action = np.asarray(grad_action, dtype=np.float64)
        g_sum_spikes = self.decoder.decode_backward(
            grad_action, tape.timesteps, tape.decoder
        )
        _stbp_backward(
            self.stack, tape.layer_tapes, tape.spike_trains,
            g_sum_spikes, tape.timesteps,
        )

    # ------------------------------------------------------------------
    def _run(
        self, states: np.ndarray, timesteps: Optional[int], record: bool
    ) -> Tuple[Tensor, Optional[ActivityRecord]]:
        timesteps = timesteps if timesteps is not None else self.config.timesteps
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        batch = states.shape[0]

        spike_trains = self.encoder.encode(states, timesteps)
        self.stack.reset(batch)

        sum_spikes: Optional[Tensor] = None
        layer_spikes = [0.0] * len(self.stack.layers)
        synaptic_ops = [0.0] * len(self.stack.layers)
        input_total = 0.0

        for t in range(timesteps):
            step_input = Tensor(spike_trains[t])
            if record:
                input_total += float(spike_trains[t].sum())
            spikes = step_input
            for k, layer in enumerate(self.stack.layers):
                if record:
                    # Each presynaptic spike touches every postsynaptic
                    # neuron once: synops = (# input spikes) * fan-out.
                    synaptic_ops[k] += float(spikes.data.sum()) * layer.out_features
                spikes = layer.step(spikes)
                if record:
                    layer_spikes[k] += float(spikes.data.sum())
            sum_spikes = spikes if sum_spikes is None else sum_spikes + spikes

        action = self.decoder(sum_spikes, timesteps)

        activity = None
        if record:
            neuron_updates = [
                float(layer.out_features * timesteps * batch)
                for layer in self.stack.layers
            ]
            activity = ActivityRecord(
                timesteps=timesteps,
                batch_size=batch,
                input_spikes=input_total,
                layer_spikes=layer_spikes,
                synaptic_ops=synaptic_ops,
                neuron_updates=neuron_updates,
            )
        return action, activity

    def _run_inference(
        self, states: np.ndarray, timesteps: Optional[int], record: bool
    ) -> Tuple[np.ndarray, Optional[ActivityRecord]]:
        timesteps = timesteps if timesteps is not None else self.config.timesteps
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        batch = states.shape[0]

        spike_trains = self.encoder.encode(states, timesteps)  # (T, B, N)
        buffer_states = self.stack.make_inference_states(batch)

        sum_spikes = np.zeros((batch, self.stack.out_features))
        layer_spikes = [0.0] * len(self.stack.layers)
        synaptic_ops = [0.0] * len(self.stack.layers)
        input_total = 0.0

        for t in range(timesteps):
            spikes = spike_trains[t]
            if record:
                input_total += float(spikes.sum())
            for k, (layer, state) in enumerate(
                zip(self.stack.layers, buffer_states)
            ):
                if record:
                    synaptic_ops[k] += float(spikes.sum()) * layer.out_features
                spikes = layer.step_inference(spikes, state)
                if record:
                    layer_spikes[k] += float(spikes.sum())
            sum_spikes += spikes

        action = self.decoder.decode_inference(sum_spikes, timesteps)

        activity = None
        if record:
            neuron_updates = [
                float(layer.out_features * timesteps * batch)
                for layer in self.stack.layers
            ]
            activity = ActivityRecord(
                timesteps=timesteps,
                batch_size=batch,
                input_spikes=input_total,
                layer_spikes=layer_spikes,
                synaptic_ops=synaptic_ops,
                neuron_updates=neuron_updates,
            )
        return action, activity

    def act(self, state: np.ndarray, timesteps: Optional[int] = None) -> np.ndarray:
        """Single-state convenience wrapper returning a numpy action."""
        action = self.forward_inference(np.atleast_2d(state), timesteps)
        return action[0]
