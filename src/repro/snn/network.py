"""The Spiking Deterministic Policy network (Algorithm 1 / Fig. 1).

``SDPNetwork`` wires together the Gaussian population encoder
(eqs. (2)-(4)), a stack of two-state LIF layers (eqs. (5)-(7)), and the
population decoder (eqs. (8)-(10)).  A forward pass unrolls the network
for ``T`` timesteps and returns a portfolio-weight vector on the
probability simplex.

The network also exposes :meth:`forward_with_activity`, which records
the spike and synaptic-operation counts the Loihi energy model
(:mod:`repro.loihi.energy`) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import Tensor
from ..autograd.nn import Module
from .decoding import PopulationDecoder
from .encoding import EncoderConfig, PopulationEncoder
from .layers import SpikingLinear, SpikingStack
from .neurons import LIFParameters
from .surrogate import SurrogateGradient, rectangular

# Table 2: two hidden layers of 128 neurons; T = 5.
DEFAULT_HIDDEN_SIZES = (128, 128)
DEFAULT_TIMESTEPS = 5


@dataclass(frozen=True)
class SDPConfig:
    """Complete hyper-parameter set of the SDP network.

    Defaults follow Table 2 of the paper; encoder/decoder population
    sizes follow the population-coding literature the paper builds on
    (Tang et al. 2020).
    """

    state_dim: int
    num_actions: int
    hidden_sizes: Tuple[int, ...] = DEFAULT_HIDDEN_SIZES
    timesteps: int = DEFAULT_TIMESTEPS
    encoder_pop_size: int = 10
    decoder_pop_size: int = 10
    state_range: Tuple[float, float] = (-1.0, 1.0)
    encoder_mode: str = "deterministic"
    lif: LIFParameters = field(default_factory=LIFParameters)
    surrogate_amplifier: float = 9.0
    surrogate_window: float = 0.4

    def __post_init__(self):
        if self.timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {self.timesteps}")
        if not self.hidden_sizes:
            raise ValueError("at least one hidden layer is required")
        if self.num_actions < 2:
            raise ValueError(
                f"num_actions must be >= 2 (assets + cash), got {self.num_actions}"
            )


@dataclass
class ActivityRecord:
    """Spike/synop counts of one forward pass (for energy modelling).

    Attributes
    ----------
    timesteps:
        Unroll length T.
    batch_size:
        Number of inferences represented.
    input_spikes:
        Total encoder spikes delivered over all steps.
    layer_spikes:
        Total output spikes per spiking layer over all steps.
    synaptic_ops:
        Total synaptic operations (input spike × fan-out) per layer.
    neuron_updates:
        Total neuron-update events (neurons × steps) per layer.
    """

    timesteps: int
    batch_size: int
    input_spikes: float
    layer_spikes: List[float]
    synaptic_ops: List[float]
    neuron_updates: List[float]

    @property
    def total_spikes(self) -> float:
        return self.input_spikes + sum(self.layer_spikes)

    @property
    def total_synops(self) -> float:
        return sum(self.synaptic_ops)

    @property
    def total_neuron_updates(self) -> float:
        return sum(self.neuron_updates)

    def per_inference(self) -> "ActivityRecord":
        """Normalise counts to a single inference."""
        b = max(self.batch_size, 1)
        return ActivityRecord(
            timesteps=self.timesteps,
            batch_size=1,
            input_spikes=self.input_spikes / b,
            layer_spikes=[s / b for s in self.layer_spikes],
            synaptic_ops=[s / b for s in self.synaptic_ops],
            neuron_updates=[n / b for n in self.neuron_updates],
        )


@dataclass(frozen=True)
class SharedSDPConfig:
    """Hyper-parameters of the weight-shared SDP variant.

    One spiking scorer (population encoder → LIF stack → rate readout)
    is applied to every asset's feature vector with *shared weights*;
    a learned cash bias joins the per-asset scores and eq. (10)'s
    normalisation (a softmax) produces the portfolio vector.  This is
    Algorithm 1 applied per asset — the spiking dynamics, STBP training,
    and Loihi mapping are identical — but the weight sharing gives the
    gradient 11× the signal per parameter, which is what makes the
    policy trainable at reproduction scale (see DESIGN.md §6).
    """

    feature_dim: int
    hidden_sizes: Tuple[int, ...] = DEFAULT_HIDDEN_SIZES
    timesteps: int = DEFAULT_TIMESTEPS
    encoder_pop_size: int = 10
    output_pop_size: int = 10
    state_range: Tuple[float, float] = (-1.0, 1.0)
    encoder_mode: str = "deterministic"
    lif: LIFParameters = field(default_factory=LIFParameters)
    surrogate_amplifier: float = 9.0
    surrogate_window: float = 0.4

    def __post_init__(self):
        if self.timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {self.timesteps}")
        if not self.hidden_sizes:
            raise ValueError("at least one hidden layer is required")
        if self.feature_dim <= 0:
            raise ValueError(f"feature_dim must be positive, got {self.feature_dim}")


class SharedSDPNetwork(Module):
    """Weight-shared population-coded spiking policy (per-asset scorer)."""

    def __init__(
        self, config: SharedSDPConfig, rng: Optional[np.random.Generator] = None
    ):
        super().__init__()
        from ..autograd import Tensor as _T  # local alias for clarity
        from ..autograd import concatenate
        from ..autograd.nn import Parameter

        rng = rng if rng is not None else np.random.default_rng()
        self.config = config
        encoder_cfg = EncoderConfig(
            state_dim=config.feature_dim,
            pop_size=config.encoder_pop_size,
            v_min=config.state_range[0],
            v_max=config.state_range[1],
            mode=config.encoder_mode,
        )
        self.encoder = PopulationEncoder(encoder_cfg, rng=rng)
        surrogate = rectangular(config.surrogate_amplifier, config.surrogate_window)
        sizes = (
            [encoder_cfg.num_neurons]
            + list(config.hidden_sizes)
            + [config.output_pop_size]
        )
        layers = [
            SpikingLinear(sizes[i], sizes[i + 1], lif=config.lif,
                          surrogate=surrogate, rng=rng)
            for i in range(len(sizes) - 1)
        ]
        self.stack = SpikingStack(layers)
        scale = 1.0 / np.sqrt(config.output_pop_size)
        self.readout_weight = Parameter(
            rng.uniform(-scale, scale, config.output_pop_size)
        )
        self.readout_bias = Parameter(np.zeros(1))
        self.cash_bias = Parameter(np.zeros(1))

    # ------------------------------------------------------------------
    @property
    def timesteps(self) -> int:
        return self.config.timesteps

    def layer_sizes(self) -> List[Tuple[int, int]]:
        return [(l.in_features, l.out_features) for l in self.stack.layers]

    # ------------------------------------------------------------------
    def forward(
        self, asset_features: np.ndarray, timesteps: Optional[int] = None
    ) -> "Tensor":
        """Portfolio weights from per-asset features.

        Parameters
        ----------
        asset_features:
            ``(batch, n_assets, feature_dim)`` array.

        Returns
        -------
        ``(batch, n_assets + 1)`` tensor on the simplex, cash first.
        """
        action, _ = self._run(asset_features, timesteps, record=False)
        return action

    def forward_with_activity(
        self, asset_features: np.ndarray, timesteps: Optional[int] = None
    ) -> Tuple["Tensor", ActivityRecord]:
        return self._run(asset_features, timesteps, record=True)

    def forward_inference(
        self, asset_features: np.ndarray, timesteps: Optional[int] = None
    ) -> np.ndarray:
        """Graph-free fused forward; bit-identical to :meth:`forward`.

        Runs the whole ``T``-step unroll on preallocated, in-place
        updated LIF buffers and returns a plain ``(batch, n_assets + 1)``
        ndarray — no autograd nodes are created anywhere.
        """
        action, _ = self._run_inference(asset_features, timesteps, record=False)
        return action

    def forward_inference_with_activity(
        self, asset_features: np.ndarray, timesteps: Optional[int] = None
    ) -> Tuple[np.ndarray, ActivityRecord]:
        """Fused forward that also returns the Loihi activity counts."""
        return self._run_inference(asset_features, timesteps, record=True)

    def _run(self, asset_features, timesteps, record):
        from ..autograd import Tensor as _T
        from ..autograd import concatenate

        timesteps = timesteps if timesteps is not None else self.config.timesteps
        feats = np.asarray(asset_features, dtype=np.float64)
        if feats.ndim == 2:
            feats = feats[None]
        batch, n_assets, d = feats.shape
        if d != self.config.feature_dim:
            raise ValueError(
                f"expected feature_dim={self.config.feature_dim}, got {d}"
            )
        flat = feats.reshape(batch * n_assets, d)
        spike_trains = self.encoder.encode(flat, timesteps)
        self.stack.reset(batch * n_assets)

        sum_spikes = None
        layer_spikes = [0.0] * len(self.stack.layers)
        synaptic_ops = [0.0] * len(self.stack.layers)
        input_total = 0.0
        for t in range(timesteps):
            spikes = _T(spike_trains[t])
            if record:
                input_total += float(spike_trains[t].sum())
            for k, layer in enumerate(self.stack.layers):
                if record:
                    synaptic_ops[k] += float(spikes.data.sum()) * layer.out_features
                spikes = layer.step(spikes)
                if record:
                    layer_spikes[k] += float(spikes.data.sum())
            sum_spikes = spikes if sum_spikes is None else sum_spikes + spikes

        rates = sum_spikes * (1.0 / timesteps)
        scores = rates @ self.readout_weight + self.readout_bias
        scores = scores.reshape(batch, n_assets)
        cash = self.cash_bias.reshape(1, 1) * _T(np.ones((batch, 1)))
        logits = concatenate([cash, scores], axis=1)
        shifted = logits - _T(logits.data.max(axis=1, keepdims=True))
        temp = shifted.exp()
        action = temp / temp.sum(axis=1, keepdims=True)

        activity = None
        if record:
            activity = ActivityRecord(
                timesteps=timesteps,
                batch_size=batch,  # one *inference* covers all assets
                input_spikes=input_total,
                layer_spikes=layer_spikes,
                synaptic_ops=synaptic_ops,
                neuron_updates=[
                    float(l.out_features * timesteps * batch * n_assets)
                    for l in self.stack.layers
                ],
            )
        return action, activity

    def _run_inference(
        self, asset_features, timesteps, record
    ) -> Tuple[np.ndarray, Optional[ActivityRecord]]:
        timesteps = timesteps if timesteps is not None else self.config.timesteps
        feats = np.asarray(asset_features, dtype=np.float64)
        if feats.ndim == 2:
            feats = feats[None]
        batch, n_assets, d = feats.shape
        if d != self.config.feature_dim:
            raise ValueError(
                f"expected feature_dim={self.config.feature_dim}, got {d}"
            )
        flat = feats.reshape(batch * n_assets, d)
        spike_trains = self.encoder.encode(flat, timesteps)  # (T, B·A, N)
        states = self.stack.make_inference_states(batch * n_assets)

        sum_spikes = np.zeros((batch * n_assets, self.stack.out_features))
        layer_spikes = [0.0] * len(self.stack.layers)
        synaptic_ops = [0.0] * len(self.stack.layers)
        input_total = 0.0
        for t in range(timesteps):
            spikes = spike_trains[t]
            if record:
                input_total += float(spikes.sum())
            for k, (layer, state) in enumerate(zip(self.stack.layers, states)):
                if record:
                    synaptic_ops[k] += float(spikes.sum()) * layer.out_features
                spikes = layer.step_inference(spikes, state)
                if record:
                    layer_spikes[k] += float(spikes.sum())
            sum_spikes += spikes

        rates = sum_spikes * (1.0 / timesteps)
        scores = rates @ self.readout_weight.data + self.readout_bias.data
        scores = scores.reshape(batch, n_assets)
        cash = self.cash_bias.data.reshape(1, 1) * np.ones((batch, 1))
        logits = np.concatenate([cash, scores], axis=1)
        shifted = logits - logits.max(axis=1, keepdims=True)
        temp = np.exp(shifted)
        action = temp / temp.sum(axis=1, keepdims=True)

        activity = None
        if record:
            activity = ActivityRecord(
                timesteps=timesteps,
                batch_size=batch,  # one *inference* covers all assets
                input_spikes=input_total,
                layer_spikes=layer_spikes,
                synaptic_ops=synaptic_ops,
                neuron_updates=[
                    float(l.out_features * timesteps * batch * n_assets)
                    for l in self.stack.layers
                ],
            )
        return action, activity

    def act(self, asset_features: np.ndarray, timesteps: Optional[int] = None) -> np.ndarray:
        action = self.forward_inference(np.asarray(asset_features)[None], timesteps)
        return action[0]


class SDPNetwork(Module):
    """Population-coded spiking policy network (the paper's SDP)."""

    def __init__(self, config: SDPConfig, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.config = config

        encoder_cfg = EncoderConfig(
            state_dim=config.state_dim,
            pop_size=config.encoder_pop_size,
            v_min=config.state_range[0],
            v_max=config.state_range[1],
            mode=config.encoder_mode,
        )
        self.encoder = PopulationEncoder(encoder_cfg, rng=rng)
        self.decoder = PopulationDecoder(
            config.num_actions, config.decoder_pop_size, rng=rng
        )

        surrogate = rectangular(config.surrogate_amplifier, config.surrogate_window)
        sizes = (
            [encoder_cfg.num_neurons]
            + list(config.hidden_sizes)
            + [self.decoder.num_neurons]
        )
        layers = [
            SpikingLinear(
                sizes[i],
                sizes[i + 1],
                lif=config.lif,
                surrogate=surrogate,
                rng=rng,
            )
            for i in range(len(sizes) - 1)
        ]
        self.stack = SpikingStack(layers)

    # ------------------------------------------------------------------
    @property
    def timesteps(self) -> int:
        return self.config.timesteps

    def layer_sizes(self) -> List[Tuple[int, int]]:
        """(in, out) of each spiking layer, for quantisation/energy models."""
        return [(l.in_features, l.out_features) for l in self.stack.layers]

    # ------------------------------------------------------------------
    def forward(self, states: np.ndarray, timesteps: Optional[int] = None) -> Tensor:
        """Compute portfolio weights for a batch of states (Algorithm 1).

        Parameters
        ----------
        states:
            ``(batch, state_dim)`` array of continuous observations.
        timesteps:
            Optional override of the configured T (used by the T-sweep
            ablation bench).

        Returns
        -------
        ``(batch, num_actions)`` tensor on the probability simplex.
        """
        action, _ = self._run(states, timesteps, record=False)
        return action

    def forward_with_activity(
        self, states: np.ndarray, timesteps: Optional[int] = None
    ) -> Tuple[Tensor, ActivityRecord]:
        """Forward pass that also returns spike/synop counts."""
        return self._run(states, timesteps, record=True)

    def forward_inference(
        self, states: np.ndarray, timesteps: Optional[int] = None
    ) -> np.ndarray:
        """Graph-free fused forward; bit-identical to :meth:`forward`.

        The ``T``-step unroll runs on preallocated, in-place-updated
        ``c``/``v``/``o`` buffers and returns a plain
        ``(batch, num_actions)`` ndarray — no autograd nodes anywhere.
        """
        action, _ = self._run_inference(states, timesteps, record=False)
        return action

    def forward_inference_with_activity(
        self, states: np.ndarray, timesteps: Optional[int] = None
    ) -> Tuple[np.ndarray, ActivityRecord]:
        """Fused forward that also returns the Loihi activity counts."""
        return self._run_inference(states, timesteps, record=True)

    # ------------------------------------------------------------------
    def _run(
        self, states: np.ndarray, timesteps: Optional[int], record: bool
    ) -> Tuple[Tensor, Optional[ActivityRecord]]:
        timesteps = timesteps if timesteps is not None else self.config.timesteps
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        batch = states.shape[0]

        spike_trains = self.encoder.encode(states, timesteps)
        self.stack.reset(batch)

        sum_spikes: Optional[Tensor] = None
        layer_spikes = [0.0] * len(self.stack.layers)
        synaptic_ops = [0.0] * len(self.stack.layers)
        input_total = 0.0

        for t in range(timesteps):
            step_input = Tensor(spike_trains[t])
            if record:
                input_total += float(spike_trains[t].sum())
            spikes = step_input
            for k, layer in enumerate(self.stack.layers):
                if record:
                    # Each presynaptic spike touches every postsynaptic
                    # neuron once: synops = (# input spikes) * fan-out.
                    synaptic_ops[k] += float(spikes.data.sum()) * layer.out_features
                spikes = layer.step(spikes)
                if record:
                    layer_spikes[k] += float(spikes.data.sum())
            sum_spikes = spikes if sum_spikes is None else sum_spikes + spikes

        action = self.decoder(sum_spikes, timesteps)

        activity = None
        if record:
            neuron_updates = [
                float(layer.out_features * timesteps * batch)
                for layer in self.stack.layers
            ]
            activity = ActivityRecord(
                timesteps=timesteps,
                batch_size=batch,
                input_spikes=input_total,
                layer_spikes=layer_spikes,
                synaptic_ops=synaptic_ops,
                neuron_updates=neuron_updates,
            )
        return action, activity

    def _run_inference(
        self, states: np.ndarray, timesteps: Optional[int], record: bool
    ) -> Tuple[np.ndarray, Optional[ActivityRecord]]:
        timesteps = timesteps if timesteps is not None else self.config.timesteps
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        batch = states.shape[0]

        spike_trains = self.encoder.encode(states, timesteps)  # (T, B, N)
        buffer_states = self.stack.make_inference_states(batch)

        sum_spikes = np.zeros((batch, self.stack.out_features))
        layer_spikes = [0.0] * len(self.stack.layers)
        synaptic_ops = [0.0] * len(self.stack.layers)
        input_total = 0.0

        for t in range(timesteps):
            spikes = spike_trains[t]
            if record:
                input_total += float(spikes.sum())
            for k, (layer, state) in enumerate(
                zip(self.stack.layers, buffer_states)
            ):
                if record:
                    synaptic_ops[k] += float(spikes.sum()) * layer.out_features
                spikes = layer.step_inference(spikes, state)
                if record:
                    layer_spikes[k] += float(spikes.sum())
            sum_spikes += spikes

        action = self.decoder.decode_inference(sum_spikes, timesteps)

        activity = None
        if record:
            neuron_updates = [
                float(layer.out_features * timesteps * batch)
                for layer in self.stack.layers
            ]
            activity = ActivityRecord(
                timesteps=timesteps,
                batch_size=batch,
                input_spikes=input_total,
                layer_spikes=layer_spikes,
                synaptic_ops=synaptic_ops,
                neuron_updates=neuron_updates,
            )
        return action, activity

    def act(self, state: np.ndarray, timesteps: Optional[int] = None) -> np.ndarray:
        """Single-state convenience wrapper returning a numpy action."""
        action = self.forward_inference(np.atleast_2d(state), timesteps)
        return action[0]
