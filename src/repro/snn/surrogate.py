"""Surrogate (pseudo-) gradients for the non-differentiable spike function.

The paper trains SDP with STBP using the *rectangular* pseudo-gradient
(eq. (11)):

.. math::

    z(v) = a_1 \\; \\text{if} \\; |v - V_{th}| < a_2, \\; 0 \\; \\text{otherwise}

with :math:`a_1 = 9.0` (gradient amplifier) and :math:`a_2 = 0.4`
(gradient window), per Table 2.  Alternative surrogates are provided for
the encoding/ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

# Paper defaults (Table 2).
DEFAULT_AMPLIFIER = 9.0
DEFAULT_WINDOW = 0.4


@dataclass(frozen=True)
class SurrogateGradient:
    """A named surrogate gradient ``z(v)`` evaluated at membrane voltage.

    ``fn(v, v_th)`` returns the pseudo-derivative of the Heaviside spike
    with respect to ``v``.  ``fn_into``, when provided, evaluates the
    same function into a caller-supplied buffer without allocating — the
    fused STBP backward kernels use it on their preallocated scratch.
    Both evaluations must be bit-identical.
    """

    name: str
    fn: Callable[[np.ndarray, float], np.ndarray]
    fn_into: Optional[Callable[[np.ndarray, float, np.ndarray], np.ndarray]] = None

    def __call__(self, v: np.ndarray, v_th: float) -> np.ndarray:
        return self.fn(v, v_th)

    def into(self, v: np.ndarray, v_th: float, out: np.ndarray) -> np.ndarray:
        """Evaluate ``z(v)`` into ``out`` (allocation-free when supported)."""
        if self.fn_into is not None:
            return self.fn_into(v, v_th, out)
        out[...] = self.fn(v, v_th)
        return out


def rectangular(
    amplifier: float = DEFAULT_AMPLIFIER, window: float = DEFAULT_WINDOW
) -> SurrogateGradient:
    """Rectangular window surrogate, eq. (11) of the paper."""
    if amplifier <= 0:
        raise ValueError(f"amplifier a1 must be positive, got {amplifier}")
    if window <= 0:
        raise ValueError(f"window a2 must be positive, got {window}")

    def fn(v: np.ndarray, v_th: float) -> np.ndarray:
        return amplifier * (np.abs(v - v_th) < window)

    def fn_into(v: np.ndarray, v_th: float, out: np.ndarray) -> np.ndarray:
        # amplifier * (|v − v_th| < window), built in place.  The unsafe
        # cast writes the comparison result as 0.0/1.0, and multiplying
        # by the amplifier reproduces ``amplifier * bool`` bit-exactly.
        np.subtract(v, v_th, out=out)
        np.abs(out, out=out)
        np.less(out, window, out=out, casting="unsafe")
        np.multiply(out, amplifier, out=out)
        return out

    return SurrogateGradient("rectangular", fn, fn_into)


def triangular(scale: float = 1.0, width: float = 1.0) -> SurrogateGradient:
    """Piecewise-linear 'triangle' surrogate (Bellec et al. 2018)."""

    def fn(v: np.ndarray, v_th: float) -> np.ndarray:
        return scale * np.maximum(0.0, 1.0 - np.abs(v - v_th) / width)

    return SurrogateGradient("triangular", fn)


def fast_sigmoid(slope: float = 10.0) -> SurrogateGradient:
    """Derivative of the fast sigmoid (Zenke & Ganguli 2018)."""

    def fn(v: np.ndarray, v_th: float) -> np.ndarray:
        return 1.0 / (1.0 + slope * np.abs(v - v_th)) ** 2

    return SurrogateGradient("fast_sigmoid", fn)


def arctan(alpha: float = 2.0) -> SurrogateGradient:
    """Derivative of a scaled arctangent (Fang et al. 2021)."""

    def fn(v: np.ndarray, v_th: float) -> np.ndarray:
        return alpha / (2.0 * (1.0 + (np.pi / 2.0 * alpha * (v - v_th)) ** 2))

    return SurrogateGradient("arctan", fn)


_REGISTRY: Dict[str, Callable[..., SurrogateGradient]] = {
    "rectangular": rectangular,
    "triangular": triangular,
    "fast_sigmoid": fast_sigmoid,
    "arctan": arctan,
}


def get_surrogate(name: str, **kwargs) -> SurrogateGradient:
    """Look up a surrogate factory by name and instantiate it."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown surrogate {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)
