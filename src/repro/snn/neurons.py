"""Leaky-Integrate-and-Fire neuron dynamics (eqs. (5)-(7) / Algorithm 1).

The paper's SDP uses *two-state* current-based LIF neurons: synaptic
current ``c`` decays with factor ``dc`` and integrates weighted input
spikes (eq. (5)); membrane voltage ``v`` decays with factor ``dv``,
is hard-reset by the previous spike (Algorithm 1's ``v·(1−o)`` gating),
and integrates the current (eq. (6)).  A spike is emitted when the
voltage crosses ``V_th`` (eq. (7)); the reset to 0 is implemented by the
``(1−o)`` gate at the next step so gradients can flow through the
surrogate at the threshold crossing.

All functions are differentiable through :mod:`repro.autograd`, with the
Heaviside spike replaced by a surrogate gradient from
:mod:`repro.snn.surrogate` on the backward pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..autograd import Tensor, custom_op, is_grad_enabled
from .surrogate import SurrogateGradient, rectangular

# Paper defaults (Table 2): Vth, dc, dv = 0.5, 0.5, 0.80
DEFAULT_V_THRESHOLD = 0.5
DEFAULT_CURRENT_DECAY = 0.5
DEFAULT_VOLTAGE_DECAY = 0.80


@dataclass(frozen=True)
class LIFParameters:
    """Hyper-parameters of a two-state LIF population (Table 2 defaults)."""

    v_threshold: float = DEFAULT_V_THRESHOLD
    current_decay: float = DEFAULT_CURRENT_DECAY
    voltage_decay: float = DEFAULT_VOLTAGE_DECAY

    def __post_init__(self):
        if self.v_threshold <= 0:
            raise ValueError(f"v_threshold must be positive, got {self.v_threshold}")
        for name, value in (
            ("current_decay", self.current_decay),
            ("voltage_decay", self.voltage_decay),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass
class LIFState:
    """Mutable per-unroll state of a LIF population.

    Attributes hold autograd tensors so BPTT can traverse the whole
    unrolled time dimension (STBP).
    """

    current: Tensor
    voltage: Tensor
    spikes: Tensor

    @classmethod
    def zeros(cls, shape: Tuple[int, ...]) -> "LIFState":
        return cls(
            current=Tensor(np.zeros(shape)),
            voltage=Tensor(np.zeros(shape)),
            spikes=Tensor(np.zeros(shape)),
        )


def spike_function(
    voltage: Tensor,
    v_threshold: float,
    surrogate: Optional[SurrogateGradient] = None,
) -> Tensor:
    """Heaviside spike with surrogate gradient.

    Forward: ``o = 1[v > V_th]``.  Backward: ``do/dv = z(v)`` where ``z``
    is the rectangular window of eq. (11) unless another surrogate is
    supplied.

    The surrogate window is only evaluated when a gradient can actually
    flow back (``voltage`` requires grad and grad mode is enabled);
    inference steps skip that array entirely.
    """
    spikes = (voltage.data > v_threshold).astype(voltage.data.dtype)
    if not (voltage.requires_grad and is_grad_enabled()):
        return Tensor(spikes)
    surrogate = surrogate if surrogate is not None else rectangular()
    pseudo = surrogate(voltage.data, v_threshold)

    def backward(g: np.ndarray):
        return (g * pseudo,)

    return custom_op([voltage], spikes, backward, name="spike")


def lif_step(
    synaptic_input: Tensor,
    state: LIFState,
    params: LIFParameters,
    surrogate: Optional[SurrogateGradient] = None,
) -> LIFState:
    """Advance a two-state LIF population by one timestep.

    Implements Algorithm 1's inner loop::

        c(t) = dc · c(t−1) + I(t)
        v(t) = dv · v(t−1) · (1 − o(t−1)) + c(t)
        o(t) = Threshold(v(t))

    where ``I(t)`` is the already-weighted synaptic input
    (``W o_pre + b``), computed by the calling layer.
    """
    current = state.current * params.current_decay + synaptic_input
    voltage = state.voltage * params.voltage_decay * (1.0 - state.spikes) + current
    spikes = spike_function(voltage, params.v_threshold, surrogate)
    return LIFState(current=current, voltage=voltage, spikes=spikes)


@dataclass
class LIFInferenceState:
    """Preallocated numpy ``c``/``v``/``o`` buffers for the fused
    inference kernel.

    One set of buffers carries a whole ``T``-step unroll: every
    :func:`lif_step_inference` updates them in place, so the unroll
    allocates nothing per step (beyond the synaptic drive the caller
    computes).  ``scratch`` holds the transient ``1 − o`` gating term.
    """

    current: np.ndarray
    voltage: np.ndarray
    spikes: np.ndarray
    scratch: np.ndarray

    @classmethod
    def zeros(cls, shape: Tuple[int, ...]) -> "LIFInferenceState":
        return cls(
            current=np.zeros(shape),
            voltage=np.zeros(shape),
            spikes=np.zeros(shape),
            scratch=np.empty(shape),
        )


def lif_step_inference(
    synaptic_input: np.ndarray,
    state: LIFInferenceState,
    params: LIFParameters,
) -> np.ndarray:
    """Fused pure-numpy LIF step for inference (no autograd graph).

    Performs exactly the elementwise operations of :func:`lif_step`, in
    the same order, but in place on the preallocated buffers — so the
    emitted spikes are bit-identical to the graph path while allocating
    no graph nodes and no intermediate arrays.

    Returns ``state.spikes`` (the in-place-updated ``o`` buffer).
    """
    c, v, o = state.current, state.voltage, state.spikes
    # c(t) = dc · c(t−1) + I(t)
    np.multiply(c, params.current_decay, out=c)
    np.add(c, synaptic_input, out=c)
    # v(t) = dv · v(t−1) · (1 − o(t−1)) + c(t)
    np.multiply(v, params.voltage_decay, out=v)
    np.subtract(1.0, o, out=state.scratch)
    np.multiply(v, state.scratch, out=v)
    np.add(v, c, out=v)
    # o(t) = 1[v(t) > V_th]; unsafe casting writes the bool result
    # straight into the float buffer (True → 1.0, same as astype).
    np.greater(v, params.v_threshold, out=o, casting="unsafe")
    return o


def integrate_and_fire_rate(
    stimulation: np.ndarray,
    timesteps: int,
    epsilon: float = 1e-3,
) -> np.ndarray:
    """Closed-form spike count of the one-step soft-reset encoder LIF.

    For the encoder neurons of eqs. (3)–(4) (no leak, soft reset by the
    threshold ``1−ε``), the number of spikes emitted in ``T`` steps under
    constant drive ``A_E`` is ``floor(T·A_E / (1−ε))`` up to boundary
    effects.  Used by tests as an analytic oracle.
    """
    threshold = 1.0 - epsilon
    return np.floor(timesteps * np.asarray(stimulation) / threshold + 1e-12)
