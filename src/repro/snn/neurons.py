"""Leaky-Integrate-and-Fire neuron dynamics (eqs. (5)-(7) / Algorithm 1).

The paper's SDP uses *two-state* current-based LIF neurons: synaptic
current ``c`` decays with factor ``dc`` and integrates weighted input
spikes (eq. (5)); membrane voltage ``v`` decays with factor ``dv``,
is hard-reset by the previous spike (Algorithm 1's ``v·(1−o)`` gating),
and integrates the current (eq. (6)).  A spike is emitted when the
voltage crosses ``V_th`` (eq. (7)); the reset to 0 is implemented by the
``(1−o)`` gate at the next step so gradients can flow through the
surrogate at the threshold crossing.

All functions are differentiable through :mod:`repro.autograd`, with the
Heaviside spike replaced by a surrogate gradient from
:mod:`repro.snn.surrogate` on the backward pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..autograd import Tensor, custom_op, is_grad_enabled
from .surrogate import SurrogateGradient, rectangular

# Paper defaults (Table 2): Vth, dc, dv = 0.5, 0.5, 0.80
DEFAULT_V_THRESHOLD = 0.5
DEFAULT_CURRENT_DECAY = 0.5
DEFAULT_VOLTAGE_DECAY = 0.80


@dataclass(frozen=True)
class LIFParameters:
    """Hyper-parameters of a two-state LIF population (Table 2 defaults)."""

    v_threshold: float = DEFAULT_V_THRESHOLD
    current_decay: float = DEFAULT_CURRENT_DECAY
    voltage_decay: float = DEFAULT_VOLTAGE_DECAY

    def __post_init__(self):
        if self.v_threshold <= 0:
            raise ValueError(f"v_threshold must be positive, got {self.v_threshold}")
        for name, value in (
            ("current_decay", self.current_decay),
            ("voltage_decay", self.voltage_decay),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass
class LIFState:
    """Mutable per-unroll state of a LIF population.

    Attributes hold autograd tensors so BPTT can traverse the whole
    unrolled time dimension (STBP).
    """

    current: Tensor
    voltage: Tensor
    spikes: Tensor

    @classmethod
    def zeros(cls, shape: Tuple[int, ...]) -> "LIFState":
        return cls(
            current=Tensor(np.zeros(shape)),
            voltage=Tensor(np.zeros(shape)),
            spikes=Tensor(np.zeros(shape)),
        )


def spike_function(
    voltage: Tensor,
    v_threshold: float,
    surrogate: Optional[SurrogateGradient] = None,
) -> Tensor:
    """Heaviside spike with surrogate gradient.

    Forward: ``o = 1[v > V_th]``.  Backward: ``do/dv = z(v)`` where ``z``
    is the rectangular window of eq. (11) unless another surrogate is
    supplied.

    The surrogate window is only evaluated when a gradient can actually
    flow back (``voltage`` requires grad and grad mode is enabled);
    inference steps skip that array entirely.
    """
    spikes = (voltage.data > v_threshold).astype(voltage.data.dtype)
    if not (voltage.requires_grad and is_grad_enabled()):
        return Tensor(spikes)
    surrogate = surrogate if surrogate is not None else rectangular()
    pseudo = surrogate(voltage.data, v_threshold)

    def backward(g: np.ndarray):
        return (g * pseudo,)

    return custom_op([voltage], spikes, backward, name="spike")


def lif_step(
    synaptic_input: Tensor,
    state: LIFState,
    params: LIFParameters,
    surrogate: Optional[SurrogateGradient] = None,
) -> LIFState:
    """Advance a two-state LIF population by one timestep.

    Implements Algorithm 1's inner loop::

        c(t) = dc · c(t−1) + I(t)
        v(t) = dv · v(t−1) · (1 − o(t−1)) + c(t)
        o(t) = Threshold(v(t))

    where ``I(t)`` is the already-weighted synaptic input
    (``W o_pre + b``), computed by the calling layer.
    """
    current = state.current * params.current_decay + synaptic_input
    voltage = state.voltage * params.voltage_decay * (1.0 - state.spikes) + current
    spikes = spike_function(voltage, params.v_threshold, surrogate)
    return LIFState(current=current, voltage=voltage, spikes=spikes)


@dataclass
class LIFInferenceState:
    """Preallocated numpy ``c``/``v``/``o`` buffers for the fused
    inference kernel.

    One set of buffers carries a whole ``T``-step unroll: every
    :func:`lif_step_inference` updates them in place, so the unroll
    allocates nothing per step (beyond the synaptic drive the caller
    computes).  ``scratch`` holds the transient ``1 − o`` gating term.
    """

    current: np.ndarray
    voltage: np.ndarray
    spikes: np.ndarray
    scratch: np.ndarray

    @classmethod
    def zeros(cls, shape: Tuple[int, ...]) -> "LIFInferenceState":
        return cls(
            current=np.zeros(shape),
            voltage=np.zeros(shape),
            spikes=np.zeros(shape),
            scratch=np.empty(shape),
        )


def lif_step_inference(
    synaptic_input: np.ndarray,
    state: LIFInferenceState,
    params: LIFParameters,
) -> np.ndarray:
    """Fused pure-numpy LIF step for inference (no autograd graph).

    Performs exactly the elementwise operations of :func:`lif_step`, in
    the same order, but in place on the preallocated buffers — so the
    emitted spikes are bit-identical to the graph path while allocating
    no graph nodes and no intermediate arrays.

    Returns ``state.spikes`` (the in-place-updated ``o`` buffer).
    """
    c, v, o = state.current, state.voltage, state.spikes
    # c(t) = dc · c(t−1) + I(t)
    np.multiply(c, params.current_decay, out=c)
    np.add(c, synaptic_input, out=c)
    # v(t) = dv · v(t−1) · (1 − o(t−1)) + c(t)
    np.multiply(v, params.voltage_decay, out=v)
    np.subtract(1.0, o, out=state.scratch)
    np.multiply(v, state.scratch, out=v)
    np.add(v, c, out=v)
    # o(t) = 1[v(t) > V_th]; unsafe casting writes the bool result
    # straight into the float buffer (True → 1.0, same as astype).
    np.greater(v, params.v_threshold, out=o, casting="unsafe")
    return o


@dataclass
class LIFTrainTape:
    """Compact static tape of one ``T``-step LIF unroll for training.

    The fused STBP fast path records, per timestep, only what the
    analytic backward needs — the membrane voltage (for the surrogate
    window and the reset-gate gradient) and the emitted spikes (for the
    ``1 − o`` gate and as the next layer's input).  Slice ``0`` of the
    ``voltage``/``spikes`` arrays holds the zero initial state and is
    never written, so :func:`lif_backward_step` can treat ``t − 1``
    uniformly.

    All buffers are preallocated once and reused across train steps:
    neither the forward unroll (:func:`lif_step_train`) nor the backward
    replay (:func:`lif_backward_step`) allocates.
    """

    voltage: np.ndarray    # (T+1, batch, n) recorded v(t); index 0 = initial 0
    spikes: np.ndarray     # (T+1, batch, n) recorded o(t); index 0 = initial 0
    current: np.ndarray    # (batch, n) running synaptic current c(t)
    drive: np.ndarray      # (batch, n) scratch for the weighted input I(t)
    scratch: np.ndarray    # (batch, n) transient terms (gate, surrogate, ...)
    g_voltage: np.ndarray  # (batch, n) carry: dL/dv flowing back from t+1
    g_current: np.ndarray  # (batch, n) carry: dL/dc (doubles as dL/dI(t))
    g_gate: np.ndarray     # (batch, n) carry: dL/do(t) from the t+1 reset gate
    g_spikes: np.ndarray   # (batch, n) scratch: total dL/do(t)
    timesteps: int

    @classmethod
    def zeros(cls, timesteps: int, shape: Tuple[int, ...]) -> "LIFTrainTape":
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        return cls(
            voltage=np.zeros((timesteps + 1,) + shape),
            spikes=np.zeros((timesteps + 1,) + shape),
            current=np.zeros(shape),
            drive=np.empty(shape),
            scratch=np.empty(shape),
            g_voltage=np.empty(shape),
            g_current=np.empty(shape),
            g_gate=np.empty(shape),
            g_spikes=np.empty(shape),
            timesteps=timesteps,
        )

    def begin(self) -> None:
        """Reset the running state ahead of a fresh unroll (slices 0 of
        the recorded arrays stay zero by construction)."""
        self.current.fill(0.0)


def lif_step_train(
    synaptic_input: np.ndarray,
    tape: LIFTrainTape,
    params: LIFParameters,
    t: int,
) -> np.ndarray:
    """Fused LIF forward step ``t`` (1-based) that records onto ``tape``.

    Performs the exact elementwise operations of :func:`lif_step`, in
    the same order, writing ``v(t)``/``o(t)`` into the tape's
    per-timestep slices — so the unroll is bit-identical to the
    closure-graph path while allocating nothing.

    Returns ``tape.spikes[t]`` (valid until the tape is reused).
    """
    c = tape.current
    # c(t) = dc · c(t−1) + I(t)
    np.multiply(c, params.current_decay, out=c)
    np.add(c, synaptic_input, out=c)
    # v(t) = dv · v(t−1) · (1 − o(t−1)) + c(t)
    v = tape.voltage[t]
    np.multiply(tape.voltage[t - 1], params.voltage_decay, out=v)
    np.subtract(1.0, tape.spikes[t - 1], out=tape.scratch)
    np.multiply(v, tape.scratch, out=v)
    np.add(v, c, out=v)
    # o(t) = 1[v(t) > V_th]
    o = tape.spikes[t]
    np.greater(v, params.v_threshold, out=o, casting="unsafe")
    return o


def lif_backward_step(
    grad_spikes: np.ndarray,
    tape: LIFTrainTape,
    params: LIFParameters,
    surrogate: SurrogateGradient,
    t: int,
) -> np.ndarray:
    """Analytic BPTT backward through LIF step ``t`` (call t = T..1).

    ``grad_spikes`` is the downstream gradient into ``o(t)`` (from the
    next layer's synapses and/or the rate readout); the tape's
    ``g_voltage``/``g_current``/``g_gate`` buffers carry the recurrent
    terms from step ``t + 1``:

    .. math::

        \\partial v(t{+}1)/\\partial v(t) &= d_v (1 - o(t)) \\\\
        \\partial v(t{+}1)/\\partial o(t) &= -d_v\\, v(t) \\\\
        \\partial c(t{+}1)/\\partial c(t) &= d_c

    with the spike surrogate ``do/dv = z(v)`` closing the loop.  Every
    operation mirrors an op of the closure-graph backward (same inputs,
    same order), so the returned ``dL/dI(t)`` — ``tape.g_current``,
    valid until the next call — is bit-identical to the graph path.
    ``grad_spikes`` is never mutated.
    """
    last = t == tape.timesteps
    v = tape.voltage[t]
    # Total dL/do(t): reset-gate carry (arrives first in the graph's
    # reverse-topological order) plus the downstream gradient.
    if last:
        g_o = grad_spikes
    else:
        np.add(tape.g_gate, grad_spikes, out=tape.g_spikes)
        g_o = tape.g_spikes
    # Spike op: dL/dv(t) += g_o · z(v(t))  (surrogate, eq. (11)).
    surrogate.into(v, params.v_threshold, out=tape.scratch)
    if last:
        np.multiply(g_o, tape.scratch, out=tape.g_voltage)
    else:
        np.multiply(g_o, tape.scratch, out=tape.scratch)
        np.add(tape.g_voltage, tape.scratch, out=tape.g_voltage)
    # v(t) = ... + c(t) is an identity edge into c(t); add the c(t+1)
    # decay carry (graph order: carry first, then the voltage term).
    if last:
        np.copyto(tape.g_current, tape.g_voltage)
    else:
        np.multiply(tape.g_current, params.current_decay, out=tape.g_current)
        np.add(tape.g_current, tape.g_voltage, out=tape.g_current)
    # Carries for step t−1 through the reset gate
    # v(t) = dv · v(t−1) · (1 − o(t−1)) + c(t).
    if t > 1:
        np.multiply(tape.voltage[t - 1], params.voltage_decay, out=tape.scratch)
        np.multiply(tape.g_voltage, tape.scratch, out=tape.g_gate)
        np.negative(tape.g_gate, out=tape.g_gate)
        np.subtract(1.0, tape.spikes[t - 1], out=tape.scratch)
        np.multiply(tape.g_voltage, tape.scratch, out=tape.g_voltage)
        np.multiply(tape.g_voltage, params.voltage_decay, out=tape.g_voltage)
    return tape.g_current


def integrate_and_fire_rate(
    stimulation: np.ndarray,
    timesteps: int,
    epsilon: float = 1e-3,
) -> np.ndarray:
    """Closed-form spike count of the one-step soft-reset encoder LIF.

    For the encoder neurons of eqs. (3)–(4) (no leak, soft reset by the
    threshold ``1−ε``), the number of spikes emitted in ``T`` steps under
    constant drive ``A_E`` is ``floor(T·A_E / (1−ε))`` up to boundary
    effects.  Used by tests as an analytic oracle.
    """
    threshold = 1.0 - epsilon
    return np.floor(timesteps * np.asarray(stimulation) / threshold + 1e-12)
