"""Spiking layers: weighted synapses feeding two-state LIF populations.

A :class:`SpikingLinear` owns the synaptic weight matrix and the LIF
population it projects onto.  During a forward unroll the caller drives
it step by step; the layer threads its :class:`~repro.snn.neurons.LIFState`
through the autograd graph so STBP (eq. (13)) emerges from ordinary
backpropagation over the unrolled graph.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..autograd import Tensor
from ..autograd import functional as F
from ..autograd.nn import Module, Parameter, kaiming_uniform
from .neurons import (
    LIFInferenceState,
    LIFParameters,
    LIFState,
    lif_step,
    lif_step_inference,
)
from .surrogate import SurrogateGradient, rectangular


class SpikingLinear(Module):
    """Fully-connected synapses followed by a two-state LIF population."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        lif: Optional[LIFParameters] = None,
        surrogate: Optional[SurrogateGradient] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"invalid layer size ({in_features}, {out_features})"
            )
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.lif = lif if lif is not None else LIFParameters()
        self.surrogate = surrogate if surrogate is not None else rectangular()
        self.weight = Parameter(
            kaiming_uniform((out_features, in_features), in_features, rng)
        )
        self.bias = Parameter(np.zeros(out_features))
        self._state: Optional[LIFState] = None

    # ------------------------------------------------------------------
    def reset(self, batch_size: int) -> None:
        """Zero the LIF state ahead of a fresh ``T``-step unroll."""
        self._state = LIFState.zeros((batch_size, self.out_features))

    @property
    def state(self) -> LIFState:
        if self._state is None:
            raise RuntimeError("layer state not initialised; call reset() first")
        return self._state

    def step(self, input_spikes: Tensor) -> Tensor:
        """One timestep: synaptic integration + LIF dynamics.

        Parameters
        ----------
        input_spikes:
            ``(batch, in_features)`` spike (or encoder-output) tensor.

        Returns
        -------
        ``(batch, out_features)`` output spike tensor for this step.
        """
        if self._state is None:
            raise RuntimeError("layer state not initialised; call reset() first")
        drive = F.linear(input_spikes, self.weight, self.bias)
        self._state = lif_step(drive, self._state, self.lif, self.surrogate)
        return self._state.spikes

    # -- inference fast path -------------------------------------------
    def make_inference_state(self, batch_size: int) -> LIFInferenceState:
        """Preallocated ``c``/``v``/``o`` buffers for one fused unroll."""
        return LIFInferenceState.zeros((batch_size, self.out_features))

    def step_inference(
        self, input_spikes: np.ndarray, state: LIFInferenceState
    ) -> np.ndarray:
        """One graph-free timestep, bit-identical to :meth:`step`.

        The synaptic drive is the same ``x @ W.T + b`` the autograd path
        computes; the LIF update runs in place on ``state``'s buffers.
        Returns the layer's spike buffer (valid until the next call).
        """
        drive = input_spikes @ self.weight.data.T + self.bias.data
        return lif_step_inference(drive, state, self.lif)

    def __repr__(self) -> str:
        return (
            f"SpikingLinear({self.in_features}, {self.out_features}, "
            f"Vth={self.lif.v_threshold}, dc={self.lif.current_decay}, "
            f"dv={self.lif.voltage_decay})"
        )


class SpikingStack(Module):
    """A stack of :class:`SpikingLinear` layers stepped together.

    Corresponds to the ``for k = 1..L`` loop of Algorithm 1.
    """

    def __init__(self, layers: List[SpikingLinear]):
        super().__init__()
        if not layers:
            raise ValueError("SpikingStack requires at least one layer")
        for prev, nxt in zip(layers, layers[1:]):
            if prev.out_features != nxt.in_features:
                raise ValueError(
                    f"layer size mismatch: {prev.out_features} -> {nxt.in_features}"
                )
        self.layers = layers

    @property
    def in_features(self) -> int:
        return self.layers[0].in_features

    @property
    def out_features(self) -> int:
        return self.layers[-1].out_features

    def reset(self, batch_size: int) -> None:
        for layer in self.layers:
            layer.reset(batch_size)

    def step(self, input_spikes: Tensor) -> Tensor:
        spikes = input_spikes
        for layer in self.layers:
            spikes = layer.step(spikes)
        return spikes

    def spike_counts(self) -> List[float]:
        """Total spikes emitted by each layer at the current step.

        Used by the Loihi energy model to count events.
        """
        return [float(layer.state.spikes.data.sum()) for layer in self.layers]

    # -- inference fast path -------------------------------------------
    def make_inference_states(self, batch_size: int) -> List[LIFInferenceState]:
        """One preallocated buffer set per layer for a fused unroll."""
        return [layer.make_inference_state(batch_size) for layer in self.layers]

    def step_inference(
        self, input_spikes: np.ndarray, states: List[LIFInferenceState]
    ) -> np.ndarray:
        """Graph-free step through every layer (Algorithm 1 inner loop)."""
        spikes = input_spikes
        for layer, state in zip(self.layers, states):
            spikes = layer.step_inference(spikes, state)
        return spikes
