"""Spiking layers: weighted synapses feeding two-state LIF populations.

A :class:`SpikingLinear` owns the synaptic weight matrix and the LIF
population it projects onto.  During a forward unroll the caller drives
it step by step; the layer threads its :class:`~repro.snn.neurons.LIFState`
through the autograd graph so STBP (eq. (13)) emerges from ordinary
backpropagation over the unrolled graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..autograd import Tensor
from ..autograd import functional as F
from ..autograd.nn import Module, Parameter, kaiming_uniform
from .neurons import (
    LIFInferenceState,
    LIFParameters,
    LIFState,
    LIFTrainTape,
    lif_backward_step,
    lif_step,
    lif_step_inference,
    lif_step_train,
)
from .surrogate import SurrogateGradient, rectangular


@dataclass
class SpikingLinearTape:
    """Static tape of one :class:`SpikingLinear` unroll for training.

    Wraps the layer's :class:`~repro.snn.neurons.LIFTrainTape` with the
    buffers the synaptic backward needs: the weight-gradient accumulator
    (kept ``(in, out)`` so the per-step ``xᵀ @ g`` lands in it directly;
    it is transposed once when flushed into ``weight.grad``), a per-step
    scratch pair, and the input-gradient buffer handed to the layer
    below.  Allocated once per (batch, T) and reused across train steps.
    """

    lif: LIFTrainTape
    g_weight: np.ndarray       # (in, out) accumulated over t = T..1
    g_weight_step: np.ndarray  # (in, out) single-step scratch
    g_bias: np.ndarray         # (out,) accumulated over t = T..1
    g_bias_step: np.ndarray    # (out,) single-step scratch
    g_input: np.ndarray        # (batch, in) gradient into the layer input


class SpikingLinear(Module):
    """Fully-connected synapses followed by a two-state LIF population."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        lif: Optional[LIFParameters] = None,
        surrogate: Optional[SurrogateGradient] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"invalid layer size ({in_features}, {out_features})"
            )
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.lif = lif if lif is not None else LIFParameters()
        self.surrogate = surrogate if surrogate is not None else rectangular()
        self.weight = Parameter(
            kaiming_uniform((out_features, in_features), in_features, rng)
        )
        self.bias = Parameter(np.zeros(out_features))
        self._state: Optional[LIFState] = None

    # ------------------------------------------------------------------
    def reset(self, batch_size: int) -> None:
        """Zero the LIF state ahead of a fresh ``T``-step unroll."""
        self._state = LIFState.zeros((batch_size, self.out_features))

    @property
    def state(self) -> LIFState:
        if self._state is None:
            raise RuntimeError("layer state not initialised; call reset() first")
        return self._state

    def step(self, input_spikes: Tensor) -> Tensor:
        """One timestep: synaptic integration + LIF dynamics.

        Parameters
        ----------
        input_spikes:
            ``(batch, in_features)`` spike (or encoder-output) tensor.

        Returns
        -------
        ``(batch, out_features)`` output spike tensor for this step.
        """
        if self._state is None:
            raise RuntimeError("layer state not initialised; call reset() first")
        drive = F.linear(input_spikes, self.weight, self.bias)
        self._state = lif_step(drive, self._state, self.lif, self.surrogate)
        return self._state.spikes

    # -- inference fast path -------------------------------------------
    def make_inference_state(self, batch_size: int) -> LIFInferenceState:
        """Preallocated ``c``/``v``/``o`` buffers for one fused unroll."""
        return LIFInferenceState.zeros((batch_size, self.out_features))

    def step_inference(
        self, input_spikes: np.ndarray, state: LIFInferenceState
    ) -> np.ndarray:
        """One graph-free timestep, bit-identical to :meth:`step`.

        The synaptic drive is the same ``x @ W.T + b`` the autograd path
        computes; the LIF update runs in place on ``state``'s buffers.
        Returns the layer's spike buffer (valid until the next call).
        """
        drive = input_spikes @ self.weight.data.T + self.bias.data
        return lif_step_inference(drive, state, self.lif)

    # -- training fast path --------------------------------------------
    def make_train_tape(self, batch_size: int, timesteps: int) -> SpikingLinearTape:
        """Preallocated forward/backward buffers for fused STBP training."""
        return SpikingLinearTape(
            lif=LIFTrainTape.zeros(timesteps, (batch_size, self.out_features)),
            g_weight=np.empty((self.in_features, self.out_features)),
            g_weight_step=np.empty((self.in_features, self.out_features)),
            g_bias=np.empty(self.out_features),
            g_bias_step=np.empty(self.out_features),
            g_input=np.empty((batch_size, self.in_features)),
        )

    def step_train(
        self, input_spikes: np.ndarray, tape: SpikingLinearTape, t: int
    ) -> np.ndarray:
        """Fused training forward for timestep ``t`` (1-based).

        Same arithmetic as :meth:`step` (``x @ W.T + b`` then the LIF
        update) but recorded onto the preallocated tape instead of the
        closure graph; bit-identical spikes, zero allocations.
        """
        drive = tape.lif.drive
        np.matmul(input_spikes, self.weight.data.T, out=drive)
        np.add(drive, self.bias.data, out=drive)
        return lif_step_train(drive, tape.lif, self.lif, t)

    def backward_step_train(
        self,
        grad_spikes: np.ndarray,
        input_spikes: np.ndarray,
        tape: SpikingLinearTape,
        t: int,
        need_input_grad: bool = True,
    ) -> Optional[np.ndarray]:
        """Analytic backward through timestep ``t`` (call t = T..1).

        Replays the LIF recurrences via
        :func:`~repro.snn.neurons.lif_backward_step`, then mirrors the
        closure-graph linear backward: ``dW += (xᵀ @ dI)ᵀ``,
        ``db += dI.sum(axis=0)`` (accumulated in the graph's t = T..1
        order) and, when requested, returns ``dI @ W`` — the gradient
        into this layer's input spikes (``tape.g_input``, valid until
        the next call).
        """
        g_drive = lif_backward_step(grad_spikes, tape.lif, self.lif, self.surrogate, t)
        # np.add.reduce is what ndarray.sum(axis=0) dispatches to —
        # identical result without the fromnumeric wrapper overhead.
        if t == tape.lif.timesteps:
            np.matmul(input_spikes.T, g_drive, out=tape.g_weight)
            np.add.reduce(g_drive, axis=0, out=tape.g_bias)
        else:
            np.matmul(input_spikes.T, g_drive, out=tape.g_weight_step)
            np.add(tape.g_weight, tape.g_weight_step, out=tape.g_weight)
            np.add.reduce(g_drive, axis=0, out=tape.g_bias_step)
            np.add(tape.g_bias, tape.g_bias_step, out=tape.g_bias)
        if need_input_grad:
            np.matmul(g_drive, self.weight.data, out=tape.g_input)
            return tape.g_input
        return None

    def finalize_train_grads(self, tape: SpikingLinearTape) -> None:
        """Flush the tape's accumulated gradients into ``.grad``."""
        self.weight._accumulate(tape.g_weight.T)
        self.bias._accumulate(tape.g_bias)

    def __repr__(self) -> str:
        return (
            f"SpikingLinear({self.in_features}, {self.out_features}, "
            f"Vth={self.lif.v_threshold}, dc={self.lif.current_decay}, "
            f"dv={self.lif.voltage_decay})"
        )


class SpikingStack(Module):
    """A stack of :class:`SpikingLinear` layers stepped together.

    Corresponds to the ``for k = 1..L`` loop of Algorithm 1.
    """

    def __init__(self, layers: List[SpikingLinear]):
        super().__init__()
        if not layers:
            raise ValueError("SpikingStack requires at least one layer")
        for prev, nxt in zip(layers, layers[1:]):
            if prev.out_features != nxt.in_features:
                raise ValueError(
                    f"layer size mismatch: {prev.out_features} -> {nxt.in_features}"
                )
        self.layers = layers

    @property
    def in_features(self) -> int:
        return self.layers[0].in_features

    @property
    def out_features(self) -> int:
        return self.layers[-1].out_features

    def reset(self, batch_size: int) -> None:
        for layer in self.layers:
            layer.reset(batch_size)

    def step(self, input_spikes: Tensor) -> Tensor:
        spikes = input_spikes
        for layer in self.layers:
            spikes = layer.step(spikes)
        return spikes

    def spike_counts(self) -> List[float]:
        """Total spikes emitted by each layer at the current step.

        Used by the Loihi energy model to count events.
        """
        return [float(layer.state.spikes.data.sum()) for layer in self.layers]

    # -- training fast path --------------------------------------------
    def make_train_tapes(self, batch_size: int, timesteps: int) -> List[SpikingLinearTape]:
        """One preallocated train tape per layer for fused STBP."""
        return [layer.make_train_tape(batch_size, timesteps) for layer in self.layers]

    def step_train(
        self, input_spikes: np.ndarray, tapes: List[SpikingLinearTape], t: int
    ) -> np.ndarray:
        """Fused recorded step through every layer (Algorithm 1 inner loop)."""
        spikes = input_spikes
        for layer, tape in zip(self.layers, tapes):
            spikes = layer.step_train(spikes, tape, t)
        return spikes

    # -- inference fast path -------------------------------------------
    def make_inference_states(self, batch_size: int) -> List[LIFInferenceState]:
        """One preallocated buffer set per layer for a fused unroll."""
        return [layer.make_inference_state(batch_size) for layer in self.layers]

    def step_inference(
        self, input_spikes: np.ndarray, states: List[LIFInferenceState]
    ) -> np.ndarray:
        """Graph-free step through every layer (Algorithm 1 inner loop)."""
        spikes = input_spikes
        for layer, state in zip(self.layers, states):
            spikes = layer.step_inference(spikes, state)
        return spikes
