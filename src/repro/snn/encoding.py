"""Population coding of continuous states into spike trains (eqs. (2)-(4)).

Each dimension of the M-dimensional state is represented by a population
of ``pop_size`` neurons with Gaussian receptive fields.  Receptive-field
means are evenly spaced over the (configurable) state range and the
shared standard deviation keeps "non-zero population activity in all
state spaces" (paper §II.B).

Two spike-generation modes are implemented:

* ``deterministic`` — one-step soft-reset LIF accumulators driven by the
  stimulation strength (eqs. (3)-(4)); this is the mode the paper
  deploys on Loihi.
* ``probabilistic`` — Bernoulli spikes with per-step probability equal
  to the stimulation strength.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

DEFAULT_POP_SIZE = 10
DEFAULT_EPSILON = 1e-3


@dataclass
class EncoderBuffers:
    """Preallocated scratch for :meth:`PopulationEncoder.encode_buffered`.

    One set per (batch, timesteps); the fused training path reuses it
    across train steps so encoding allocates nothing per step.
    """

    stim: np.ndarray      # (batch, state_dim, pop_size) receptive-field scratch
    scaled: np.ndarray    # (batch, state_dim, pop_size) activation scratch
    voltage: np.ndarray   # (batch, num_neurons) accumulator
    fired: np.ndarray     # (batch, num_neurons) bool threshold mask
    spikes: np.ndarray    # (timesteps, batch, num_neurons) output train

    @classmethod
    def zeros(
        cls, batch: int, state_dim: int, pop_size: int, timesteps: int
    ) -> "EncoderBuffers":
        neurons = state_dim * pop_size
        return cls(
            stim=np.empty((batch, state_dim, pop_size)),
            scaled=np.empty((batch, state_dim, pop_size)),
            voltage=np.empty((batch, neurons)),
            fired=np.empty((batch, neurons), dtype=bool),
            spikes=np.empty((timesteps, batch, neurons)),
        )


@dataclass(frozen=True)
class EncoderConfig:
    """Configuration of the Gaussian population encoder.

    Parameters
    ----------
    state_dim:
        Number of continuous state dimensions (M).
    pop_size:
        Neurons per dimension; total encoder neurons = M · pop_size.
    v_min, v_max:
        State-space range covered by the receptive-field means μ.  States
        are expected (but not required) to lie inside; values outside
        still stimulate the nearest population tails.
    sigma_scale:
        σ as a multiple of the spacing between adjacent means, chosen so
        adjacent receptive fields overlap (population activity is nowhere
        zero).
    epsilon:
        Soft-reset constant ε of eq. (4): threshold is ``1 − ε``.
    mode:
        ``"deterministic"`` or ``"probabilistic"``.
    """

    state_dim: int
    pop_size: int = DEFAULT_POP_SIZE
    v_min: float = -1.0
    v_max: float = 1.0
    sigma_scale: float = 0.5
    epsilon: float = DEFAULT_EPSILON
    mode: str = "deterministic"

    def __post_init__(self):
        if self.state_dim <= 0:
            raise ValueError(f"state_dim must be positive, got {self.state_dim}")
        if self.pop_size < 2:
            raise ValueError(f"pop_size must be >= 2, got {self.pop_size}")
        if self.v_max <= self.v_min:
            raise ValueError(
                f"invalid state range [{self.v_min}, {self.v_max}]"
            )
        if self.mode not in ("deterministic", "probabilistic"):
            raise ValueError(f"unknown encoding mode {self.mode!r}")
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {self.epsilon}")

    @property
    def num_neurons(self) -> int:
        return self.state_dim * self.pop_size


class PopulationEncoder:
    """Gaussian receptive-field population encoder.

    The encoder is stateless across calls: each :meth:`encode` starts
    with zero accumulator voltages, matching the per-inference reset of
    Algorithm 1.
    """

    def __init__(
        self, config: EncoderConfig, rng: Optional[np.random.Generator] = None
    ):
        self.config = config
        self._rng = rng if rng is not None else np.random.default_rng(0)
        spacing = (config.v_max - config.v_min) / (config.pop_size - 1)
        # Evenly spaced means over the state range (paper: "μ equals the
        # equal distribution of state space").
        self.means = np.linspace(config.v_min, config.v_max, config.pop_size)
        self.sigma = config.sigma_scale * spacing

    # ------------------------------------------------------------------
    def stimulation(self, states: np.ndarray) -> np.ndarray:
        """Stimulation strength A_E of eq. (2) for a batch of states.

        Parameters
        ----------
        states:
            Array of shape ``(batch, state_dim)``.

        Returns
        -------
        Array of shape ``(batch, state_dim * pop_size)`` with values in
        (0, 1].
        """
        states = np.asarray(states, dtype=np.float64)
        if states.ndim == 1:
            states = states[None, :]
        if states.shape[1] != self.config.state_dim:
            raise ValueError(
                f"expected state_dim={self.config.state_dim}, "
                f"got states of shape {states.shape}"
            )
        # (B, M, 1) vs (P,) -> (B, M, P)
        z = (states[:, :, None] - self.means[None, None, :]) / self.sigma
        activation = np.exp(-0.5 * z * z)
        return activation.reshape(states.shape[0], -1)

    # ------------------------------------------------------------------
    def encode(self, states: np.ndarray, timesteps: int) -> np.ndarray:
        """Generate spike trains for ``timesteps`` steps.

        Returns an array of shape ``(timesteps, batch, num_neurons)``
        with entries in {0, 1}.
        """
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        drive = self.stimulation(states)
        if self.config.mode == "deterministic":
            return self._encode_deterministic(drive, timesteps)
        return self._encode_probabilistic(drive, timesteps)

    def _encode_deterministic(self, drive: np.ndarray, timesteps: int) -> np.ndarray:
        """One-step soft-reset LIF accumulators (eqs. (3)-(4)).

        The whole train is emitted as one ``(T, batch, neurons)`` array;
        the accumulator voltage is updated in place so the per-step loop
        allocates only the boolean fired mask.
        """
        threshold = 1.0 - self.config.epsilon
        voltage = np.zeros_like(drive)
        spikes = np.empty((timesteps,) + drive.shape, dtype=np.float64)
        for t in range(timesteps):
            np.add(voltage, drive, out=voltage)  # eq. (3): no leak
            fired = voltage > threshold
            spikes[t] = fired
            # eq. (4): soft reset — subtract the threshold where fired.
            np.subtract(voltage, threshold, out=voltage, where=fired)
        return spikes

    def make_buffers(self, batch: int, timesteps: int) -> EncoderBuffers:
        """Preallocated scratch for :meth:`encode_buffered`."""
        return EncoderBuffers.zeros(
            batch, self.config.state_dim, self.config.pop_size, timesteps
        )

    def encode_buffered(
        self, states: np.ndarray, timesteps: int, buffers: EncoderBuffers
    ) -> np.ndarray:
        """Allocation-free :meth:`encode`, bit-identical spike trains.

        Deterministic mode runs the stimulation chain (eq. (2)) and the
        soft-reset accumulator loop (eqs. (3)-(4)) entirely on
        ``buffers``; the probabilistic mode falls back to :meth:`encode`
        (its Bernoulli draws must consume the RNG stream identically).
        Returns ``buffers.spikes`` — valid until the next call.
        """
        if self.config.mode != "deterministic":
            return self.encode(states, timesteps)
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        states = np.asarray(states, dtype=np.float64)
        if states.ndim == 1:
            states = states[None, :]
        if states.shape[1] != self.config.state_dim:
            raise ValueError(
                f"expected state_dim={self.config.state_dim}, "
                f"got states of shape {states.shape}"
            )
        # Stimulation A_E (eq. (2)): same ops as stimulation(), buffered.
        np.subtract(states[:, :, None], self.means[None, None, :], out=buffers.stim)
        np.divide(buffers.stim, self.sigma, out=buffers.stim)          # z
        np.multiply(buffers.stim, -0.5, out=buffers.scaled)
        np.multiply(buffers.scaled, buffers.stim, out=buffers.scaled)  # −z²/2
        np.exp(buffers.scaled, out=buffers.scaled)
        drive = buffers.scaled.reshape(states.shape[0], -1)
        # Soft-reset accumulators (eqs. (3)-(4)), in place.
        threshold = 1.0 - self.config.epsilon
        voltage, fired, spikes = buffers.voltage, buffers.fired, buffers.spikes
        voltage.fill(0.0)
        for t in range(timesteps):
            np.add(voltage, drive, out=voltage)
            np.greater(voltage, threshold, out=fired)
            spikes[t] = fired
            np.subtract(voltage, threshold, out=voltage, where=fired)
        return spikes

    def _encode_probabilistic(self, drive: np.ndarray, timesteps: int) -> np.ndarray:
        """Bernoulli spikes with per-step probability A_E."""
        probs = np.clip(drive, 0.0, 1.0)
        draws = self._rng.random((timesteps,) + probs.shape)
        return (draws < probs).astype(np.float64)

    # ------------------------------------------------------------------
    def expected_rate(self, states: np.ndarray) -> np.ndarray:
        """Long-run firing rate per neuron for a batch of states.

        For deterministic encoding the asymptotic rate is
        ``A_E / (1 − ε)`` (clipped to 1); for probabilistic it is
        ``A_E`` itself.  Useful as a test oracle and for encoder
        visualisation.
        """
        drive = self.stimulation(states)
        if self.config.mode == "deterministic":
            return np.minimum(drive / (1.0 - self.config.epsilon), 1.0)
        return np.clip(drive, 0.0, 1.0)
