"""Lightweight result/model (de)serialisation.

Models are saved as ``.npz`` state dicts; experiment results as JSON
with numpy scalars coerced to Python types.

The module also owns the repo's *tagged-value codec*: config dataclasses
(:class:`~repro.envs.observations.ObservationConfig`,
:class:`~repro.snn.neurons.LIFParameters`,
:class:`~repro.data.splits.ExperimentWindow`, ...) are encoded as JSON
objects carrying a ``"__type__"`` tag so strategy specs and experiment
configurations round-trip through checkpoints and artifact stores.  The
tag table is a registry — the modules that own a config type register it
with :func:`register_tagged_type` — so the codec never imports the rest
of the repo.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Type, Union

import numpy as np

PathLike = Union[str, Path]

# ----------------------------------------------------------------------
# npz / json primitives
#
# All writes are atomic: content lands in a same-directory temp file
# first, then ``os.replace`` publishes it in one step.  A reader (or a
# resume scan) therefore never sees a torn half-written npz/json — it
# sees either the old file, no file, or the complete new file.


def _atomic_replace(path: Path, tmp: Path) -> None:
    try:
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def save_state_dict(path: PathLike, state: Dict[str, np.ndarray]) -> None:
    """Persist a module state dict to an ``.npz`` archive (atomically)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # np.savez appends ".npz" to names that lack it, so the temp name
    # keeps the suffix to stay predictable.
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp.npz")
    try:
        np.savez(tmp, **state)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _atomic_replace(path, tmp)


def load_state_dict(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state_dict`."""
    with np.load(Path(path)) as archive:
        return {key: archive[key] for key in archive.files}


def _coerce(value: Any) -> Any:
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _coerce(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_coerce(v) for v in value]
    return value


def save_json(path: PathLike, payload: Dict[str, Any]) -> None:
    """Write a JSON result file atomically, coercing numpy types."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(json.dumps(_coerce(payload), indent=2, sort_keys=True))
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _atomic_replace(path, tmp)


def load_json(path: PathLike) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())


# ----------------------------------------------------------------------
# Tagged-value codec

_TAGGED_TYPES: Dict[str, Type] = {}


def register_tagged_type(cls: Type, name: Optional[str] = None) -> Type:
    """Register a dataclass for tagged JSON encoding.

    Idempotent for the same class; registering a *different* class under
    a taken name raises (tags are global identities in checkpoints).
    Returns ``cls`` so it can be used as a class decorator.
    """
    key = name if name is not None else cls.__name__
    existing = _TAGGED_TYPES.get(key)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"tagged type {key!r} is already registered to "
            f"{existing.__module__}.{existing.__qualname__}"
        )
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"tagged type {key!r} must be a dataclass")
    _TAGGED_TYPES[key] = cls
    return cls


def encode_tagged(value: Any) -> Any:
    """Encode ``value`` into JSON-safe data.

    Registered dataclasses become ``{"__type__": name, ...fields}``;
    numpy scalars/arrays become Python scalars/lists; dicts, lists, and
    tuples recurse.  Unknown object types raise ``TypeError`` (callers
    that need "encodable?" as a predicate catch it).
    """
    for name, cls in _TAGGED_TYPES.items():
        if isinstance(value, cls):
            payload = {
                f.name: encode_tagged(getattr(value, f.name))
                for f in dataclasses.fields(value)
            }
            payload["__type__"] = name
            return payload
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): encode_tagged(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_tagged(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"value of type {type(value).__name__} is not checkpointable"
    )


def decode_tagged(value: Any) -> Any:
    """Invert :func:`encode_tagged`, rebuilding registered dataclasses."""
    if isinstance(value, dict):
        tag = value.get("__type__")
        if tag is not None:
            cls = _TAGGED_TYPES.get(tag)
            if cls is None:
                raise ValueError(f"unknown tagged type {tag!r} in checkpoint")
            kwargs = {
                k: decode_tagged(v) for k, v in value.items() if k != "__type__"
            }
            return cls(**kwargs)
        return {k: decode_tagged(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_tagged(v) for v in value]
    return value
