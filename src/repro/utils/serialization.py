"""Lightweight result/model (de)serialisation.

Models are saved as ``.npz`` state dicts; experiment results as JSON
with numpy scalars coerced to Python types.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

PathLike = Union[str, Path]


def save_state_dict(path: PathLike, state: Dict[str, np.ndarray]) -> None:
    """Persist a module state dict to an ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **state)


def load_state_dict(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state_dict`."""
    with np.load(Path(path)) as archive:
        return {key: archive[key] for key in archive.files}


def _coerce(value: Any) -> Any:
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _coerce(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_coerce(v) for v in value]
    return value


def save_json(path: PathLike, payload: Dict[str, Any]) -> None:
    """Write a JSON result file, coercing numpy types."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_coerce(payload), indent=2, sort_keys=True))


def load_json(path: PathLike) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())
