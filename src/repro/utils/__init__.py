"""Shared utilities: deterministic RNG streams, ASCII tables, serialisation."""

from .rng import make_rng, spawn, stable_hash
from .serialization import load_json, load_state_dict, save_json, save_state_dict
from .tables import format_table

__all__ = [
    "format_table",
    "load_json",
    "load_state_dict",
    "make_rng",
    "save_json",
    "save_state_dict",
    "spawn",
    "stable_hash",
]
