"""Plain-text table rendering for the benchmark harness.

The benches print rows in the same layout as the paper's tables so the
paper-vs-measured comparison in EXPERIMENTS.md is mechanical.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an ASCII table with aligned columns."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if cell != 0 and (abs(cell) >= 1e5 or abs(cell) < 1e-3):
                return f"{cell:.3e}"
            return float_fmt.format(cell)
        return str(cell)

    str_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
