"""Deterministic random-number management.

Every stochastic component in the reproduction takes an explicit
``numpy.random.Generator``.  :func:`spawn` derives independent child
generators from a parent seed so that adding a new consumer never
perturbs the streams of existing ones.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a Generator from a seed, an existing generator, or fresh."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent child generators."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.integers(0, 2 ** 63, size=n)]
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def stable_hash(text: str, modulus: int = 2 ** 31 - 1) -> int:
    """Deterministic string hash (Python's ``hash`` is salted per process)."""
    value = 2166136261
    for ch in text.encode("utf-8"):
        value = (value ^ ch) * 16777619 % (2 ** 32)
    return value % modulus
