"""Slippage / market-impact model zoo.

The back-test's transaction remainder factor μ_t (``envs/costs.py``)
prices every trade at a flat commission, which is the paper's setting —
but Poloniex circa 2016–2021 is a thin-liquidity venue where *impact*
(the price concession paid for demanding liquidity now) dominates real
execution cost.  A :class:`SlippageModel` turns per-asset trade
*participation* — trade notional over the tradable volume of the
decision period — into a fractional cost rate on the traded notional:

.. math::

    \\text{cost}_i = f(q_i / V_i) \\qquad q_i = |\\Delta w_i| \\cdot p_t
    \\cdot \\text{notional}, \\quad V_i = \\text{ADV}_i \\cdot \\text{depth}_i

All models are vectorized over ``(batch, assets)`` arrays, like the
fused cost kernels, so the execution engine can price a whole lockstep
round (or a micro-batched serving round) in one call.

Implementations
---------------
* :class:`ZeroSlippage` — exactly zero cost; the sentinel the fast
  paths key on (an engine carrying it is bit-identical to no engine).
* :class:`LinearImpact` — ``cost = c · participation``: the standard
  first-order (Kyle-lambda) model; cheap, differentiable, and the
  closed form hand-checked in the tests.
* :class:`SquareRootImpact` — ``cost = c · σ · sqrt(participation)``
  à la Almgren–Chriss: the empirical square-root law of market impact,
  with an optional per-period volatility scale.
* :class:`DepthLimited` — hard per-asset participation caps with
  partial fills (the remainder of the order simply does not trade),
  plus a linear penalty on the filled portion.  The cap is what the
  execution engine's fill logic consumes.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "DepthLimited",
    "LinearImpact",
    "SlippageModel",
    "SquareRootImpact",
    "ZeroSlippage",
]


@runtime_checkable
class SlippageModel(Protocol):
    """What the execution engine needs from an impact model.

    ``cost_rates`` maps participation fractions (trade notional over
    per-period tradable volume, shape ``(batch, assets)`` or
    ``(assets,)``) to fractional costs on the traded notional, same
    shape.  ``participation_cap`` is the per-asset fill limit as a
    fraction of period volume (``None`` = no cap, full fills).
    ``is_free`` is True only when the model provably charges nothing
    and never caps — the hook the zero-cost fast paths key on.
    """

    def cost_rates(self, participation: np.ndarray) -> np.ndarray: ...

    @property
    def participation_cap(self) -> Optional[float]: ...

    @property
    def is_free(self) -> bool: ...


class ZeroSlippage:
    """Frictionless fills: zero impact, no caps.

    An :class:`~repro.execution.engine.ExecutionEngine` carrying this
    model reproduces the commission-only back-test bit for bit; layers
    that can skip the execution machinery outright when ``is_free``
    (serving's micro-batched rounds) do so.
    """

    @property
    def participation_cap(self) -> Optional[float]:
        return None

    @property
    def is_free(self) -> bool:
        return True

    def cost_rates(self, participation: np.ndarray) -> np.ndarray:
        return np.zeros_like(np.asarray(participation, dtype=np.float64))

    def __repr__(self) -> str:
        return "ZeroSlippage()"


class LinearImpact:
    """First-order (Kyle) impact: ``cost = coefficient · participation``.

    ``coefficient`` is the fractional cost at 100% participation; e.g.
    ``LinearImpact(0.1)`` charges 10 bp on a trade that is 1% of the
    period's tradable volume.
    """

    def __init__(self, coefficient: float):
        if coefficient < 0:
            raise ValueError(f"coefficient must be non-negative, got {coefficient}")
        self.coefficient = float(coefficient)

    @property
    def participation_cap(self) -> Optional[float]:
        return None

    @property
    def is_free(self) -> bool:
        return self.coefficient == 0.0

    def cost_rates(self, participation: np.ndarray) -> np.ndarray:
        p = np.asarray(participation, dtype=np.float64)
        return self.coefficient * p

    def __repr__(self) -> str:
        return f"LinearImpact({self.coefficient})"


class SquareRootImpact:
    """Almgren–Chriss square-root law: ``cost = c · σ · sqrt(q/V)``.

    ``volatility`` is the per-period return volatility scale σ (the
    regime-switching generator's candles carry exactly this structure);
    the default 1.0 folds σ into the coefficient for callers that
    calibrate ``c`` directly.
    """

    def __init__(self, coefficient: float, volatility: float = 1.0):
        if coefficient < 0:
            raise ValueError(f"coefficient must be non-negative, got {coefficient}")
        if volatility < 0:
            raise ValueError(f"volatility must be non-negative, got {volatility}")
        self.coefficient = float(coefficient)
        self.volatility = float(volatility)

    @property
    def participation_cap(self) -> Optional[float]:
        return None

    @property
    def is_free(self) -> bool:
        return self.coefficient == 0.0 or self.volatility == 0.0

    def cost_rates(self, participation: np.ndarray) -> np.ndarray:
        p = np.asarray(participation, dtype=np.float64)
        return self.coefficient * self.volatility * np.sqrt(np.maximum(p, 0.0))

    def __repr__(self) -> str:
        return f"SquareRootImpact({self.coefficient}, volatility={self.volatility})"


class DepthLimited:
    """Per-asset liquidity caps with partial fills + linear penalty.

    ``max_participation`` is the largest fraction of a period's tradable
    volume one order may consume; the engine fills up to the cap and
    leaves the rest of the order undone (weights stay closer to the
    drifted portfolio — the *fill ratio* shows up in the
    implementation-shortfall report).  ``impact_coefficient`` prices the
    filled portion linearly, like :class:`LinearImpact`.
    """

    def __init__(self, max_participation: float, impact_coefficient: float = 0.0):
        if not 0.0 < max_participation:
            raise ValueError(
                f"max_participation must be positive, got {max_participation}"
            )
        if impact_coefficient < 0:
            raise ValueError(
                f"impact_coefficient must be non-negative, got {impact_coefficient}"
            )
        self.max_participation = float(max_participation)
        self.impact_coefficient = float(impact_coefficient)

    @property
    def participation_cap(self) -> Optional[float]:
        return self.max_participation

    @property
    def is_free(self) -> bool:
        return False  # caps alter fills even at zero impact cost

    def cost_rates(self, participation: np.ndarray) -> np.ndarray:
        p = np.asarray(participation, dtype=np.float64)
        return self.impact_coefficient * np.minimum(p, self.max_participation)

    def __repr__(self) -> str:
        return (
            f"DepthLimited({self.max_participation}, "
            f"impact_coefficient={self.impact_coefficient})"
        )
