"""Liquidity-aware execution & slippage simulation.

Models how target weights actually get filled on a thin-liquidity
venue: a :class:`SlippageModel` zoo (zero / linear / square-root /
depth-limited impact, all vectorized over ``(batch, assets)``) and the
:class:`ExecutionEngine` that wraps the exact commission fixed point,
applies impact and partial fills, and reports implementation-shortfall
inputs.  Threaded through the back-tester, walk-forward evaluation, the
serving layer, and the experiment grid's ``ExecutionRegime`` axis; with
the default :class:`ZeroSlippage` model everything is bit-identical to
the commission-only path.
"""

from .engine import ExecutionEngine, ExecutionFill
from .models import (
    DepthLimited,
    LinearImpact,
    SlippageModel,
    SquareRootImpact,
    ZeroSlippage,
)

__all__ = [
    "DepthLimited",
    "ExecutionEngine",
    "ExecutionFill",
    "LinearImpact",
    "SlippageModel",
    "SquareRootImpact",
    "ZeroSlippage",
]
