"""The execution engine: target weights → realized fills.

``ExecutionEngine`` is the layer between a strategy's decision and the
portfolio it actually ends up holding.  Given the drifted pre-trade
weights ``w'_t``, the requested target ``w_t``, the portfolio value and
the decision period's tradable volume, it:

1. applies the model's per-asset participation caps (partial fills —
   capped buys are additionally limited by the cash actually available
   from starting cash plus realized sale proceeds, so a capped sell can
   never fund a leveraged buy);
2. charges the exact commission remainder μ_t
   (:func:`~repro.envs.costs.transaction_remainder_exact`) on the
   *executed* rebalance;
3. charges the model's impact cost on each executed trade's
   participation, shrinking μ_t further.

The zero-cost invariant: with :class:`~repro.execution.models.ZeroSlippage`
(no caps, zero rates) the executed weights are the target array itself
and the returned μ_t is bit-identical to the commission-only fixed
point — the whole execution layer is a numerical no-op, which is what
the parity tests and ``bench_throughput.py --check`` gate.

Portfolio notional
------------------
Back-tests normalise the portfolio to value 1, but impact depends on
*money*: ``portfolio_notional`` is the assumed real size (quote units)
of a portfolio of value 1.0, so participation is
``|Δw| · value · notional / tradable_volume``.  Sweeping it answers
"at what AUM do the paper's fAPVs stop surviving execution?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..data.market import MarketData
from ..envs.costs import DEFAULT_COMMISSION, transaction_remainder_exact
from .models import SlippageModel, ZeroSlippage

__all__ = ["ExecutionEngine", "ExecutionFill"]

# Volume floor: a dead market (zero printed volume) reads as "one quote
# unit per period" rather than a division by zero; any realistic trade
# against it then saturates participation (and the cap, if any).
_MIN_VOLUME = 1e-12


@dataclass
class ExecutionFill:
    """Outcome of executing one rebalance.

    ``weights`` are the post-trade target actually achieved (equal to
    the requested target under full fills); ``mu`` the total value
    remainder (commission × impact); ``ideal_mu`` the commission-only
    remainder of the *requested* full-fill rebalance — the benchmark
    implementation shortfall is measured against.
    """

    weights: np.ndarray
    mu: float
    commission_mu: float
    ideal_mu: float
    slippage_cost: float
    fill_ratio: float


class ExecutionEngine:
    """Prices and (partially) fills rebalances against market liquidity.

    Parameters
    ----------
    model:
        The slippage model (default :class:`ZeroSlippage` — exact
        commission-only behaviour).
    commission:
        Per-side commission rate for the exact μ_t fixed point.
    portfolio_notional:
        Quote-unit size of a value-1.0 portfolio (see module docs).
    adv_window_days:
        Trailing window of :meth:`~repro.data.market.MarketData.adv_panel`
        used as the per-period tradable volume.
    """

    def __init__(
        self,
        model: Optional[SlippageModel] = None,
        commission: float = DEFAULT_COMMISSION,
        portfolio_notional: float = 1e6,
        adv_window_days: float = 1.0,
    ):
        if portfolio_notional <= 0:
            raise ValueError("portfolio_notional must be positive")
        if adv_window_days <= 0:
            raise ValueError("adv_window_days must be positive")
        self.model: SlippageModel = model if model is not None else ZeroSlippage()
        self.commission = float(commission)
        self.portfolio_notional = float(portfolio_notional)
        self.adv_window_days = float(adv_window_days)

    @property
    def is_free(self) -> bool:
        """True when this engine provably never alters the trade — the
        hook serving's fast path keys on."""
        return self.model.is_free

    # ------------------------------------------------------------------
    def tradable_volume(self, data: MarketData, t: int) -> np.ndarray:
        """Per-asset tradable volume of decision period ``t`` (quote
        units): the panel's trailing ADV, floored away from zero."""
        window = max(
            int(self.adv_window_days * 86_400 / data.period_seconds), 1
        )
        return np.maximum(data.adv_panel(window)[t], _MIN_VOLUME)

    # ------------------------------------------------------------------
    def execute(
        self,
        w_drifted: np.ndarray,
        w_target: np.ndarray,
        value: float,
        volume: np.ndarray,
    ) -> ExecutionFill:
        """Fill one rebalance: ``w'_t`` → target, against ``volume``.

        ``w_drifted``/``w_target`` are simplex weight vectors (cash
        first); ``volume`` the per-asset tradable volume (quote units)
        of the decision period; ``value`` the current portfolio value in
        back-test units (scaled by ``portfolio_notional`` internally).
        """
        w_prime = np.asarray(w_drifted, dtype=np.float64)
        target = np.asarray(w_target, dtype=np.float64)
        volume = np.maximum(np.asarray(volume, dtype=np.float64), _MIN_VOLUME)
        notional = float(value) * self.portfolio_notional

        cap = self.model.participation_cap
        if cap is None:
            executed = target
            fill_ratio = 1.0
        else:
            executed, fill_ratio = self._partial_fill(
                w_prime, target, notional, volume, cap
            )

        commission_mu = transaction_remainder_exact(
            w_prime, executed, self.commission, self.commission
        )
        if executed is target:
            ideal_mu = commission_mu
        else:
            ideal_mu = transaction_remainder_exact(
                w_prime, target, self.commission, self.commission
            )

        trade = np.abs(executed[1:] - w_prime[1:])
        participation = trade * (notional / volume)
        rates = np.asarray(self.model.cost_rates(participation), dtype=np.float64)
        slippage = float((trade * rates).sum())
        if slippage != 0.0:
            # Impact can at most consume the whole portfolio; keep μ in
            # (0, 1] so log-returns stay defined.
            mu = min(max(commission_mu * (1.0 - slippage), 1e-12), 1.0)
        else:
            mu = commission_mu
        return ExecutionFill(
            weights=executed,
            mu=mu,
            commission_mu=commission_mu,
            ideal_mu=ideal_mu,
            slippage_cost=slippage,
            fill_ratio=fill_ratio,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _partial_fill(
        w_prime: np.ndarray,
        target: np.ndarray,
        notional: float,
        volume: np.ndarray,
        cap: float,
    ):
        """Cap each asset's trade at ``cap`` × its tradable volume.

        Sells fill first (up to the cap); buys fill up to the cap *and*
        the cash actually available (starting cash plus realized sale
        proceeds), scaled down pro rata if short.  Cash absorbs the
        residual, so the executed vector stays on the simplex.
        """
        wp = w_prime[1:]
        wt = target[1:]
        # Largest |Δw| each asset's liquidity admits this period.
        cap_frac = (cap * volume) / notional
        delta = wt - wp
        sells = np.minimum(np.maximum(-delta, 0.0), cap_frac)
        buys = np.minimum(np.maximum(delta, 0.0), cap_frac)
        budget = float(w_prime[0]) + float(sells.sum())
        total_buys = float(buys.sum())
        if total_buys > budget:
            buys = buys * (budget / total_buys)
        assets = wp - sells + buys
        cash = max(1.0 - float(assets.sum()), 0.0)
        executed = np.empty(w_prime.shape[0])
        executed[0] = cash
        executed[1:] = assets
        desired = float(np.abs(delta).sum())
        done = float(sells.sum() + buys.sum())
        fill_ratio = 1.0 if desired <= 0.0 else min(done / desired, 1.0)
        return executed, fill_ratio

    # ------------------------------------------------------------------
    def estimate_batch(
        self,
        w_prev: np.ndarray,
        w_target: np.ndarray,
        volume: np.ndarray,
        value: float = 1.0,
    ) -> Dict[str, np.ndarray]:
        """Vectorized pre-trade cost estimate for a batch of rebalances.

        The serving layer's advisory path: ``w_prev``/``w_target`` are
        ``(batch, n_assets+1)`` weight matrices, ``volume`` the
        ``(batch, n_assets)`` (or broadcastable ``(n_assets,)``)
        tradable volumes at each request's decision period.  Returns
        per-row ``cost`` (fraction of portfolio value expected lost to
        impact, charged — like :meth:`execute` — on the *fillable*
        portion under the model's cap), ``max_participation`` (of the
        fillable trade), and ``fill_ratio`` (expected filled fraction
        of the requested trade).  No exact μ fixed point here —
        estimates must stay allocation-light enough for the hot serving
        path.
        """
        prev = np.atleast_2d(np.asarray(w_prev, dtype=np.float64))
        tgt = np.atleast_2d(np.asarray(w_target, dtype=np.float64))
        vol = np.maximum(np.asarray(volume, dtype=np.float64), _MIN_VOLUME)
        notional = float(value) * self.portfolio_notional
        trade = np.abs(tgt[:, 1:] - prev[:, 1:])
        cap = self.model.participation_cap
        if cap is None:
            filled = trade
            fill_ratio = np.ones(trade.shape[0])
        else:
            # Trade-space fills, matching _partial_fill's semantics: a
            # participation-space ratio would let illiquid assets (huge
            # participation per unit of weight) dominate the estimate,
            # and costing the uncapped request would overstate realized
            # slippage by up to 1/fill_ratio.
            filled = np.minimum(trade, (cap * vol) / notional)
            desired = trade.sum(axis=1)
            fill_ratio = np.where(
                desired > 0.0, filled.sum(axis=1) / np.maximum(desired, 1e-300), 1.0
            )
        participation = filled * (notional / vol)
        rates = np.asarray(self.model.cost_rates(participation), dtype=np.float64)
        return {
            "cost": (filled * rates).sum(axis=1),
            "max_participation": participation.max(axis=1, initial=0.0),
            "fill_ratio": fill_ratio,
        }
