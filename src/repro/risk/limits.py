"""Portfolio risk-limit zoo: the constraints the engine composes.

Each limit describes one family of restrictions on the post-trade
weight vector ``w`` (cash first, on the probability simplex), expressed
so that :class:`~repro.risk.engine.RiskEngine` can fold the whole set
into one closed-form projection over ``(batch, assets)`` arrays:

* :class:`PositionCap` — per-asset maximum weight (scalar or per-asset
  array): no single position may exceed its cap.
* :class:`CashFloor` — minimum cash weight: gross asset exposure is
  bounded by ``1 − min_cash``.
* :class:`TurnoverBudget` — maximum L1 rebalance per decision:
  ``‖w − w'‖₁ ≤ max_turnover`` against the drifted pre-trade weights.
* :class:`LeverageSchedule` — time-indexed gross-exposure cap: a step
  schedule of ``(start_index, gross)`` breakpoints (a regime calendar
  compiles down to exactly this) bounding ``Σ_i w_i`` for ``i ≥ 1``.
* :class:`DrawdownLockout` — the one *stateful* limit: once the
  portfolio loses ``max_drawdown`` from its high-water mark, the book
  is force-flattened to cash for ``lockout_periods`` decisions, then
  trading re-enters with the mark reset to the current value.  Its
  :class:`LockoutState` is explicit (not hidden inside the limit), so
  one engine instance can guard many sessions and the state can
  round-trip through serving checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "CashFloor",
    "DrawdownLockout",
    "LeverageSchedule",
    "LockoutState",
    "PositionCap",
    "RiskLimit",
    "TurnoverBudget",
]


class RiskLimit:
    """Marker base class for everything the risk engine composes."""

    __slots__ = ()


class PositionCap(RiskLimit):
    """Per-asset maximum post-trade weight.

    ``max_weight`` is a scalar applied to every asset or a per-asset
    array (cash excluded — cash is never capped).  Caps bind the
    *target*: drift can push a holding above its cap between decisions;
    the next projection sells it back down (unless a turnover budget
    rations the trade).
    """

    __slots__ = ("max_weight",)

    def __init__(self, max_weight: Union[float, Sequence[float]]):
        cap = np.asarray(max_weight, dtype=np.float64)
        if cap.ndim not in (0, 1):
            raise ValueError(f"max_weight must be a scalar or 1-D, got shape {cap.shape}")
        if np.any(cap <= 0.0) or np.any(cap > 1.0):
            raise ValueError("max_weight entries must lie in (0, 1]")
        self.max_weight = float(cap) if cap.ndim == 0 else cap

    def caps(self, n_assets: int) -> np.ndarray:
        """The ``(n_assets,)`` per-asset cap vector this limit names."""
        cap = np.asarray(self.max_weight, dtype=np.float64)
        if cap.ndim == 0:
            return np.full(n_assets, float(cap))
        if cap.shape[0] != n_assets:
            raise ValueError(
                f"per-asset cap has {cap.shape[0]} entries for {n_assets} assets"
            )
        return cap

    def __repr__(self) -> str:
        return f"PositionCap({self.max_weight!r})"


class CashFloor(RiskLimit):
    """Minimum cash weight — a standing liquidity reserve."""

    __slots__ = ("min_cash",)

    def __init__(self, min_cash: float):
        if not 0.0 <= min_cash < 1.0:
            raise ValueError(f"min_cash must lie in [0, 1), got {min_cash}")
        self.min_cash = float(min_cash)

    def __repr__(self) -> str:
        return f"CashFloor({self.min_cash})"


class TurnoverBudget(RiskLimit):
    """Cap the L1 rebalance ``‖w − w'‖₁`` per decision.

    When the requested (already cap-projected) trade exceeds the
    budget, the executed trade is the same direction scaled down so the
    realized turnover equals ``max_turnover`` exactly — L1 distance is
    homogeneous along the segment from the drifted weights to the
    target, so the scaling is closed-form.
    """

    __slots__ = ("max_turnover",)

    def __init__(self, max_turnover: float):
        if max_turnover <= 0.0:
            raise ValueError(f"max_turnover must be positive, got {max_turnover}")
        self.max_turnover = float(max_turnover)

    def __repr__(self) -> str:
        return f"TurnoverBudget({self.max_turnover})"


class LeverageSchedule(RiskLimit):
    """Time-indexed gross-exposure cap.

    ``base`` bounds ``Σ asset weights`` everywhere; ``steps`` is an
    optional sequence of ``(start_index, gross)`` breakpoints — from a
    breakpoint's decision index onward (until the next breakpoint) the
    gross exposure may not exceed its value.  A regime-driven schedule
    ("halve exposure in crash regimes") compiles into exactly these
    breakpoints.  Long-only portfolios live on the simplex, so gross
    exposure is ``1 − cash`` and caps above 1 never bind.
    """

    __slots__ = ("base", "starts", "values")

    def __init__(
        self,
        base: float = 1.0,
        steps: Sequence[Tuple[int, float]] = (),
    ):
        if not 0.0 < base <= 1.0:
            raise ValueError(f"base gross must lie in (0, 1], got {base}")
        self.base = float(base)
        rows = sorted((int(t), float(g)) for t, g in steps)
        for _, gross in rows:
            if not 0.0 < gross <= 1.0:
                raise ValueError(f"schedule gross must lie in (0, 1], got {gross}")
        self.starts = np.array([t for t, _ in rows], dtype=np.int64)
        self.values = np.array([g for _, g in rows], dtype=np.float64)

    def gross_at(self, t: Union[int, np.ndarray]) -> np.ndarray:
        """Gross-exposure cap in force at decision index ``t`` (vectorized)."""
        t = np.asarray(t, dtype=np.int64)
        if self.starts.size == 0:
            return np.broadcast_to(np.float64(self.base), t.shape).copy()
        idx = np.searchsorted(self.starts, t, side="right")
        out = np.where(idx > 0, self.values[np.maximum(idx - 1, 0)], self.base)
        return np.asarray(out, dtype=np.float64)

    def __repr__(self) -> str:
        steps = list(zip(self.starts.tolist(), self.values.tolist()))
        return f"LeverageSchedule({self.base}, steps={steps})"


# ----------------------------------------------------------------------
@dataclass
class LockoutState:
    """Per-portfolio drawdown-guard state.

    ``hwm`` is the session high-water mark of portfolio value,
    ``remaining`` the number of forced-cash decisions left (0 =
    trading), ``triggers`` how many lockouts have fired.  Plain floats
    and ints so the state JSON-round-trips through serving checkpoints.
    """

    hwm: float
    remaining: int = 0
    triggers: int = 0

    @property
    def locked(self) -> bool:
        return self.remaining > 0

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "hwm": float(self.hwm),
            "remaining": int(self.remaining),
            "triggers": int(self.triggers),
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "LockoutState":
        return cls(
            hwm=float(payload["hwm"]),
            remaining=int(payload["remaining"]),
            triggers=int(payload["triggers"]),
        )

    def copy(self) -> "LockoutState":
        return LockoutState(self.hwm, self.remaining, self.triggers)


class DrawdownLockout(RiskLimit):
    """Force-flatten to cash after a drawdown from the high-water mark.

    When ``(hwm − value)/hwm ≥ max_drawdown`` the book is flattened and
    stays fully in cash for ``lockout_periods`` consecutive decisions
    (the triggering decision included).  On re-entry the high-water
    mark resets to the current value, so the guard arms against *new*
    losses instead of immediately re-firing on the old peak.
    """

    __slots__ = ("max_drawdown", "lockout_periods")

    def __init__(self, max_drawdown: float, lockout_periods: int):
        if not 0.0 < max_drawdown < 1.0:
            raise ValueError(f"max_drawdown must lie in (0, 1), got {max_drawdown}")
        if int(lockout_periods) < 1:
            raise ValueError(f"lockout_periods must be >= 1, got {lockout_periods}")
        self.max_drawdown = float(max_drawdown)
        self.lockout_periods = int(lockout_periods)

    def initial_state(self, value: float = 1.0) -> LockoutState:
        if value <= 0.0:
            raise ValueError("portfolio value must be positive")
        return LockoutState(hwm=float(value))

    def update(self, state: LockoutState, value: float) -> LockoutState:
        """Advance the guard one decision; returns the *new* state.

        Called with the portfolio value as of this decision, before the
        weights are chosen.  The returned state's :attr:`~LockoutState.locked`
        says whether this decision must be flattened to cash.  The input
        state is not mutated (serving stages decisions transactionally).
        """
        value = float(value)
        new = state.copy()
        if new.remaining > 0:
            new.remaining -= 1
            if new.remaining == 0:
                # Re-entry: arm against new losses from here.
                new.hwm = value
            return new
        new.hwm = max(new.hwm, value)
        if (new.hwm - value) / new.hwm >= self.max_drawdown:
            new.remaining = self.lockout_periods
            new.triggers += 1
        return new

    def __repr__(self) -> str:
        return f"DrawdownLockout({self.max_drawdown}, {self.lockout_periods})"
