"""Portfolio risk & constraints layer.

A vectorized limit zoo (:mod:`~repro.risk.limits`) composed by a
deterministic projection engine (:mod:`~repro.risk.engine`) applied
between a strategy's decision and execution — identically in backtest,
walk-forward, and serving.
"""

from .engine import CONSTRAINT_NAMES, RiskEngine, RiskReport
from .limits import (
    CashFloor,
    DrawdownLockout,
    LeverageSchedule,
    LockoutState,
    PositionCap,
    RiskLimit,
    TurnoverBudget,
)

__all__ = [
    "CONSTRAINT_NAMES",
    "CashFloor",
    "DrawdownLockout",
    "LeverageSchedule",
    "LockoutState",
    "PositionCap",
    "RiskEngine",
    "RiskLimit",
    "RiskReport",
    "TurnoverBudget",
]
