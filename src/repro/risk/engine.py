"""The risk engine: target weights → constrained weights.

:class:`RiskEngine` composes a set of :mod:`~repro.risk.limits` into
one deterministic weight-projection step applied between a strategy's
``decide_batch`` and execution — the same projection in back-test,
walk-forward, and serving, so constrained trajectories stay
bit-comparable across all three.

Projection semantics (single closed-form pass, in order):

1. **Lockout** — a locked portfolio is flattened to cash outright; no
   other constraint is consulted.
2. **Per-asset caps** — asset weights clip to the elementwise minimum
   of every :class:`~repro.risk.limits.PositionCap`.
3. **Gross exposure** — the asset sum is scaled down (greedy
   renormalize; scaling preserves the caps) onto the tightest of the
   :class:`~repro.risk.limits.LeverageSchedule` gross in force at ``t``
   and ``1 − cash floor``; cash absorbs the residual, keeping the
   vector on the simplex.
4. **Turnover budget** — if the capped trade still exceeds the L1
   budget against the drifted weights ``w'``, the whole vector moves to
   ``w' + θ·(w − w')`` with ``θ = budget / ‖w − w'‖₁``, which realizes
   the budget *exactly* (L1 distance is homogeneous along the segment)
   and stays on the simplex (convex combination).

The projection is idempotent whenever the drifted weights themselves
satisfy the caps: a projected vector clips to itself, its gross is
within bounds, and its turnover is within budget.  (When drift has
pushed a holding above its cap *and* the budget rations the sell-down,
the residual breach is corrected over subsequent decisions — exactly
the behaviour a real desk's limits have.)

An engine with no limits is *null*: :meth:`RiskEngine.step` returns the
target untouched (the identical array, so the no-engine path stays
bit-identical — the invariant ``bench_throughput.py --check`` gates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .limits import (
    CashFloor,
    DrawdownLockout,
    LeverageSchedule,
    LockoutState,
    PositionCap,
    RiskLimit,
    TurnoverBudget,
)

__all__ = ["CONSTRAINT_NAMES", "RiskEngine", "RiskReport"]

#: Binding-mask order, everywhere a mask or report names constraints.
CONSTRAINT_NAMES: Tuple[str, ...] = (
    "position_cap",
    "cash_floor",
    "leverage",
    "turnover",
    "lockout",
)

# Caps are "respected" up to float epsilon; the binding mask uses the
# same tolerance so a bit-exact re-projection never reads as a breach.
_EPS = 1e-12


@dataclass
class RiskReport:
    """Outcome of projecting one decision.

    ``weights`` is the constrained target actually forwarded to
    execution; ``binding`` maps each constraint name to whether it bound
    (changed the weights) this decision; ``pre_turnover`` is the L1
    trade the strategy asked for, ``post_turnover`` the trade after
    projection; ``locked`` mirrors ``binding["lockout"]``.
    """

    weights: np.ndarray
    binding: Dict[str, bool]
    pre_turnover: float
    post_turnover: float
    locked: bool

    @property
    def violated(self) -> bool:
        """True when any constraint bound this decision."""
        return any(self.binding.values())

    def binding_names(self) -> List[str]:
        return [name for name in CONSTRAINT_NAMES if self.binding.get(name)]


class RiskEngine:
    """Composes risk limits into one deterministic projection step.

    Parameters
    ----------
    limits:
        Any mix of :class:`PositionCap`, :class:`CashFloor`,
        :class:`TurnoverBudget`, :class:`LeverageSchedule`, and at most
        one :class:`DrawdownLockout`.  The constructor folds the zoo
        into scalars/arrays once, so the per-decision projection is a
        handful of vectorized ops — cheap enough for the serving hot
        path.

    The engine itself is stateless: the lockout guard's
    :class:`~repro.risk.limits.LockoutState` is created by
    :meth:`initial_state` and threaded through :meth:`step` by the
    caller (the environment per episode, the serving layer per
    session), so one engine instance can guard any number of portfolios
    concurrently.
    """

    def __init__(self, limits: Sequence[RiskLimit] = ()):
        self.limits: Tuple[RiskLimit, ...] = tuple(limits)
        caps: List[PositionCap] = []
        cash_floor = 0.0
        turnover: Optional[float] = None
        schedules: List[LeverageSchedule] = []
        lockout: Optional[DrawdownLockout] = None
        for limit in self.limits:
            if isinstance(limit, PositionCap):
                caps.append(limit)
            elif isinstance(limit, CashFloor):
                cash_floor = max(cash_floor, limit.min_cash)
            elif isinstance(limit, TurnoverBudget):
                turnover = (
                    limit.max_turnover
                    if turnover is None
                    else min(turnover, limit.max_turnover)
                )
            elif isinstance(limit, LeverageSchedule):
                schedules.append(limit)
            elif isinstance(limit, DrawdownLockout):
                if lockout is not None:
                    raise ValueError("at most one DrawdownLockout per engine")
                lockout = limit
            else:
                raise TypeError(
                    f"unknown risk limit {type(limit).__name__}; expected one "
                    "of PositionCap, CashFloor, TurnoverBudget, "
                    "LeverageSchedule, DrawdownLockout"
                )
        self._caps = caps
        self._cash_floor = cash_floor
        self._turnover = turnover
        self._schedules = schedules
        self._lockout = lockout

    # ------------------------------------------------------------------
    @property
    def is_null(self) -> bool:
        """True when this engine provably never alters a decision —
        the hook the fast paths (serving, sweep ``none`` regime) key on."""
        return (
            not self._caps
            and self._cash_floor == 0.0
            and self._turnover is None
            and not self._schedules
            and self._lockout is None
        )

    @property
    def has_lockout(self) -> bool:
        return self._lockout is not None

    @property
    def lockout(self) -> Optional[DrawdownLockout]:
        return self._lockout

    def initial_state(self, value: float = 1.0) -> Optional[LockoutState]:
        """Fresh guard state for a portfolio starting at ``value``
        (``None`` when the engine carries no drawdown lockout)."""
        if self._lockout is None:
            return None
        return self._lockout.initial_state(value)

    # ------------------------------------------------------------------
    def asset_caps(self, n_assets: int) -> Optional[np.ndarray]:
        """Elementwise-min per-asset cap vector, or ``None`` if uncapped."""
        if not self._caps:
            return None
        cap = self._caps[0].caps(n_assets)
        for limit in self._caps[1:]:
            cap = np.minimum(cap, limit.caps(n_assets))
        return cap

    def gross_cap(self, t: Union[int, np.ndarray]) -> np.ndarray:
        """Tightest gross-exposure bound in force at ``t`` (cash floor
        folded in), broadcast over ``t``."""
        t = np.asarray(t, dtype=np.int64)
        gross = np.full(t.shape, 1.0 - self._cash_floor)
        for schedule in self._schedules:
            gross = np.minimum(gross, schedule.gross_at(t))
        return gross

    # ------------------------------------------------------------------
    def project_batch(
        self,
        w_drifted: np.ndarray,
        w_target: np.ndarray,
        t: Union[int, np.ndarray] = 0,
        locked: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray], np.ndarray, np.ndarray]:
        """Vectorized projection of a ``(batch, N)`` decision round.

        ``w_drifted``/``w_target`` are simplex weight matrices (cash
        first); ``t`` the per-row decision indices (or one shared
        index); ``locked`` an optional per-row bool mask of portfolios
        in drawdown lockout (those rows flatten to cash).  Returns
        ``(weights, binding, pre_turnover, post_turnover)`` where
        ``binding`` maps each of :data:`CONSTRAINT_NAMES` to a per-row
        bool array.
        """
        w_prime = np.atleast_2d(np.asarray(w_drifted, dtype=np.float64))
        target = np.atleast_2d(np.asarray(w_target, dtype=np.float64))
        if w_prime.shape != target.shape:
            raise ValueError(
                f"w_drifted {w_prime.shape} and w_target {target.shape} must align"
            )
        batch, n = target.shape
        pre_turnover = np.abs(target - w_prime).sum(axis=1)

        assets = target[:, 1:]
        cap = self.asset_caps(n - 1)
        if cap is not None:
            clipped = np.minimum(assets, cap)
            cap_binding = (assets - clipped).sum(axis=1) > _EPS
            assets = clipped
        else:
            cap_binding = np.zeros(batch, dtype=bool)

        gross = np.broadcast_to(self.gross_cap(t), (batch,))
        asset_sum = assets.sum(axis=1)
        over = asset_sum > gross + _EPS
        scale = np.where(over, gross / np.maximum(asset_sum, _EPS), 1.0)
        assets = assets * scale[:, None]
        floor_binding = over & (asset_sum > 1.0 - self._cash_floor + _EPS) \
            if self._cash_floor > 0.0 else np.zeros(batch, dtype=bool)
        if self._schedules:
            sched = np.full(batch, 1.0)
            for schedule in self._schedules:
                sched = np.minimum(sched, np.broadcast_to(schedule.gross_at(t), (batch,)))
            leverage_binding = over & (asset_sum > sched + _EPS)
        else:
            leverage_binding = np.zeros(batch, dtype=bool)

        weights = np.empty_like(target)
        weights[:, 1:] = assets
        weights[:, 0] = 1.0 - assets.sum(axis=1)

        if self._turnover is not None:
            trade = np.abs(weights - w_prime).sum(axis=1)
            turnover_binding = trade > self._turnover + _EPS
            theta = np.where(
                turnover_binding, self._turnover / np.maximum(trade, _EPS), 1.0
            )
            weights = w_prime + theta[:, None] * (weights - w_prime)
        else:
            turnover_binding = np.zeros(batch, dtype=bool)

        if locked is None:
            locked = np.zeros(batch, dtype=bool)
        else:
            locked = np.asarray(locked, dtype=bool)
            if np.any(locked):
                weights = weights.copy() if weights is target else weights
                weights[locked] = 0.0
                weights[locked, 0] = 1.0
        binding = {
            "position_cap": cap_binding & ~locked,
            "cash_floor": floor_binding & ~locked,
            "leverage": leverage_binding & ~locked,
            "turnover": turnover_binding & ~locked,
            "lockout": locked,
        }
        post_turnover = np.abs(weights - w_prime).sum(axis=1)
        return weights, binding, pre_turnover, post_turnover

    # ------------------------------------------------------------------
    def step(
        self,
        w_drifted: np.ndarray,
        w_target: np.ndarray,
        t: int = 0,
        value: Optional[float] = None,
        state: Optional[LockoutState] = None,
    ) -> Tuple[RiskReport, Optional[LockoutState]]:
        """Project one decision, advancing the lockout guard.

        ``value`` is the current portfolio value (required when the
        engine carries a drawdown lockout); ``state`` the portfolio's
        guard state from the previous decision (``None`` starts fresh).
        Returns the :class:`RiskReport` and the new guard state to
        carry forward — the input state is never mutated, so staged
        (transactional) callers can discard the result on abort.

        A null engine returns the target array *itself* (no copy, no
        arithmetic): the ``none`` path is bit-identical to not having
        an engine at all.
        """
        target = np.asarray(w_target, dtype=np.float64)
        if self.is_null:
            report = RiskReport(
                weights=target,
                binding={name: False for name in CONSTRAINT_NAMES},
                pre_turnover=0.0,
                post_turnover=0.0,
                locked=False,
            )
            return report, state

        new_state = state
        locked = False
        if self._lockout is not None:
            if value is None:
                raise ValueError("a lockout-carrying engine needs value= per step")
            if new_state is None:
                new_state = self._lockout.initial_state(value)
            new_state = self._lockout.update(new_state, value)
            locked = new_state.locked

        weights, binding, pre, post = self.project_batch(
            w_drifted[None, :],
            target[None, :],
            t,
            locked=np.array([locked]),
        )
        report = RiskReport(
            weights=weights[0],
            binding={name: bool(mask[0]) for name, mask in binding.items()},
            pre_turnover=float(pre[0]),
            post_turnover=float(post[0]),
            locked=locked,
        )
        return report, new_state

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        inner = ", ".join(repr(limit) for limit in self.limits)
        return f"RiskEngine([{inner}])"
