"""Supervised multi-worker serving tier: failover, rehydration, drain.

``ServingSupervisor`` runs N worker processes, each owning a private
:class:`~repro.serving.PortfolioService` shard.  Sessions are routed to
workers by **market panel** (a stable hash of the market name), so every
session sharing a panel lands on one worker and the one-
``prepare_states``-per-panel micro-batching win survives the process
split.  The supervisor's front is duck-compatible with the in-process
service (``rebalance`` / ``rebalance_many`` / ``create_session`` /
``describe_sessions`` / ``stats`` …), which is how the HTTP layer and
:class:`~repro.serving.MicroBatcher` serve through it unchanged.

Robustness model
----------------
*Write-through persistence.*  After every committed batch the worker
writes each touched session's :meth:`~repro.serving.PortfolioService.export_session`
payload to a :class:`~repro.serving.SessionStateStore` (atomic JSON +
npz).  A worker crash therefore loses **at most the round in flight** —
and not even that, observably: the round never committed anywhere, and
the supervisor replays it against a restarted worker, which rehydrates
each session lazily from the store and recomputes the identical
decisions.  Sessions on the crashed worker that were *not* in flight
lose nothing at all.

*Crash detection.*  Two paths: the dispatch path sees the broken pipe
the moment a send/recv fails, and a heartbeat monitor thread polls
worker liveness every ``heartbeat_interval`` seconds to catch workers
that die idle (``check_workers()`` runs one sweep on demand for
deterministic tests).  Injected crashes come from the fault plan's
``serving.worker_crash_*`` seams, keyed on the supervisor's monotonic
per-worker ``batch_id`` so a one-shot kill can never re-fire on the
replay.

*Graceful drain.*  :meth:`drain` stops admission (new work gets a
structured :class:`Draining` → HTTP 503), waits for in-flight batches
to flush, then asks each worker to checkpoint every resident session
(write-through store + a shard-labelled ``save_checkpoint``) and exit
with code 0.

*Load shedding.*  ``max_pending`` bounds the front's in-flight request
count: past it, a request is shed with :class:`LoadShed` (a
:class:`~repro.serving.QueueFull` subclass → the HTTP layer's 429)
unless its priority strictly exceeds everything currently in flight —
the highest-priority work keeps landing while the front is saturated.

Parity: with one worker and no fault plan the supervisor serves
bit-identical responses to a plain in-process ``PortfolioService`` —
the whole batch goes to worker 0 in arrival order through the same
``rebalance_many`` — which the throughput bench gates under
``--check``.

Workers are forked (POSIX), so registries holding user-registered
strategies and in-memory panels cross the boundary for free; on
platforms without ``fork`` the default start method is used and
everything a command carries must pickle.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time
import weakref
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..envs.costs import DEFAULT_COMMISSION
from ..obs import get_obs
from ..registry import DEFAULT_REGISTRY
from ..resilience import injector_from
from ..utils.rng import stable_hash
from ..utils.serialization import PathLike
from .service import (
    PortfolioService,
    QueueFull,
    RebalanceRequest,
    RebalanceResponse,
    ServingResilience,
    SessionInfo,
)
from .store import SessionStateStore

__all__ = [
    "Draining",
    "LoadShed",
    "ServingSupervisor",
    "SupervisorStats",
    "WorkerHealth",
]

# Exit code workers use for injected crashes — distinctive in drain
# reports and CI logs (a real segfault shows a signal instead).
_CRASH_EXIT = 76


class LoadShed(QueueFull):
    """The supervisor front shed this request under overload (429).

    Subclasses :class:`QueueFull` so every existing backpressure
    handler (HTTP 429 mapping, client retry loops) already treats it
    correctly; the distinct type says *why* — priority-based shedding
    at the front, not a full micro-batcher queue.
    """


class Draining(RuntimeError):
    """The supervisor is draining and admits no new work (503)."""


class WorkerDied(RuntimeError):
    """Internal: a worker process died mid-conversation (pipe EOF,
    broken pipe, or liveness timeout).  Never escapes the supervisor —
    it triggers restart + replay instead."""


@dataclass
class SupervisorStats:
    """Front-side counters; per-worker service stats live in the
    workers and are aggregated by :meth:`ServingSupervisor.stats_dict`."""

    requests_served: int = 0
    batches_dispatched: int = 0   # sub-batches sent to workers
    worker_restarts: int = 0      # crashes healed (dispatch or heartbeat)
    failovers: int = 0            # restarts that also replayed a batch
    shed_requests: int = 0        # requests refused by priority shedding

    def to_json_dict(self) -> Dict[str, int]:
        return asdict(self)


@dataclass
class WorkerHealth:
    """One worker's liveness snapshot (supervisor-side knowledge only —
    reading it never blocks on a busy worker)."""

    index: int
    alive: bool
    pid: Optional[int]
    restarts: int
    routed_sessions: int

    def to_json_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class _WorkerConfig:
    """Everything a worker process needs to build its service shard."""

    index: int
    state_dir: str
    commission: float
    registry: Any
    execution: Any
    risk: Any
    resilience: Optional[ServingResilience]
    fault_plan: Any
    max_resident: Optional[int]


# Parent-side pipe ends, closed in freshly forked children: a child
# inheriting the parent's read end of a *sibling's* pipe would keep
# that pipe open after the sibling dies, and the supervisor would never
# see the EOF that is its crash signal.
_PARENT_CONNS: "weakref.WeakSet" = weakref.WeakSet()


def _worker_main(conn, config: _WorkerConfig) -> None:
    """One worker process: a PortfolioService shard behind a pipe.

    Commands arrive as tuples; every reply is ``("ok", payload)`` or
    ``("error", exception)``.  Per-session state is written through to
    the store after each committed command, so the process can die at
    any instruction and the supervisor recovers everything but the
    round in flight (which it replays).
    """
    for other in list(_PARENT_CONNS):
        try:
            other.close()
        except Exception:
            pass
    # The drain command is the exit path; a terminal Ctrl-C must reach
    # the supervisor (which drains), not kill workers mid-batch.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # non-main thread (never on a fresh fork)
        pass

    store = SessionStateStore(config.state_dir, max_resident=config.max_resident)
    injector = injector_from(config.fault_plan)
    service = PortfolioService(
        registry=config.registry,
        commission=config.commission,
        execution=config.execution,
        risk=config.risk,
        resilience=config.resilience,
        faults=injector,
    )
    rehydrated = 0
    evicted_count = 0

    def persist(session_id: str) -> None:
        store.save_session(service.export_session(session_id))

    def ensure_market(name: str) -> None:
        if name not in service.market_names():
            service.register_market(name, store.load_market(name))

    def ensure_resident(session_id: str) -> None:
        nonlocal rehydrated
        if session_id in service.session_ids():
            store.touch(session_id)
            return
        if not store.has_session(session_id):
            return  # the service raises its structured unknown-session error
        payload = store.load_session(session_id)
        ensure_market(payload["market"])
        service.import_session(payload)
        store.touch(session_id)
        rehydrated += 1

    def evict_overflow() -> None:
        # Safe at any commit boundary: everything resident has been
        # written through, so dropping it from memory loses nothing.
        nonlocal evicted_count
        for session_id in store.overflow():
            service.close_session(session_id)
            evicted_count += 1

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # supervisor went away; all committed state is stored
        command, args = message[0], message[1:]
        try:
            if command == "ping":
                reply: Any = "pong"
            elif command == "create":
                kwargs = dict(args[0])
                session_id = kwargs["session_id"]
                ensure_market(kwargs["market"])
                if store.has_session(session_id):
                    # At-least-once create: a crash between the persist
                    # and the reply makes the supervisor retry; the
                    # stored session is the truth.
                    ensure_resident(session_id)
                    reply = service.describe_session(session_id)
                else:
                    reply = service.create_session(**kwargs)
                    persist(session_id)
                    store.touch(session_id)
                evict_overflow()
            elif command == "rebalance":
                batch_id, requests = args
                batch_ids: List[str] = []
                for request in requests:
                    if request.session_id not in batch_ids:
                        batch_ids.append(request.session_id)
                for session_id in batch_ids:
                    ensure_resident(session_id)
                responses = service.rebalance_many(requests)
                if injector is not None and injector.worker_crashes(
                    config.index, batch_id
                ):
                    # Die *after* the in-memory commit, *before* the
                    # write-through — the worst-case crash point: the
                    # round's state exists nowhere durable.  The
                    # supervisor replays the batch on a fresh worker,
                    # which recomputes it bit-identically from the
                    # store's last committed state.
                    os._exit(_CRASH_EXIT)
                for session_id in batch_ids:
                    persist(session_id)
                evict_overflow()
                reply = responses
            elif command == "describe":
                reply = service.describe_sessions()
            elif command == "stats":
                reply = {
                    "service": service.stats.to_json_dict(),
                    "resident_sessions": len(service.session_ids()),
                    "rehydrated": rehydrated,
                    "evicted": evicted_count,
                }
            elif command == "checkpoint":
                for session_id in service.session_ids():
                    persist(session_id)
                reply = len(service.session_ids())
            elif command == "drain":
                session_ids = service.session_ids()
                for session_id in session_ids:
                    persist(session_id)
                shard_path = None
                if session_ids:
                    shard_dir = (
                        Path(config.state_dir)
                        / "shards"
                        / f"worker_{config.index}"
                    )
                    shard_path = str(
                        service.save_checkpoint(
                            shard_dir,
                            session_ids=session_ids,
                            shard=f"worker-{config.index}",
                        )
                    )
                conn.send(
                    ("ok", {
                        "checkpointed": len(session_ids),
                        "shard_checkpoint": shard_path,
                    })
                )
                return  # normal return → exit code 0, the drain contract
            else:
                raise ValueError(f"unknown worker command {command!r}")
        except Exception as exc:
            try:
                conn.send(("error", exc))
            except (BrokenPipeError, OSError):
                return
            except Exception:
                # Unpicklable exception: degrade to its repr.
                conn.send(("error", RuntimeError(f"{type(exc).__name__}: {exc}")))
            continue
        try:
            conn.send(("ok", reply))
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """Supervisor-side handle: process + pipe + dispatch lock.

    ``lock`` serialises one send/recv conversation at a time;
    ``batch_seq`` is the monotonic dispatch counter fault plans key on
    (it survives restarts, so replayed batches get fresh ids).
    """

    def __init__(self, ctx, config: _WorkerConfig):
        self.index = config.index
        self._ctx = ctx
        self._config = config
        self.lock = threading.Lock()
        self.restarts = 0
        self.batch_seq = 0
        self.process = None
        self.conn = None
        self.spawn()

    def spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        _PARENT_CONNS.add(parent_conn)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._config),
            daemon=True,
            name=f"serving-worker-{self.index}",
        )
        process.start()
        child_conn.close()
        self.process = process
        self.conn = parent_conn

    def next_batch_id(self) -> int:
        batch_id = self.batch_seq
        self.batch_seq += 1
        return batch_id

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def close(self) -> None:
        try:
            self.conn.close()
        except Exception:
            pass

    def request(self, message: tuple, timeout: Optional[float] = None) -> Any:
        """One command round-trip (caller holds ``lock``).

        Raises :class:`WorkerDied` on any sign the process is gone —
        broken pipe on send, EOF on recv, or death observed while
        polling; a liveness ``timeout`` additionally kills a hung
        worker rather than waiting forever.
        """
        try:
            self.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerDied(f"worker {self.index}: send failed") from exc
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self.conn.poll(0.05):
            if not self.alive and not self.conn.poll(0):
                raise WorkerDied(
                    f"worker {self.index} died (exit code "
                    f"{self.process.exitcode})"
                )
            if deadline is not None and time.monotonic() > deadline:
                self.process.terminate()
                self.process.join(timeout=1.0)
                raise WorkerDied(
                    f"worker {self.index} unresponsive for {timeout}s; killed"
                )
        try:
            kind, payload = self.conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerDied(f"worker {self.index}: died mid-reply") from exc
        if kind == "error":
            raise payload
        return payload


class ServingSupervisor:
    """Process-supervised, store-backed front over N service shards.

    Parameters mirror :class:`~repro.serving.PortfolioService` where
    they configure the shards (``registry``/``commission``/
    ``execution``/``risk``/``resilience``/``faults``) and add the
    supervision knobs: ``state_dir`` (the session store root — an
    existing store resumes: routing is rebuilt from it and sessions
    rehydrate on first touch), ``max_resident`` (per-worker LRU
    residency budget), ``max_pending`` (front in-flight bound, the
    load-shedding trigger), ``heartbeat_interval`` (liveness poll
    cadence), ``worker_timeout`` (per-command liveness bound; a hung
    worker is killed and failed over), and ``crash_retries`` (how many
    times one batch may be replayed before the crash is surfaced).

    Markets must be registered by name (``register_market``) before
    sessions reference them — inline ``data=`` panels are an
    in-process-only convenience the process boundary does not carry.
    """

    def __init__(
        self,
        state_dir: PathLike,
        workers: int = 2,
        registry=None,
        commission: float = DEFAULT_COMMISSION,
        execution=None,
        risk=None,
        resilience: Optional[ServingResilience] = None,
        faults=None,
        max_resident: Optional[int] = None,
        max_pending: Optional[int] = None,
        heartbeat_interval: float = 1.0,
        worker_timeout: Optional[float] = None,
        crash_retries: int = 3,
        obs=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None for unbounded)")
        if crash_retries < 1:
            raise ValueError("crash_retries must be >= 1")
        injector = injector_from(faults)
        self._fault_plan = injector.plan if injector is not None else None
        self.store = SessionStateStore(state_dir)
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self.max_pending = max_pending
        self.worker_timeout = worker_timeout
        self.crash_retries = int(crash_retries)
        self.heartbeat_interval = float(heartbeat_interval)
        self.stats = SupervisorStats()
        self._started = time.monotonic()
        self._obs = obs if obs is not None else get_obs()
        if self._obs.enabled:
            self._m_dispatch = self._obs.histogram(
                "repro_rebalance_latency_seconds",
                help="rebalance_many wall-clock per call",
                component="supervisor",
            )
            self._m_requests = self._obs.counter(
                "repro_requests_total", help="rebalance requests served"
            )
            self._m_inflight = self._obs.gauge(
                "repro_supervisor_inflight", help="front in-flight requests"
            )
            self._m_shed = self._obs.counter(
                "repro_shed_requests_total",
                help="requests shed by priority admission",
            )
            self._m_restarts = self._obs.counter(
                "repro_worker_restarts_total", help="worker crashes healed"
            )
            self._m_failovers = self._obs.counter(
                "repro_failovers_total",
                help="restarts that also replayed a batch",
            )
            self._m_retries = self._obs.counter(
                "repro_dispatch_retries_total",
                help="sub-batch replays after a worker crash",
            )

        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork") if "fork" in methods else mp.get_context()
        base = _WorkerConfig(
            index=0,
            state_dir=str(state_dir),
            commission=float(commission),
            registry=registry,
            execution=execution,
            risk=risk,
            resilience=resilience,
            fault_plan=self._fault_plan,
            max_resident=max_resident,
        )
        self._workers = [
            _Worker(ctx, replace(base, index=i)) for i in range(workers)
        ]

        # Routing: market → worker is a pure hash; session → worker is
        # the table below, rebuilt from the store on construction so a
        # restarted supervisor resumes every persisted session.
        self._route_lock = threading.Lock()
        self._session_worker: Dict[str, int] = {}
        self._known_markets = set(self.store.market_names())
        for session_id in self.store.session_ids():
            record = self.store.load_session_record(session_id)
            self._session_worker[session_id] = self.worker_of_market(
                record["market"]
            )

        # Front admission state (load shedding + drain barrier).
        self._cond = threading.Condition()
        self._inflight = 0
        self._inflight_priorities: List[int] = []
        self._draining = False
        self._drain_report: Optional[Dict[str, Any]] = None

        self._failover_reports: List[Dict[str, Any]] = []
        self._stop = threading.Event()
        self._monitor = threading.Thread(
            target=self._monitor_loop, daemon=True, name="serving-heartbeat"
        )
        self._monitor.start()

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "ServingSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Terminate without draining (tests, error paths).  Committed
        state survives in the store; use :meth:`drain` for a clean stop."""
        self._stop.set()
        for worker in self._workers:
            worker.close()
            if worker.alive:
                worker.process.terminate()
        for worker in self._workers:
            if worker.process is not None:
                worker.process.join(timeout=2.0)

    # -- heartbeat -----------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            if self._draining:
                continue
            self.check_workers()

    def check_workers(self) -> List[int]:
        """One heartbeat sweep: restart any worker that died idle.

        The dispatch path heals crashes it observes itself; this
        catches workers that die *between* batches.  Returns the worker
        indices restarted (used by deterministic tests; the monitor
        thread discards it).
        """
        restarted: List[int] = []
        for worker in self._workers:
            if self._draining or self._stop.is_set():
                break
            # Never fight a dispatcher mid-conversation: it will see
            # the death itself and fail over with replay.
            if not worker.lock.acquire(timeout=0.1):
                continue
            try:
                if not worker.alive:
                    self._restart(worker)
                    restarted.append(worker.index)
            finally:
                worker.lock.release()
        return restarted

    def _restart(self, worker: _Worker) -> None:
        """Replace a dead worker's process (caller holds its lock)."""
        worker.close()
        worker.spawn()
        worker.restarts += 1
        self.stats.worker_restarts += 1
        if self._obs.enabled:
            self._m_restarts.inc()
            self._obs.event(
                "worker_restart",
                level="warn",
                worker=worker.index,
                restarts=worker.restarts,
            )

    def _note_failover(
        self, worker: _Worker, requests: Sequence[RebalanceRequest]
    ) -> None:
        """Record the per-session impact of a crash observed in
        dispatch, then restart.  At most one round (the replayed one)
        was in flight per session; everything committed is in the store."""
        in_flight = {request.session_id for request in requests}
        with self._route_lock:
            affected = sorted(
                session_id
                for session_id, index in self._session_worker.items()
                if index == worker.index
            )
        self._restart(worker)
        self.stats.failovers += 1
        if self._obs.enabled:
            self._m_failovers.inc()
            self._obs.event(
                "failover",
                level="warn",
                worker=worker.index,
                replayed_requests=len(requests),
                sessions=len(affected),
            )
        report = {
            "worker": worker.index,
            "restart": worker.restarts,
            "replayed_requests": len(requests),
            "sessions": [
                {
                    "session_id": session_id,
                    "round_in_flight": session_id in in_flight,
                }
                for session_id in affected
            ],
        }
        self._failover_reports.append(report)
        del self._failover_reports[:-16]  # keep the last 16

    # -- routing -------------------------------------------------------
    def worker_of_market(self, name: str) -> int:
        """The worker index a market's sessions land on (pure hash of
        the name, stable across restarts)."""
        return stable_hash(name) % len(self._workers)

    def register_market(self, name: str, data) -> str:
        """Persist a panel to the store under an immutable name.

        Workers pull it from the store lazily (on create or
        rehydration), so registration itself never touches a worker."""
        self.store.save_market(name, data)
        self._known_markets.add(name)
        return name

    def market_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._known_markets))

    def session_ids(self) -> Tuple[str, ...]:
        with self._route_lock:
            return tuple(sorted(self._session_worker))

    # -- sessions ------------------------------------------------------
    def create_session(
        self,
        session_id: str,
        strategy: str = "sdp",
        params: Optional[Dict[str, Any]] = None,
        market: Optional[str] = None,
        observation=None,
        start: Optional[int] = None,
    ) -> SessionInfo:
        """Open a session on the worker owning ``market``'s panel.

        Requires a registered market name; the worker persists the
        fresh session before replying, so a crash immediately after a
        successful create can never lose it (create is retried
        at-least-once on worker death — the worker treats a stored
        session as the truth).
        """
        if market is None:
            raise ValueError(
                "supervisor sessions require market= (a name registered "
                "with register_market); inline data= panels do not cross "
                "the process boundary"
            )
        with self._cond:
            if self._draining:
                raise Draining("supervisor is draining; no new sessions")
        if market not in self._known_markets:
            raise KeyError(
                f"unknown market {market!r}; registered: "
                f"{', '.join(self.market_names()) or '(none)'}"
            )
        worker = self._workers[self.worker_of_market(market)]
        with self._route_lock:
            if session_id in self._session_worker:
                raise ValueError(f"session {session_id!r} already exists")
            self._session_worker[session_id] = worker.index  # reserve
        kwargs = {
            "session_id": session_id,
            "strategy": strategy,
            "params": dict(params or {}),
            "market": market,
            "observation": observation,
            "start": start,
        }
        try:
            with worker.lock:
                attempts = 0
                while True:
                    try:
                        return worker.request(
                            ("create", kwargs), timeout=self.worker_timeout
                        )
                    except WorkerDied:
                        attempts += 1
                        self._restart(worker)
                        if attempts >= self.crash_retries:
                            raise RuntimeError(
                                f"worker {worker.index} died {attempts} "
                                f"times creating session {session_id!r}"
                            ) from None
        except BaseException:
            with self._route_lock:
                if self._session_worker.get(session_id) == worker.index:
                    # Only roll back if the store never committed it
                    # (an at-least-once retry may have landed it).
                    if not self.store.has_session(session_id):
                        del self._session_worker[session_id]
            raise

    def describe_sessions(self) -> Tuple[SessionInfo, ...]:
        """Every session, resident or not: live workers report what
        they hold in memory, the store fills in the evicted rest."""
        infos: Dict[str, SessionInfo] = {}
        for worker in self._workers:
            with worker.lock:
                if not worker.alive:
                    continue
                try:
                    for info in worker.request(
                        ("describe",), timeout=self.worker_timeout
                    ):
                        infos[info.session_id] = info
                except WorkerDied:
                    continue  # the heartbeat heals it; store covers its sessions
        with self._route_lock:
            routed = dict(self._session_worker)
        for session_id in routed:
            if session_id in infos or not self.store.has_session(session_id):
                continue
            record = self.store.load_session_record(session_id)
            state = record["state"]
            infos[session_id] = SessionInfo(
                session_id=session_id,
                strategy=record["spec"]["strategy"],
                market=record["market"],
                n_assets=int(
                    state.get("n_assets", max(len(state["w_prev"]) - 1, 0))
                ),
                next_t=int(state["next_t"]),
                last_t=int(state.get("last_t", -1)),
                decisions=int(state["decisions"]),
                shared_agent=bool(record["shared"]),
            )
        return tuple(infos[sid] for sid in sorted(infos))

    # -- serving -------------------------------------------------------
    def rebalance(
        self, request: Union[RebalanceRequest, str]
    ) -> RebalanceResponse:
        if isinstance(request, str):
            request = RebalanceRequest(session_id=request)
        return self.rebalance_many([request])[0]

    def rebalance_many(
        self, requests: Sequence[RebalanceRequest]
    ) -> List[RebalanceResponse]:
        """Serve a batch across workers, healing crashes on the way.

        Requests are split into per-worker sub-batches (arrival order
        preserved within each) and dispatched concurrently; each
        sub-batch is transactional within its worker exactly like the
        in-process service — but sub-batches on *different* workers
        commit independently, so a multi-worker batch is not
        all-or-nothing across shards.
        """
        if not requests:
            return []
        obs_on = self._obs.enabled
        if obs_on:
            t0 = time.perf_counter()
        token = self._admit(requests)
        try:
            by_worker: Dict[int, List[Tuple[int, RebalanceRequest]]] = {}
            for position, request in enumerate(requests):
                with self._route_lock:
                    index = self._session_worker.get(request.session_id)
                if index is None:
                    raise KeyError(
                        f"unknown session {request.session_id!r}"
                    )
                by_worker.setdefault(index, []).append((position, request))

            responses: List[Optional[RebalanceResponse]] = [None] * len(requests)
            errors: List[BaseException] = []

            def run(index: int, items: List[Tuple[int, RebalanceRequest]]) -> None:
                try:
                    served = self._dispatch(
                        self._workers[index], [request for _, request in items]
                    )
                    for (position, _), response in zip(items, served):
                        responses[position] = response
                except BaseException as exc:
                    errors.append(exc)

            groups = sorted(by_worker.items())
            if len(groups) == 1:
                run(*groups[0])
            else:
                threads = [
                    threading.Thread(target=run, args=group, daemon=True)
                    for group in groups
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            if errors:
                raise errors[0]
            self.stats.requests_served += len(requests)
            if obs_on:
                self._m_dispatch.observe(time.perf_counter() - t0)
                self._m_requests.inc(len(requests))
            return responses  # type: ignore[return-value]
        finally:
            self._release(token)

    def _dispatch(
        self, worker: _Worker, requests: List[RebalanceRequest]
    ) -> List[RebalanceResponse]:
        """One sub-batch conversation, with crash failover + replay."""
        obs_on = self._obs.enabled
        with worker.lock:
            attempts = 0
            while True:
                batch_id = worker.next_batch_id()
                self.stats.batches_dispatched += 1
                try:
                    if obs_on:
                        t0 = time.perf_counter()
                    served = worker.request(
                        ("rebalance", batch_id, list(requests)),
                        timeout=self.worker_timeout,
                    )
                    if obs_on:
                        self._obs.histogram(
                            "repro_worker_dispatch_seconds",
                            help="per-worker sub-batch round-trip",
                            worker=str(worker.index),
                        ).observe(time.perf_counter() - t0)
                    return served
                except WorkerDied:
                    attempts += 1
                    if obs_on:
                        self._m_retries.inc()
                    self._note_failover(worker, requests)
                    if attempts >= self.crash_retries:
                        raise RuntimeError(
                            f"worker {worker.index} died {attempts} times "
                            "replaying one batch; giving up (sessions are "
                            "safe in the store)"
                        ) from None

    # -- admission (load shedding + drain barrier) ---------------------
    def _admit(self, requests: Sequence[RebalanceRequest]) -> Tuple[int, int]:
        with self._cond:
            if self._draining:
                raise Draining(
                    "supervisor is draining; no new requests admitted"
                )
            count = len(requests)
            priority = max(
                int(getattr(request, "priority", 0)) for request in requests
            )
            if (
                self.max_pending is not None
                and self._inflight_priorities
                and self._inflight + count > self.max_pending
                and priority <= max(self._inflight_priorities)
            ):
                # Shed: the front is saturated and nothing in this
                # batch outranks the work already admitted.  (An idle
                # front always admits — even an oversized batch — so
                # shedding can never deadlock the system.)
                self.stats.shed_requests += count
                if self._obs.enabled:
                    self._m_shed.inc(count)
                    self._obs.event(
                        "load_shed",
                        level="warn",
                        count=count,
                        priority=priority,
                        inflight=self._inflight,
                    )
                raise LoadShed(
                    f"supervisor front at capacity ({self._inflight} "
                    f"requests in flight, max_pending={self.max_pending}); "
                    f"shed priority-{priority} request(s) — retry with "
                    "backoff or raise priority"
                )
            self._inflight += count
            self._inflight_priorities.append(priority)
            if self._obs.enabled:
                self._m_inflight.set(self._inflight)
            return (count, priority)

    def _release(self, token: Tuple[int, int]) -> None:
        count, priority = token
        with self._cond:
            self._inflight -= count
            self._inflight_priorities.remove(priority)
            if self._obs.enabled:
                self._m_inflight.set(self._inflight)
            self._cond.notify_all()

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @property
    def obs(self):
        """The observability handle this supervisor records into."""
        return self._obs

    def uptime_seconds(self) -> float:
        """Seconds since this supervisor was constructed."""
        return time.monotonic() - self._started

    # -- observability -------------------------------------------------
    def worker_health(self) -> List[WorkerHealth]:
        """Liveness snapshot per worker — supervisor-side state only,
        so it never blocks behind a busy or dead worker."""
        with self._route_lock:
            routed: Dict[int, int] = {}
            for index in self._session_worker.values():
                routed[index] = routed.get(index, 0) + 1
        return [
            WorkerHealth(
                index=worker.index,
                alive=worker.alive,
                pid=(
                    worker.process.pid
                    if worker.process is not None
                    else None
                ),
                restarts=worker.restarts,
                routed_sessions=routed.get(worker.index, 0),
            )
            for worker in self._workers
        ]

    def stats_dict(self) -> Dict[str, Any]:
        """The ``/stats`` payload: front counters, failover reports,
        and per-worker detail (skipping workers too busy to answer)."""
        workers: List[Dict[str, Any]] = []
        for health in self.worker_health():
            entry = health.to_json_dict()
            worker = self._workers[health.index]
            detail = None
            if health.alive and worker.lock.acquire(timeout=0.5):
                try:
                    detail = worker.request(("stats",), timeout=5.0)
                except WorkerDied:
                    detail = None
                finally:
                    worker.lock.release()
            entry["detail"] = detail
            workers.append(entry)
        with self._cond:
            front = {
                **self.stats.to_json_dict(),
                "draining": self._draining,
                "inflight": self._inflight,
                "workers": len(self._workers),
            }
        return {
            "supervisor": front,
            "workers": workers,
            "failovers": list(self._failover_reports),
        }

    # -- drain ---------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Graceful stop: refuse new work, flush in-flight batches,
        checkpoint every session, exit every worker with code 0.

        Idempotent — a second call returns the first report.  Raises
        ``TimeoutError`` if in-flight work does not flush within
        ``timeout`` (the drain stays armed; call again to finish).
        """
        with self._cond:
            if self._drain_report is not None:
                return self._drain_report
            self._draining = True
            deadline = None if timeout is None else time.monotonic() + timeout
            while self._inflight > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"drain timed out with {self._inflight} requests "
                        "in flight"
                    )
                self._cond.wait(remaining if remaining is not None else 1.0)
        self._stop.set()

        workers_report: List[Dict[str, Any]] = []
        checkpointed = 0
        for worker in self._workers:
            with worker.lock:
                entry: Dict[str, Any] = {
                    "worker": worker.index,
                    "checkpointed": 0,
                    "shard_checkpoint": None,
                    "exit_code": None,
                }
                if worker.alive:
                    try:
                        payload = worker.request(("drain",), timeout=60.0)
                        entry["checkpointed"] = payload["checkpointed"]
                        entry["shard_checkpoint"] = payload["shard_checkpoint"]
                    except WorkerDied:
                        pass  # its committed state is already in the store
                if worker.process is not None:
                    worker.process.join(timeout=10.0)
                    entry["exit_code"] = worker.process.exitcode
                worker.close()
                checkpointed += entry["checkpointed"]
                workers_report.append(entry)
        report = {
            "sessions": len(self.session_ids()),
            "sessions_checkpointed": checkpointed,
            "workers": workers_report,
        }
        with self._cond:
            self._drain_report = report
        return report
