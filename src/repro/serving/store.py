"""Durable per-session state for the multi-worker serving tier.

``SessionStateStore`` is the persistence half of the supervised serving
tier (:mod:`repro.serving.supervisor`): every committed rebalance round
writes the touched sessions' :meth:`~repro.serving.PortfolioService.export_session`
payloads through to disk, so a worker process can die at any moment and
lose at most the round that was in flight — the supervisor replays that
round against a fresh worker, which *rehydrates* each session lazily
from its last stored state on first touch.

Layout (all writes atomic, via :mod:`repro.utils.serialization`)::

    root/
      markets/<quoted-name>.npz          # panels, write-once (immutable)
      sessions/<quoted-id>/state.json    # per-session checkpoint payload
      sessions/<quoted-id>/weights.npz   # learned-agent state dict, if any

``state.json`` is the commit point for a session write: it lands last
(after the weights sidecar) via temp-file + ``os.replace``, so a torn
write leaves the previous state, never half of the new one.  Weights
are written once per session — serving never mutates network weights —
which keeps the per-round write to a single small JSON file.

The store also tracks *residency* (which sessions a worker holds in
memory) as an LRU: :meth:`touch` bumps a session and returns the ids
that overflow ``max_resident``, which the worker then evicts from its
service (safe, because write-through means their state is already on
disk) and rehydrates lazily if touched again.  Corrupt files surface as
:class:`~repro.serving.CheckpointCorrupt` naming the file, the same
contract full checkpoints honour.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import quote, unquote

from ..data.market import MarketData, market_from_state, market_to_state
from ..utils.serialization import (
    PathLike,
    load_json,
    load_state_dict,
    save_json,
    save_state_dict,
)
from .service import _read_checkpoint_file

__all__ = ["SessionStateStore"]


def _safe(name: str) -> str:
    """Filesystem-safe, reversible encoding of a user-chosen name."""
    return quote(name, safe="")


class SessionStateStore:
    """Write-through session persistence with LRU residency tracking.

    Thread-safe: one instance is shared by a worker's serve loop and
    its drain path, and the supervisor opens its own instance over the
    same root (the on-disk layout, not the object, is the interface —
    every read re-opens files, every write is atomic).
    """

    def __init__(self, root: PathLike, max_resident: Optional[int] = None):
        if max_resident is not None and max_resident < 1:
            raise ValueError("max_resident must be >= 1 (or None for unbounded)")
        self.root = Path(root)
        self.max_resident = max_resident
        (self.root / "markets").mkdir(parents=True, exist_ok=True)
        (self.root / "sessions").mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._resident: "OrderedDict[str, None]" = OrderedDict()

    # -- markets -------------------------------------------------------
    def _market_path(self, name: str) -> Path:
        return self.root / "markets" / f"{_safe(name)}.npz"

    def has_market(self, name: str) -> bool:
        return self._market_path(name).exists()

    def save_market(self, name: str, data: MarketData) -> None:
        """Persist a panel once; market names are immutable (the same
        contract as ``PortfolioService.register_market``), so an
        existing file is left untouched."""
        path = self._market_path(name)
        if path.exists():
            return
        save_state_dict(path, market_to_state(data))

    def load_market(self, name: str) -> MarketData:
        path = self._market_path(name)
        if not path.exists():
            raise KeyError(f"market {name!r} is not in the store")
        return market_from_state(
            _read_checkpoint_file(path, load_state_dict, referenced=True)
        )

    def market_names(self) -> Tuple[str, ...]:
        return tuple(
            sorted(
                unquote(p.name[: -len(".npz")])
                for p in (self.root / "markets").glob("*.npz")
            )
        )

    # -- sessions ------------------------------------------------------
    def _session_dir(self, session_id: str) -> Path:
        return self.root / "sessions" / _safe(session_id)

    def has_session(self, session_id: str) -> bool:
        return (self._session_dir(session_id) / "state.json").exists()

    def session_ids(self) -> Tuple[str, ...]:
        return tuple(
            sorted(
                unquote(p.parent.name)
                for p in (self.root / "sessions").glob("*/state.json")
            )
        )

    def save_session(self, payload: Dict[str, Any]) -> None:
        """Write-through one ``export_session`` payload.

        The (large, immutable) network weights land in a sidecar the
        first time only; the (small, per-round) JSON record lands last
        as the commit point.
        """
        directory = self._session_dir(payload["session_id"])
        directory.mkdir(parents=True, exist_ok=True)
        record = {k: v for k, v in payload.items() if k != "weights"}
        record["weights"] = None
        weights = payload.get("weights")
        if weights is not None:
            record["weights"] = "weights.npz"
            if not (directory / "weights.npz").exists():
                save_state_dict(directory / "weights.npz", weights)
        save_json(directory / "state.json", record)

    def load_session_record(self, session_id: str) -> Dict[str, Any]:
        """The JSON half of a stored session (weights left as the
        sidecar's filename) — enough to route or describe it."""
        path = self._session_dir(session_id) / "state.json"
        if not path.exists():
            raise KeyError(f"session {session_id!r} is not in the store")
        return _read_checkpoint_file(path, load_json, referenced=True)

    def load_session(self, session_id: str) -> Dict[str, Any]:
        """The full ``import_session`` payload, weights rehydrated."""
        record = self.load_session_record(session_id)
        if record.get("weights") is not None:
            record["weights"] = _read_checkpoint_file(
                self._session_dir(session_id) / record["weights"],
                load_state_dict,
                referenced=True,
            )
        return record

    def delete_session(self, session_id: str) -> None:
        directory = self._session_dir(session_id)
        # state.json first: once the commit mark is gone the session no
        # longer exists, whatever survives of the sidecar.
        for name in ("state.json", "weights.npz"):
            path = directory / name
            if path.exists():
                path.unlink()
        if directory.exists():
            directory.rmdir()
        with self._lock:
            self._resident.pop(session_id, None)

    # -- LRU residency -------------------------------------------------
    def touch(self, session_id: str) -> None:
        """Mark a session resident and most-recently-used."""
        with self._lock:
            self._resident[session_id] = None
            self._resident.move_to_end(session_id)

    def overflow(self) -> List[str]:
        """Pop and return the least-recently-used ids beyond
        ``max_resident`` (empty when unbounded).

        Deliberately separate from :meth:`touch`: a worker touches every
        session a batch serves, then collects the overflow *after* the
        batch commits and persists — so a batch wider than the residency
        budget can never evict a session it is still serving.
        """
        with self._lock:
            evicted: List[str] = []
            if self.max_resident is not None:
                while len(self._resident) > self.max_resident:
                    evicted.append(self._resident.popitem(last=False)[0])
            return evicted

    def drop_resident(self, session_id: str) -> None:
        with self._lock:
            self._resident.pop(session_id, None)

    def resident_ids(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._resident)
