"""Stdlib JSON/HTTP front-end for :class:`PortfolioService`.

No framework: a :class:`http.server.ThreadingHTTPServer` whose handler
speaks a small JSON protocol.  Concurrent ``POST /rebalance`` requests
from different connections funnel through a :class:`MicroBatcher`, so
simultaneous sessions on the same stateless strategy share one batched
network forward.

Routes
------
``GET  /healthz``            liveness + uptime + version + stats
``GET  /health``             liveness + stats + backpressure/degradation detail
                             (per-worker status when serving a supervisor)
``GET  /stats``              service/supervisor counters (failovers, shedding)
``GET  /metrics``            Prometheus text: obs registry series plus every
                             scalar service/supervisor counter as a gauge
``GET  /strategies``         names servable through the registry
``GET  /sessions``           live session descriptions
``POST /sessions``           ``{"session_id", "strategy", "params"?, "market"}``
``POST /rebalance``          ``{"session_id", "t"?, "priority"?}`` → one decision
``POST /rebalance/batch``    ``{"requests": [...]}`` → decisions in order

The same handler serves an in-process :class:`~repro.serving.PortfolioService`
or a multi-worker :class:`~repro.serving.ServingSupervisor` — the two
are duck-compatible, and ``/health``/``/stats`` simply surface more
(per-worker liveness, restart and failover counters) when a supervisor
is behind them.

Errors return ``{"error": "..."}`` with a 4xx status; backpressure maps
to its own codes — a full admission queue
(:class:`~repro.serving.QueueFull`) or a priority-shed request
(:class:`~repro.serving.LoadShed`) is a 429, a queue-deadline expiry
(:class:`~repro.serving.DeadlineExceeded`) a 504, and a draining
supervisor (:class:`~repro.serving.Draining`) a 503.  Start one with
:func:`serve` (see ``examples/serving_demo.py``).
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from .. import __version__
from ..obs import Obs, get_obs, render_prometheus
from .service import (
    DeadlineExceeded,
    InvalidStrategyOutput,
    MicroBatcher,
    PortfolioService,
    QueueFull,
    RebalanceRequest,
    decode_params,
)
from .supervisor import Draining, LoadShed

__all__ = ["ServiceHTTPServer", "ServingHandler", "serve"]


class ServiceHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`PortfolioService` (or
    :class:`~repro.serving.ServingSupervisor`)."""

    daemon_threads = True

    def __init__(
        self,
        address,
        service: PortfolioService,
        micro_batch: bool = True,
        max_batch: int = 64,
        max_wait: float = 0.005,
        max_queue: Optional[int] = None,
        request_timeout: Optional[float] = None,
        quiet: bool = True,
    ):
        super().__init__(address, ServingHandler)
        self.service = service
        self.batcher: Optional[MicroBatcher] = (
            MicroBatcher(
                service,
                max_batch=max_batch,
                max_wait=max_wait,
                max_queue=max_queue,
                request_timeout=request_timeout,
            )
            if micro_batch
            else None
        )
        self.quiet = quiet
        self.started = time.monotonic()
        # /metrics needs a live registry even when the backend runs
        # dark: prefer the backend's handle (one registry, one page),
        # then the process-global one, else a private front-only Obs.
        backend_obs = getattr(service, "obs", None)
        if backend_obs is not None and backend_obs.enabled:
            self.obs = backend_obs
        else:
            global_obs = get_obs()
            self.obs = global_obs if global_obs.enabled else Obs()

    def uptime_seconds(self) -> float:
        """Prefer the backend's construction anchor (it predates the
        front and survives re-binds); fall back to the server's own."""
        backend = getattr(self.service, "uptime_seconds", None)
        if callable(backend):
            return backend()
        return time.monotonic() - self.started


def _flatten_scalars(prefix: str, value: Any, out: Dict[str, float]) -> None:
    """Collect numeric leaves of a nested stats dict as ``a_b_c`` keys.

    Lists (worker detail, failover reports) are skipped — they carry
    unbounded per-incident detail, not counters."""
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key, item in value.items():
            sub = f"{prefix}_{key}" if prefix else str(key)
            _flatten_scalars(sub, item, out)


class ServingHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # Request logs used to vanish under quiet=True; now every line
        # lands in the structured event log at debug level (dropped
        # there only if the log's threshold says so), and stderr output
        # remains opt-in via quiet=False.
        obs = getattr(self.server, "obs", None)
        if obs is not None and obs.enabled:
            obs.event(
                "http_log",
                level="debug",
                client=self.address_string(),
                message=format % args,
            )
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    def _route(self) -> str:
        """The path normalised for metric labels: known routes pass
        through, anything else (unknown paths, future id-suffixed
        routes) collapses to its first segment + ``/*`` so label
        cardinality stays bounded."""
        path = self.path.split("?", 1)[0]
        known = {
            "/healthz", "/health", "/stats", "/metrics", "/strategies",
            "/sessions", "/rebalance", "/rebalance/batch",
        }
        if path in known:
            return path
        head = path.split("/", 2)[1] if path.startswith("/") else path
        return f"/{head}/*"

    def _write_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b"{}"
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _error(self, status: int, message: str) -> None:
        self._write_json(status, {"error": message})

    def _write_metrics(self) -> None:
        """``GET /metrics``: Prometheus text exposition.

        The page is the obs registry's render, with every scalar from
        the backend's stats mirrored in as ``repro_stats_*`` gauges
        first — so failover/shed/degraded counters are always present
        even when the backend itself runs with observability off.
        """
        service = self.server.service
        obs = self.server.obs
        if hasattr(service, "stats_dict"):
            stats: Dict[str, Any] = service.stats_dict()
        else:
            stats = {"service": service.stats.to_json_dict()}
            batcher = self.server.batcher
            if batcher is not None:
                stats["batcher"] = batcher.stats.to_json_dict()
        flat: Dict[str, float] = {}
        _flatten_scalars("", stats, flat)
        for key in sorted(flat):
            obs.gauge(
                f"repro_stats_{key}", help="mirrored backend stats scalar"
            ).set(flat[key])
        obs.gauge(
            "repro_uptime_seconds", help="seconds since backend construction"
        ).set(self.server.uptime_seconds())
        body = render_prometheus(obs.metrics).encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _observe_request(self, method: str, t0: float) -> None:
        obs = self.server.obs
        route = self._route()
        obs.counter(
            "repro_http_requests_total",
            help="HTTP requests by route",
            route=route,
            method=method,
        ).inc()
        obs.histogram(
            "repro_http_request_seconds",
            help="HTTP request wall-clock by route",
            route=route,
            method=method,
        ).observe(time.perf_counter() - t0)

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802
        t0 = time.perf_counter()
        try:
            self._do_get()
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if isinstance(exc, KeyError) and exc.args else str(exc)
            self._error(400, str(message))
        except Exception as exc:
            self._error(500, f"{type(exc).__name__}: {exc}")
        finally:
            self._observe_request("GET", t0)

    def _do_get(self) -> None:
        service = self.server.service
        if self.path == "/healthz":
            self._write_json(
                200,
                {
                    "status": "ok",
                    "sessions": len(service.session_ids()),
                    "uptime_seconds": self.server.uptime_seconds(),
                    "version": __version__,
                    "stats": service.stats.to_json_dict(),
                },
            )
        elif self.path == "/health":
            # The resilience-aware sibling of /healthz: same liveness
            # signal plus the counters an operator watches under load —
            # degraded serving and admission-queue backpressure.  A
            # supervisor additionally reports per-worker liveness and
            # whether a drain is underway.
            batcher = self.server.batcher
            payload: Dict[str, Any] = {
                "status": "ok",
                "sessions": len(service.session_ids()),
                "uptime_seconds": self.server.uptime_seconds(),
                "version": __version__,
                "stats": service.stats.to_json_dict(),
                "batcher": (
                    batcher.stats.to_json_dict()
                    if batcher is not None
                    else None
                ),
            }
            stats = service.stats
            if hasattr(stats, "degraded_responses"):
                payload["degraded_responses"] = stats.degraded_responses
                payload["breaker_trips"] = stats.breaker_trips
            if hasattr(service, "worker_health"):
                workers = [h.to_json_dict() for h in service.worker_health()]
                payload["workers"] = workers
                payload["worker_restarts"] = stats.worker_restarts
                payload["failovers"] = stats.failovers
                if getattr(service, "_draining", False):
                    payload["status"] = "draining"
                elif not all(w["alive"] for w in workers):
                    # A dead worker between heartbeats: still serving
                    # (dispatch heals on touch), but say so.
                    payload["status"] = "degraded"
            self._write_json(200, payload)
        elif self.path == "/stats":
            if hasattr(service, "stats_dict"):
                payload = dict(service.stats_dict())
            else:
                batcher = self.server.batcher
                payload = {
                    "service": service.stats.to_json_dict(),
                    "batcher": (
                        batcher.stats.to_json_dict()
                        if batcher is not None
                        else None
                    ),
                }
            payload["uptime_seconds"] = self.server.uptime_seconds()
            payload["version"] = __version__
            self._write_json(200, payload)
        elif self.path == "/metrics":
            self._write_metrics()
        elif self.path == "/strategies":
            self._write_json(200, {"strategies": list(service.registry.names())})
        elif self.path == "/sessions":
            self._write_json(
                200,
                {
                    "sessions": [
                        info.to_json_dict()
                        for info in service.describe_sessions()
                    ]
                },
            )
        else:
            self._error(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802
        t0 = time.perf_counter()
        try:
            self._do_post()
        finally:
            self._observe_request("POST", t0)

    def _do_post(self) -> None:
        try:
            payload = self._read_json()
        except (ValueError, json.JSONDecodeError) as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return
        try:
            if self.path == "/sessions":
                self._create_session(payload)
            elif self.path == "/rebalance":
                self._rebalance(payload)
            elif self.path == "/rebalance/batch":
                self._rebalance_batch(payload)
            else:
                self._error(404, f"unknown path {self.path!r}")
        except Draining as exc:
            # The supervisor is shutting down cleanly; clients should
            # fail over to another instance.
            self._error(503, str(exc))
        except LoadShed as exc:
            # Priority shedding at the supervisor front.  Same 429
            # family as QueueFull, with a marker so clients can tell
            # "queue full, back off" from "outranked, raise priority".
            self._write_json(429, {"error": str(exc), "shed": True})
        except QueueFull as exc:
            # Backpressure, not failure: the admission queue is at its
            # bound — clients should back off and retry.
            self._error(429, str(exc))
        except DeadlineExceeded as exc:
            # The request aged out waiting for a batch leader.
            self._error(504, str(exc))
        except InvalidStrategyOutput as exc:
            # Server-side strategy fault, not a bad request.
            self._error(500, str(exc))
        except (KeyError, ValueError, TypeError) as exc:
            # str(KeyError) wraps the message in repr quotes; unwrap it.
            message = exc.args[0] if isinstance(exc, KeyError) and exc.args else str(exc)
            self._error(400, str(message))
        except Exception as exc:  # strategy/internal failure: JSON 500, keep the connection sane
            self._error(500, f"{type(exc).__name__}: {exc}")

    _SESSION_FIELDS = {"session_id", "strategy", "params", "market", "start"}

    def _create_session(self, payload: Dict[str, Any]) -> None:
        unknown = set(payload) - self._SESSION_FIELDS
        if unknown:
            raise ValueError(
                f"unknown fields {sorted(unknown)}; expected "
                f"{sorted(self._SESSION_FIELDS)}"
            )
        if "session_id" not in payload:
            raise ValueError("'session_id' is required")
        if "market" not in payload:
            raise ValueError("'market' is required (a registered market name)")
        # Params pass through the checkpoint codec, so tagged config
        # objects (e.g. {"__type__": "ObservationConfig", ...}) can be
        # expressed over the wire.
        params = decode_params(payload.get("params") or {})
        info = self.server.service.create_session(
            session_id=str(payload["session_id"]),
            strategy=str(payload.get("strategy", "sdp")),
            params=params,
            market=str(payload["market"]),
            start=payload.get("start"),
        )
        self._write_json(201, info.to_json_dict())

    @staticmethod
    def _parse_request(payload: Dict[str, Any]) -> RebalanceRequest:
        unknown = set(payload) - {"session_id", "t", "priority"}
        if unknown:
            raise ValueError(
                f"unknown fields {sorted(unknown)}; expected "
                "['session_id', 't', 'priority']"
            )
        if "session_id" not in payload:
            raise ValueError("'session_id' is required")
        t = payload.get("t")
        return RebalanceRequest(
            session_id=str(payload["session_id"]),
            t=None if t is None else int(t),
            priority=int(payload.get("priority") or 0),
        )

    def _rebalance(self, payload: Dict[str, Any]) -> None:
        request = self._parse_request(payload)
        t0 = time.perf_counter()
        if self.server.batcher is not None:
            response = self.server.batcher.submit(request)
        else:
            response = self.server.service.rebalance(request)
        self._observe_rebalance(t0)
        self._write_json(200, response.to_json_dict())

    def _rebalance_batch(self, payload: Dict[str, Any]) -> None:
        raw = payload.get("requests")
        if not isinstance(raw, list) or not raw:
            raise ValueError("'requests' must be a non-empty list")
        requests = [self._parse_request(item) for item in raw]
        t0 = time.perf_counter()
        responses = self.server.service.rebalance_many(requests)
        self._observe_rebalance(t0)
        self._write_json(
            200, {"responses": [r.to_json_dict() for r in responses]}
        )

    def _observe_rebalance(self, t0: float) -> None:
        # Observed into the front's obs unconditionally so the
        # acceptance-critical rebalance latency summary is on /metrics
        # even when the backend runs dark.
        self.server.obs.histogram(
            "repro_rebalance_latency_seconds",
            help="rebalance_many wall-clock per call",
            component="http",
        ).observe(time.perf_counter() - t0)


def serve(
    service: PortfolioService,
    host: str = "127.0.0.1",
    port: int = 8000,
    micro_batch: bool = True,
    max_batch: int = 64,
    max_wait: float = 0.005,
    max_queue: Optional[int] = None,
    request_timeout: Optional[float] = None,
    quiet: bool = True,
) -> ServiceHTTPServer:
    """Bind a :class:`ServiceHTTPServer`; call ``serve_forever()`` on it.

    ``service`` may be an in-process :class:`PortfolioService` or a
    :class:`~repro.serving.ServingSupervisor` — the handler serves both.
    ``port=0`` picks a free port (``server.server_address`` has it).
    ``max_queue``/``request_timeout`` bound the micro-batcher's
    admission queue (429) and queue wait (504); ``None`` leaves both
    unbounded.
    """
    return ServiceHTTPServer(
        (host, port),
        service,
        micro_batch=micro_batch,
        max_batch=max_batch,
        max_wait=max_wait,
        max_queue=max_queue,
        request_timeout=request_timeout,
        quiet=quiet,
    )
