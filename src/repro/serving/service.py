"""Multi-session portfolio inference service.

``PortfolioService`` is the deployment counterpart of the back-test
loop: each *session* is one live portfolio (a market panel, a strategy
spec, the previous target weights, and a decision cursor), and a
rebalance request asks "given everything up to period ``t``, what are
the next target weights?".  Decisions are produced through the public
Strategy protocol (:meth:`~repro.agents.base.Agent.prepare_states` /
:meth:`~repro.agents.base.Agent.decide_batch`), so concurrent requests
against stateless strategies collapse into one batched network forward
— the same mechanism :class:`~repro.envs.backtester.Backtester` uses in
lockstep mode, which is what keeps served trajectories bit-comparable
with ``run_backtest``.

Checkpointing persists every session (market panel, cursor, weights)
plus the network state dicts of learned strategies through
:mod:`repro.utils.serialization` (every file atomic, the manifest
written last as the commit point), so a service can be stopped and
resumed with identical subsequent decisions.

Resilience (PR 7): an optional :class:`ServingResilience` config arms a
per-session circuit breaker — a session whose strategy keeps failing is
served *degraded* hold-previous-weights responses
(:attr:`RebalanceResponse.degraded`) for a cooldown instead of failing
every caller — and an optional
:class:`~repro.resilience.FaultPlan` arms the serving chaos seams
(forward raises, slow sessions, checkpoint corruption).  Both default
to off, leaving the unhardened bit-identical paths.
"""

from __future__ import annotations

import copy
import inspect
import json
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..agents.base import Agent, concat_states
from ..autograd import no_grad
from ..obs import get_obs
from ..data.market import MarketData, market_from_state, market_to_state
from ..envs.costs import (
    DEFAULT_COMMISSION,
    drifted_weights,
    transaction_remainder_exact,
)
from ..envs.observations import ObservationConfig
from ..envs.portfolio import normalize_action
from ..registry import DEFAULT_REGISTRY, StrategyRegistry
from ..resilience import InjectedFault, injector_from
from ..risk import LockoutState
from ..snn.neurons import LIFParameters
from ..utils.serialization import (
    PathLike,
    decode_tagged,
    encode_tagged,
    load_json,
    load_state_dict,
    register_tagged_type,
    save_json,
    save_state_dict,
)

__all__ = [
    "BatcherStats",
    "CheckpointCorrupt",
    "DeadlineExceeded",
    "InvalidStrategyOutput",
    "MicroBatcher",
    "PortfolioService",
    "QueueFull",
    "RebalanceRequest",
    "RebalanceResponse",
    "ServiceStats",
    "ServingResilience",
    "SessionInfo",
]


class InvalidStrategyOutput(ValueError):
    """A strategy produced invalid weights (a server-side fault, not a
    bad request — the HTTP layer maps it to a 500)."""


class CheckpointCorrupt(RuntimeError):
    """A checkpoint file failed to load — truncated, tampered, or
    missing.  The message names the offending file so operators know
    what to restore."""


class QueueFull(RuntimeError):
    """The micro-batcher's bounded admission queue rejected a request
    (backpressure — the HTTP layer maps it to a 429)."""


class DeadlineExceeded(TimeoutError):
    """A queued request waited past its deadline without being served
    (the HTTP layer maps it to a 504)."""


@dataclass(frozen=True)
class ServingResilience:
    """Per-session circuit-breaker configuration.

    After ``failure_threshold`` consecutive strategy failures a
    session's breaker opens: its next ``cooldown_decisions`` requests
    are served degraded (previous weights held, cursor advanced,
    ``degraded=True``) without touching the strategy.  The first
    request after the cooldown is the half-open probe — success closes
    the breaker, another failure reopens it.
    """

    failure_threshold: int = 3
    cooldown_decisions: int = 8

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_decisions < 1:
            raise ValueError("cooldown_decisions must be >= 1")


# ----------------------------------------------------------------------
# Spec (de)serialisation: strategy params may contain the repo's config
# dataclasses; the shared tagged codec (repro.utils.serialization)
# encodes them with a type tag so specs round-trip JSON.  The same codec
# is what the experiment artifact store writes, which is why serving can
# load strategies straight out of sweep artifacts.

register_tagged_type(ObservationConfig)
register_tagged_type(LIFParameters)

_encode_value = encode_tagged
_decode_value = decode_tagged


def decode_params(params: Any) -> Any:
    """Decode a JSON params payload, resolving tagged config objects
    (``{"__type__": "ObservationConfig", ...}``) — the same codec
    checkpoints use, exposed for the HTTP layer."""
    return decode_tagged(params)


def _canonical_key(strategy: str, params: Dict[str, Any]) -> Optional[str]:
    """Canonical JSON identity of a strategy spec, used both for
    shared-agent matching and checkpoint round-trips — one definition so
    restored agents keep matching newly created specs.  ``None`` when
    the params are not encodable."""
    try:
        return json.dumps(
            {"strategy": strategy, "params": _encode_value(params)},
            sort_keys=True,
        )
    except TypeError:
        return None


# Panel (de)serialisation is shared with the artifact store.
_market_to_state = market_to_state
_market_from_state = market_from_state


def _read_checkpoint_file(path: Path, loader, referenced: bool = False):
    """Load one checkpoint file, turning damage into a structured error.

    Truncated/corrupt bytes (a torn npz, half a JSON manifest) raise
    :class:`CheckpointCorrupt` naming the file.  ``referenced=True``
    marks files the manifest points at — for those, *missing* is also
    corruption (the commit mark exists but its contents do not), while
    a missing manifest itself stays ``FileNotFoundError``.
    """
    try:
        return loader(path)
    except FileNotFoundError:
        if referenced:
            raise CheckpointCorrupt(
                f"checkpoint file {path} is referenced by the manifest "
                "but missing"
            ) from None
        raise
    except Exception as exc:
        # np.load raises zipfile.BadZipFile/ValueError/EOFError on torn
        # archives and json raises JSONDecodeError on torn text; the
        # loader does nothing but read, so anything it throws is a
        # damaged file.
        raise CheckpointCorrupt(
            f"checkpoint file {path} is corrupt: {type(exc).__name__}: {exc}"
        ) from exc


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RebalanceRequest:
    """One rebalance query against a session.

    ``t`` is the decision index into the session's panel; ``None`` means
    "the session's next decision" (the cursor), which is what a live
    stream of requests uses.  An explicit ``t`` is a **seek**: the
    decision is computed against the session's *current* weights and the
    cursor moves to ``t + 1`` — use it to start a stream at a chosen
    period or to skip ahead, not to replay history on a live session
    (the original weight chain is not reconstructed).

    ``priority`` matters only at an overloaded supervisor front: when
    the in-flight budget is exhausted, lower-priority requests are shed
    with a structured 429 while strictly higher-priority ones are still
    admitted.  The in-process service ignores it (decisions never
    depend on priority), which keeps supervisor and plain responses
    bit-identical.
    """

    session_id: str
    t: Optional[int] = None
    priority: int = 0


@dataclass
class RebalanceResponse:
    """The served decision: target weights (cash first) for period ``t``.

    ``execution`` is an advisory pre-trade estimate (expected impact
    cost, peak participation, fillable fraction) attached only when the
    service carries a non-free execution engine; decisions themselves
    are never altered by it.

    ``risk`` is the guardrail report attached only when the service
    carries a risk engine.  Unlike ``execution`` it is *not* advisory:
    ``weights`` are the post-projection weights actually served —
    constraints bound in serving exactly as they do in back-test.
    """

    session_id: str
    t: int
    weights: np.ndarray
    strategy: str
    execution: Optional[Dict[str, float]] = None
    risk: Optional[Dict[str, Any]] = None
    # True when a circuit-broken session held its previous weights
    # instead of consulting the strategy (resilience-enabled services
    # only).  Healthy responses omit the key on the wire entirely, so
    # hardened and unhardened payloads are byte-identical.
    degraded: bool = False

    def to_json_dict(self) -> Dict[str, Any]:
        payload = {
            "session_id": self.session_id,
            "t": self.t,
            "weights": [float(w) for w in np.asarray(self.weights)],
            "strategy": self.strategy,
        }
        if self.execution is not None:
            payload["execution"] = dict(self.execution)
        if self.risk is not None:
            payload["risk"] = dict(self.risk)
        if self.degraded:
            payload["degraded"] = True
        return payload


@dataclass
class SessionInfo:
    """Public description of a live session."""

    session_id: str
    strategy: str
    market: str
    n_assets: int
    next_t: int
    last_t: int
    decisions: int
    shared_agent: bool

    def to_json_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class ServiceStats:
    """Counters for observing micro-batching effectiveness."""

    requests_served: int = 0
    batched_forwards: int = 0
    single_decisions: int = 0
    largest_batch: int = 0
    sessions_created: int = 0
    degraded_responses: int = 0
    breaker_trips: int = 0

    def to_json_dict(self) -> Dict[str, int]:
        return asdict(self)


@dataclass
class _StagedState:
    """Per-session scratch state a transactional batch decides against."""

    w_prev: np.ndarray
    next_t: int
    decisions: int = 0
    first_t: Optional[int] = None
    # Guardrail paper-book state (risk-engine services only).
    risk_value: float = 1.0
    risk_w_drifted: Optional[np.ndarray] = None
    lockout: Optional[LockoutState] = None


@dataclass
class _Session:
    session_id: str
    spec: Dict[str, Any]           # {"strategy": name, "params": {...}} (raw)
    agent: Agent
    agent_key: str                 # canonical key; shared agents collide here
    shared: bool
    market: str                    # name in the service's market registry
    data: MarketData
    observation: ObservationConfig
    next_t: int
    start: int
    w_prev: np.ndarray
    decisions: int = 0
    # Guardrail paper book (risk-engine services only): simulated
    # portfolio value, drifted pre-trade weights, and lockout state —
    # the same recurrence PortfolioEnv steps, so drawdown lockouts
    # trigger identically live and in back-test.  ``risk_w_drifted is
    # None`` means "not yet armed" (fresh sessions, and sessions
    # restored from pre-risk checkpoints — they arm lazily on the next
    # decision).
    risk_value: float = 1.0
    risk_w_drifted: Optional[np.ndarray] = None
    lockout: Optional[LockoutState] = None
    # Circuit-breaker counters (resilience-enabled services only).
    # Runtime state, deliberately not checkpointed: a restored service
    # starts every breaker closed.
    breaker_failures: int = 0
    breaker_cooldown: int = 0


class PortfolioService:
    """Serves rebalance decisions for many concurrent portfolio sessions.

    Parameters
    ----------
    registry:
        Strategy registry used to construct session strategies
        (defaults to the process-wide one, including user strategies
        registered through :func:`repro.registry.register`).
    commission:
        Recorded per-session for parity with back-test configuration
        (decisions themselves are commission-free functions of state).
    execution:
        Optional :class:`~repro.execution.ExecutionEngine`.  A
        *non-free* engine attaches advisory pre-trade cost estimates to
        every response (:attr:`RebalanceResponse.execution`); ``None``
        or a zero-cost model skips the execution layer entirely — the
        micro-batched hot path does no extra work per round.  Advisory
        only: served weights are never altered, and the engine is a
        runtime setting (not persisted in checkpoints).
    risk:
        Optional :class:`~repro.risk.RiskEngine` — per-session
        guardrails.  Every decision is projected onto the constraint
        set before it is served (*not* advisory: the served weights are
        the post-projection ones), driven by a per-session paper book
        stepping the exact :class:`~repro.envs.portfolio.PortfolioEnv`
        recurrence, so drawdown lockouts fire identically live and in
        back-test.  ``None`` or a null engine (no limits) skips the
        layer entirely.  The engine is a runtime setting; the
        per-session guardrail state (value, high-water mark, lockout)
        persists through checkpoints.
    resilience:
        Optional :class:`ServingResilience` enabling the per-session
        circuit breaker.  ``None`` (default) keeps today's semantics:
        strategy failures abort the whole transactional batch and
        propagate.
    faults:
        Optional :class:`~repro.resilience.FaultPlan` (or prepared
        :class:`~repro.resilience.FaultInjector`) arming the serving
        chaos seams — injected forward failures, slow sessions, and
        checkpoint corruption.  ``None`` or an empty plan leaves every
        seam cold.
    """

    def __init__(
        self,
        registry: Optional[StrategyRegistry] = None,
        commission: float = DEFAULT_COMMISSION,
        execution=None,
        risk=None,
        resilience: Optional[ServingResilience] = None,
        faults=None,
        obs=None,
    ):
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self.commission = float(commission)
        self._resilience = resilience
        self._injector = injector_from(faults)
        # Session ids with any breaker state (failures or cooldown).
        # Empty set == every breaker closed and clean, so the resilient
        # dispatch can take the transactional hot path with O(1) extra
        # work per batch.  Ids only leave the set on the general path.
        self._breaker_dirty: set = set()
        # Resolved once: the ZeroSlippage fast path must cost nothing
        # per decision, not re-test the model every round.
        self._execution = (
            execution
            if execution is not None and not execution.is_free
            else None
        )
        # Same discipline: a null risk engine is dropped outright so the
        # hot path never pays for an empty projection.
        self._risk = risk if risk is not None and not risk.is_null else None
        self.stats = ServiceStats()
        self._sessions: Dict[str, _Session] = {}
        self._markets: Dict[str, MarketData] = {}
        self._shared_agents: Dict[str, Agent] = {}
        self._private_seq = 0  # stable unique keys for unshared agents
        self._lock = threading.RLock()
        self._started = time.monotonic()
        self._obs = obs if obs is not None else get_obs()
        if self._obs.enabled:
            self._m_latency = self._obs.histogram(
                "repro_rebalance_latency_seconds",
                help="rebalance_many wall-clock per call",
                component="service",
            )
            self._m_requests = self._obs.counter(
                "repro_requests_total", help="rebalance requests served"
            )
            self._m_degraded = self._obs.counter(
                "repro_degraded_responses_total",
                help="circuit-broken hold responses",
            )
            self._m_breaker = self._obs.counter(
                "repro_breaker_trips_total", help="session breaker trips"
            )

    @property
    def obs(self):
        """The observability handle this service records into."""
        return self._obs

    def uptime_seconds(self) -> float:
        """Seconds since this service instance was constructed."""
        return time.monotonic() - self._started

    @property
    def execution(self):
        """The active execution engine (``None`` when unset, or when
        the configured model was free and got dropped at construction)."""
        return self._execution

    @property
    def risk(self):
        """The active risk engine (``None`` when unset, or when the
        configured engine was null and got dropped at construction)."""
        return self._risk

    # -- markets -------------------------------------------------------
    def register_market(self, name: str, data: MarketData) -> str:
        """Register a market panel sessions can reference by name.

        Names are immutable once bound: live sessions and checkpoints
        reference panels by name, so rebinding would silently swap the
        data under them.  Re-registering the same panel is a no-op.
        """
        if not isinstance(data, MarketData):
            raise TypeError("data must be a MarketData panel")
        with self._lock:
            existing = self._markets.get(name)
            if existing is not None and existing is not data:
                raise ValueError(
                    f"market {name!r} is already registered with a different "
                    "panel; market names are immutable"
                )
            self._markets[name] = data
        return name

    def market_names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._markets))

    # -- sessions ------------------------------------------------------
    def create_session(
        self,
        session_id: str,
        strategy: str = "sdp",
        params: Optional[Mapping[str, Any]] = None,
        market: Optional[str] = None,
        data: Optional[MarketData] = None,
        observation: Optional[ObservationConfig] = None,
        start: Optional[int] = None,
        agent: Optional[Agent] = None,
        agent_key: Optional[str] = None,
    ) -> SessionInfo:
        """Open a session serving ``strategy`` over a market panel.

        The panel comes either from a registered market name
        (``market=...``) or inline (``data=...``, auto-registered under
        ``"session:<id>"``).  Learned strategies receive ``n_assets``
        automatically when the params omit it.  ``start`` overrides the
        first decision index (default: the observation's earliest index
        with a full window, matching ``run_backtest``).

        A *prebuilt* ``agent`` (e.g. one trained elsewhere, or loaded
        from an experiment artifact — see
        :meth:`create_session_from_artifact`) bypasses registry
        construction; ``strategy``/``params`` still describe it so
        checkpoints can rebuild it.  Stateless prebuilt agents sharing
        the same ``agent_key`` are shared across sessions like
        registry-built ones; without a key the agent stays private to
        this session.
        """
        params = dict(params or {})
        prebuilt = agent
        with self._lock:
            if session_id in self._sessions:
                raise ValueError(f"session {session_id!r} already exists")
            if (market is None) == (data is None):
                raise ValueError("pass exactly one of market= or data=")
            if market is not None:
                if market not in self._markets:
                    raise KeyError(
                        f"unknown market {market!r}; registered: "
                        f"{', '.join(self.market_names()) or '(none)'}"
                    )
                panel = self._markets[market]
                market_name = market
            else:
                panel = data
                market_name = f"session:{session_id}"

            if strategy not in self.registry:
                raise KeyError(
                    f"unknown strategy {strategy!r}; available: "
                    f"{', '.join(self.registry.names())}"
                )
            agent, agent_key, shared, build_params = self._resolve_agent(
                strategy, params, panel, prebuilt=prebuilt, prebuilt_key=agent_key
            )
            obs = observation
            if obs is None:
                obs = getattr(agent, "observation", None)
            if obs is None:
                obs = ObservationConfig()

            first = obs.first_decision_index()
            if first >= panel.n_periods - 1:
                raise ValueError(
                    f"panel too short: {panel.n_periods} periods for "
                    f"observation window {obs.window}"
                )
            t0 = int(start) if start is not None else first
            if not first <= t0 <= panel.n_periods - 2:
                raise ValueError(
                    f"start index {t0} outside decidable range "
                    f"[{first}, {panel.n_periods - 2}]"
                )

            # Register the inline panel and publish the shared agent only
            # after everything validated, so a failed create leaves no
            # ghost market or agent behind.  register_market keeps names
            # immutable even when a closed session's auto-name is still
            # referenced by others.
            if data is not None:
                self.register_market(market_name, panel)
            if shared:
                self._shared_agents[agent_key] = agent
            session = _Session(
                session_id=session_id,
                spec={"strategy": strategy, "params": build_params},
                agent=agent,
                agent_key=agent_key,
                shared=shared,
                market=market_name,
                data=panel,
                observation=obs,
                next_t=t0,
                start=t0,
                w_prev=self._initial_weights(panel),
            )
            if not shared:
                agent.begin_backtest(panel)
            self._sessions[session_id] = session
            self.stats.sessions_created += 1
            return self._info(session)

    def create_session_from_artifact(
        self,
        session_id: str,
        store,
        shard_id: str,
        market: Optional[str] = None,
        data: Optional[MarketData] = None,
        observation: Optional[ObservationConfig] = None,
        start: Optional[int] = None,
    ) -> SessionInfo:
        """Open a session serving a strategy trained by the sweep engine.

        ``store`` is an :class:`~repro.experiments.ArtifactStore` (or
        its root path); the shard's persisted constructor params rebuild
        the exact agent and its trained weights are loaded — the same
        checkpoint-loading path the experiment layer uses.  Sessions
        created from the same shard share one agent instance (stateless
        strategies), so a fleet of live portfolios serving one trained
        policy micro-batches into single forwards.
        """
        from ..experiments.artifacts import ArtifactStore

        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        # json-only spec read; the warm path (agent already shared from
        # an earlier session on this shard) never touches the npz files.
        spec = store.load_strategy_spec(shard_id)
        key = f"artifact:{Path(store.root).resolve()}:{shard_id}"
        with self._lock:
            agent = self._shared_agents.get(f"!{key}")
        if agent is None:
            agent = store.load_agent(shard_id, registry=self.registry)
        return self.create_session(
            session_id,
            strategy=spec["strategy"],
            params=spec["params"],
            market=market,
            data=data,
            observation=observation,
            start=start,
            agent=agent,
            agent_key=key,
        )

    def _resolve_agent(
        self,
        strategy: str,
        params: Dict[str, Any],
        panel: MarketData,
        prebuilt: Optional[Agent] = None,
        prebuilt_key: Optional[str] = None,
    ) -> Tuple[Agent, str, bool, Dict[str, Any]]:
        """Construct (or share) the strategy instance for a session.

        Returns the agent, its canonical key, whether it is shared, and
        the *effective* constructor params (``n_assets`` auto-injected
        when the strategy's factory accepts it — learned strategies,
        built-in or user-registered) — the spec checkpoints persist.
        """
        build_params = dict(params)
        if "n_assets" not in build_params and self._factory_takes_n_assets(
            strategy
        ):
            build_params["n_assets"] = panel.n_assets
        if prebuilt is not None:
            n = getattr(prebuilt, "n_assets", None)
            if n is not None and int(n) != panel.n_assets:
                raise ValueError(
                    f"prebuilt agent serves {int(n)} assets but the panel "
                    f"has {panel.n_assets}"
                )
            if prebuilt.stateless and prebuilt_key is not None:
                # Keyed prebuilt agents share like canonical ones; the
                # "!" prefix keeps the key out of spec-canonical space.
                key = f"!{prebuilt_key}"
                existing = self._shared_agents.get(key)
                if existing is not None:
                    return existing, key, True, build_params
                return prebuilt, key, True, build_params
            self._private_seq += 1
            return prebuilt, f"!private:{self._private_seq}", False, build_params
        canonical = _canonical_key(strategy, build_params)
        if canonical is not None and canonical in self._shared_agents:
            return self._shared_agents[canonical], canonical, True, build_params
        agent = self.registry.create(strategy, **build_params)
        if agent.stateless and canonical is not None:
            # Not cached yet: create_session publishes to _shared_agents
            # only after the whole create validates, so a failed create
            # leaves no ghost agent behind.
            return agent, canonical, True, build_params
        # Stateful agents are never shared, so their key must be unique
        # per instance — a spec-derived (or reusable id-based) key would
        # make checkpoints collapse same-spec sessions onto one agent.
        self._private_seq += 1
        return agent, f"!private:{self._private_seq}", False, build_params

    def _factory_takes_n_assets(self, strategy: str) -> bool:
        factory = self.registry.get_factory(strategy)
        if factory is None:
            return False
        try:
            return "n_assets" in inspect.signature(factory).parameters
        except (TypeError, ValueError):  # builtins without signatures
            return False

    @staticmethod
    def _initial_weights(panel: MarketData) -> np.ndarray:
        w = np.zeros(panel.n_assets + 1)
        w[0] = 1.0  # fully in cash, like PortfolioEnv.reset()
        return w

    def _info(self, session: _Session) -> SessionInfo:
        return SessionInfo(
            session_id=session.session_id,
            strategy=session.spec["strategy"],
            market=session.market,
            n_assets=session.data.n_assets,
            next_t=session.next_t,
            last_t=session.data.n_periods - 2,
            decisions=session.decisions,
            shared_agent=session.shared,
        )

    def close_session(self, session_id: str) -> None:
        with self._lock:
            self._breaker_dirty.discard(session_id)
            session = self._sessions.pop(session_id, None)
            if session is None:
                return
            # Drop resources nothing else references: the session's
            # auto-registered inline panel and its shared agent entry.
            if session.market.startswith("session:") and not any(
                s.market == session.market for s in self._sessions.values()
            ):
                self._markets.pop(session.market, None)
            if session.shared and not any(
                s.agent_key == session.agent_key
                for s in self._sessions.values()
            ):
                self._shared_agents.pop(session.agent_key, None)

    def session_ids(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._sessions))

    def describe_session(self, session_id: str) -> SessionInfo:
        with self._lock:
            return self._info(self._session(session_id))

    def describe_sessions(self) -> Tuple[SessionInfo, ...]:
        """Atomic snapshot of every live session's description."""
        with self._lock:
            return tuple(
                self._info(session)
                for _, session in sorted(self._sessions.items())
            )

    def _session(self, session_id: str) -> _Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"unknown session {session_id!r}") from None

    # -- serving -------------------------------------------------------
    def rebalance(self, request: Union[RebalanceRequest, str]) -> RebalanceResponse:
        """Serve one rebalance decision (accepts a bare session id)."""
        if isinstance(request, str):
            request = RebalanceRequest(session_id=request)
        return self.rebalance_many([request])[0]

    def rebalance_many(
        self, requests: Sequence[RebalanceRequest]
    ) -> List[RebalanceResponse]:
        """Serve a batch of rebalance requests, micro-batching across
        sessions.

        Requests hitting sessions that share a stateless strategy
        instance are decided in one ``decide_batch`` forward pass.
        Multiple requests for the *same* session keep their sequential
        semantics: they are processed in arrival order across rounds,
        each seeing the weights the previous one produced.

        The batch is transactional: decisions are computed against
        staged copies of the session state, and the sessions (and
        stats) are only updated after every request in the batch has
        produced a valid decision.  Any error — unknown session, index
        out of range, a strategy returning invalid weights — leaves
        every session untouched.

        With a :class:`ServingResilience` config the transaction is a
        best-effort outer shell instead: a strategy failure no longer
        fails the whole batch — the offending requests are isolated,
        their sessions' breaker counters advance, and circuit-broken
        sessions are served degraded hold-previous-weights responses
        (``degraded=True``) while healthy siblings commit normally.
        Client errors (unknown session, out-of-range index) still raise
        either way.
        """
        if not requests:
            return []
        obs_on = self._obs.enabled
        if obs_on:
            t0 = time.perf_counter()
        if self._resilience is None:
            responses = self._rebalance_transactional(requests)
        else:
            responses = self._rebalance_resilient(requests)
        if obs_on:
            self._m_latency.observe(time.perf_counter() - t0)
            self._m_requests.inc(len(requests))
        return responses

    def _rebalance_resilient(
        self, requests: Sequence[RebalanceRequest]
    ) -> List[RebalanceResponse]:
        """The circuit-breaker shell around the transactional core."""
        with self._lock:
            if not self._breaker_dirty:
                # Hot path: every breaker closed and clean.  Serve the
                # whole batch through the transactional core with O(1)
                # extra work — the overhead budget the bench gates on.
                try:
                    return self._rebalance_transactional(requests)
                except Exception:
                    pass
                responses: List[Optional[RebalanceResponse]] = [None] * len(requests)
                live: List[Tuple[int, RebalanceRequest]] = list(enumerate(requests))
            else:
                responses = [None] * len(requests)
                live = []
                for i, req in enumerate(requests):
                    session = self._session(req.session_id)
                    if session.breaker_cooldown > 0:
                        responses[i] = self._serve_degraded(session, req)
                    else:
                        live.append((i, req))
                if live:
                    try:
                        served = self._rebalance_transactional(
                            [req for _, req in live]
                        )
                    except Exception:
                        served = None
                    if served is not None:
                        for (i, _), resp in zip(live, served):
                            responses[i] = resp
                        for _, req in live:
                            self._reset_breaker(self._sessions[req.session_id])
                        live = []
            # The live batch failed as a whole; replay it one request at
            # a time so only the offenders degrade.  Earlier successes
            # in the replay stay committed — isolation trades away
            # all-or-nothing on purpose.
            for i, req in live:
                session = self._session(req.session_id)
                if session.breaker_cooldown > 0:
                    responses[i] = self._serve_degraded(session, req)
                    continue
                try:
                    responses[i] = self._rebalance_transactional([req])[0]
                    self._reset_breaker(session)
                except (KeyError, TypeError):
                    raise  # client error, breaker not at fault
                except Exception as exc:
                    if isinstance(exc, ValueError) and not isinstance(
                        exc, InvalidStrategyOutput
                    ):
                        raise  # bad index etc. — client error
                    self._record_breaker_failure(session)
                    responses[i] = self._serve_degraded(session, req)
            return responses  # type: ignore[return-value]

    def _serve_degraded(
        self, session: _Session, request: RebalanceRequest
    ) -> RebalanceResponse:
        """Hold-previous-weights response for a circuit-broken session.

        The cursor still advances (a live stream keeps flowing) but the
        strategy, the served weights, and the risk paper book are left
        untouched — the degraded period is a hold, not a trade.
        """
        t = int(request.t) if request.t is not None else session.next_t
        first = session.observation.first_decision_index()
        if not first <= t <= session.data.n_periods - 2:
            raise ValueError(
                f"session {session.session_id!r}: decision index {t} "
                f"outside decidable range "
                f"[{first}, {session.data.n_periods - 2}]"
            )
        session.next_t = t + 1
        session.decisions += 1
        if session.breaker_cooldown > 0:
            session.breaker_cooldown -= 1
        self.stats.requests_served += 1
        self.stats.degraded_responses += 1
        if self._obs.enabled:
            self._m_degraded.inc()
            self._obs.event(
                "serving_degraded",
                level="warn",
                session=session.session_id,
                t=t,
            )
        return RebalanceResponse(
            session_id=session.session_id,
            t=t,
            weights=session.w_prev.copy(),
            strategy=session.spec["strategy"],
            degraded=True,
        )

    def _reset_breaker(self, session: _Session) -> None:
        """A successful live decision closes the session's breaker."""
        session.breaker_failures = 0
        if session.breaker_cooldown == 0:
            self._breaker_dirty.discard(session.session_id)

    def _record_breaker_failure(self, session: _Session) -> None:
        session.breaker_failures += 1
        self._breaker_dirty.add(session.session_id)
        if session.breaker_failures >= self._resilience.failure_threshold:
            session.breaker_cooldown = self._resilience.cooldown_decisions
            # Leave the counter one below the threshold: the half-open
            # probe after the cooldown reopens on a single failure,
            # while a success resets the counter to zero.
            session.breaker_failures = self._resilience.failure_threshold - 1
            self.stats.breaker_trips += 1
            if self._obs.enabled:
                self._m_breaker.inc()
                self._obs.event(
                    "breaker_trip",
                    level="warn",
                    session=session.session_id,
                    cooldown=session.breaker_cooldown,
                )

    def _rebalance_transactional(
        self, requests: Sequence[RebalanceRequest]
    ) -> List[RebalanceResponse]:
        with self._lock:
            # Resolve every request upfront: staged per-session cursor
            # and weights that rounds read and write without touching
            # the sessions themselves.
            staged: Dict[str, _StagedState] = {}
            resolved: List[Tuple[int, _Session, int]] = []
            for pos, req in enumerate(requests):
                session = self._session(req.session_id)
                state = staged.get(req.session_id)
                if state is None:
                    state = _StagedState(
                        w_prev=session.w_prev,
                        next_t=session.next_t,
                        risk_value=session.risk_value,
                        risk_w_drifted=session.risk_w_drifted,
                        lockout=(
                            session.lockout.copy()
                            if session.lockout is not None
                            else None
                        ),
                    )
                    staged[req.session_id] = state
                t = int(req.t) if req.t is not None else state.next_t
                first = session.observation.first_decision_index()
                if not first <= t <= session.data.n_periods - 2:
                    raise ValueError(
                        f"session {session.session_id!r}: decision index {t} "
                        f"outside decidable range "
                        f"[{first}, {session.data.n_periods - 2}]"
                    )
                state.next_t = t + 1
                resolved.append((pos, session, t))

            # Stateful strategies mutate internal state inside act()
            # (e.g. ONS's running Hessian), which staging cannot defer —
            # snapshot them (once per session) so an aborted batch can
            # roll the agents back.
            backups: Dict[str, Agent] = {}
            for _, session, _ in resolved:
                if (
                    not session.agent.stateless
                    and session.session_id not in backups
                ):
                    backups[session.session_id] = copy.deepcopy(session.agent)

            responses: List[Optional[RebalanceResponse]] = [None] * len(requests)
            stats = ServiceStats()
            pending = resolved
            try:
                while pending:
                    this_round: List[Tuple[int, _Session, int]] = []
                    seen_sessions = set()
                    deferred = []
                    for item in pending:
                        if item[1].session_id in seen_sessions:
                            deferred.append(item)
                        else:
                            seen_sessions.add(item[1].session_id)
                            this_round.append(item)
                    self._serve_round(this_round, staged, responses, stats)
                    pending = deferred
            except BaseException:
                for session_id, agent in backups.items():
                    self._sessions[session_id].agent = agent
                raise

            # Everything decided cleanly: commit sessions and stats.
            for session_id, state in staged.items():
                session = self._sessions[session_id]
                session.w_prev = state.w_prev
                session.next_t = state.next_t
                if self._risk is not None:
                    session.risk_value = state.risk_value
                    session.risk_w_drifted = state.risk_w_drifted
                    session.lockout = state.lockout
                if session.decisions == 0 and state.first_t is not None:
                    # The session's true anchor is the first index it
                    # actually served (an explicit-t first request may
                    # seek past the default start) — checkpoint restore
                    # re-anchors stateful strategies here.
                    session.start = state.first_t
                session.decisions += state.decisions
            self.stats.requests_served += len(requests)
            self.stats.batched_forwards += stats.batched_forwards
            self.stats.single_decisions += stats.single_decisions
            self.stats.largest_batch = max(
                self.stats.largest_batch, stats.largest_batch
            )
            return responses  # type: ignore[return-value]

    def _serve_round(
        self,
        items: List[Tuple[int, _Session, int]],
        staged: Dict[str, "_StagedState"],
        responses: List[Optional[RebalanceResponse]],
        stats: ServiceStats,
    ) -> None:
        """Decide one round of requests over pairwise-distinct sessions,
        reading and writing only the staged state."""
        if self._injector is not None:
            # Chaos seams, keyed (session, t) so replays are identical:
            # slow sessions stall here (inside the round, where a real
            # slow forward would), injected forward failures raise —
            # aborting the transactional batch exactly like a genuine
            # strategy error, which is what the breaker shell isolates.
            for _, session, t in items:
                self._injector.maybe_stall(session.session_id, t)
                if self._injector.forward_fails(session.session_id, t):
                    raise InjectedFault(
                        "serving.forward", f"{session.session_id}:{t}"
                    )
        # Group batchable work by shared agent instance.
        groups: Dict[int, List[Tuple[int, _Session, int]]] = {}
        singles: List[Tuple[int, _Session, int]] = []
        for item in items:
            if item[1].agent.stateless:
                groups.setdefault(id(item[1].agent), []).append(item)
            else:
                singles.append(item)

        for group in groups.values():
            agent = group[0][1].agent
            # Sub-group the round's sessions by shared panel: one
            # prepare_states call per panel with stacked indices and
            # weights vectorises feature construction too, not just the
            # network forward (sessions serving the same market panel
            # are the common case at scale).
            panel_items: Dict[int, List[Tuple[int, _Session, int]]] = {}
            for item in group:
                panel_items.setdefault(id(item[1].data), []).append(item)
            ordered: List[Tuple[int, _Session, int]] = []
            parts = []
            for panel_group in panel_items.values():
                indices = np.array([t for _, _, t in panel_group], dtype=np.int64)
                w_prev = np.stack(
                    [staged[s.session_id].w_prev for _, s, _ in panel_group]
                )
                parts.append(
                    agent.prepare_states(panel_group[0][1].data, indices, w_prev)
                )
                ordered.extend(panel_group)
            with no_grad():
                weights = np.asarray(agent.decide_batch(concat_states(parts)))
            if weights.ndim != 2 or weights.shape[0] != len(group):
                raise InvalidStrategyOutput(
                    f"strategy {group[0][1].spec['strategy']!r}: decide_batch "
                    f"returned shape {weights.shape} for a batch of "
                    f"{len(group)} states"
                )
            if len(group) > 1:
                stats.batched_forwards += 1
                stats.largest_batch = max(stats.largest_batch, len(group))
            else:
                stats.single_decisions += 1
            infos: List[Optional[Dict[str, float]]] = [None] * len(ordered)
            if self._execution is not None:
                # One vectorized estimate for the whole round's group —
                # the batched API the engine exposes for exactly this.
                w_prev = np.stack(
                    [staged[s.session_id].w_prev for _, s, _ in ordered]
                )
                infos = self._estimate_execution(ordered, w_prev, weights)
            for (pos, session, t), w, info in zip(ordered, weights, infos):
                responses[pos] = self._stage_decision(staged, session, t, w, info)

        # Stateful strategies keep the ambient grad mode: act() is a
        # user extension point that may legitimately adapt online
        # (backprop inside act), unlike the stateless decide_batch path.
        for pos, session, t in singles:
            w = np.asarray(
                session.agent.act(
                    session.data, t, staged[session.session_id].w_prev
                )
            )
            stats.single_decisions += 1
            info = None
            if self._execution is not None:
                info = self._estimate_execution(
                    [(pos, session, t)],
                    staged[session.session_id].w_prev[None, :],
                    w[None, :],
                )[0]
            responses[pos] = self._stage_decision(staged, session, t, w, info)

    def _estimate_execution(
        self,
        items: List[Tuple[int, "_Session", int]],
        w_prev: np.ndarray,
        weights: np.ndarray,
    ) -> List[Dict[str, float]]:
        """Advisory pre-trade estimates for a round of decisions — one
        :meth:`~repro.execution.ExecutionEngine.estimate_batch` call for
        the whole batch (the tradable-volume rows are cached slices)."""
        engine = self._execution
        volumes = np.stack(
            [engine.tradable_volume(s.data, t) for _, s, t in items]
        )
        est = engine.estimate_batch(w_prev, weights, volumes)
        return [
            {
                "cost": float(est["cost"][i]),
                "max_participation": float(est["max_participation"][i]),
                "fill_ratio": float(est["fill_ratio"][i]),
            }
            for i in range(len(items))
        ]

    def _stage_decision(
        self,
        staged: Dict[str, "_StagedState"],
        session: _Session,
        t: int,
        weights: np.ndarray,
        execution_info: Optional[Dict[str, float]] = None,
    ) -> RebalanceResponse:
        # The same validation + normalisation PortfolioEnv.step applies,
        # so served trajectories match back-tested ones exactly — and a
        # misbehaving user strategy raises (aborting the whole untouched
        # batch) instead of poisoning the session with NaN weights.
        try:
            weights = normalize_action(
                weights,
                session.data.n_assets + 1,
                context=f"session {session.session_id!r}: strategy weights",
            )
        except ValueError as exc:
            raise InvalidStrategyOutput(str(exc)) from None
        state = staged[session.session_id]
        risk_info = None
        if self._risk is not None:
            weights, risk_info = self._apply_risk(session, state, t, weights)
        state.w_prev = weights.copy()
        if state.decisions == 0:
            state.first_t = t
        state.decisions += 1
        return RebalanceResponse(
            session_id=session.session_id,
            t=t,
            weights=weights,
            strategy=session.spec["strategy"],
            execution=execution_info,
            risk=risk_info,
        )

    def _apply_risk(
        self,
        session: _Session,
        state: "_StagedState",
        t: int,
        weights: np.ndarray,
    ) -> Tuple[np.ndarray, Dict[str, Any]]:
        """Project one staged decision onto the constraint set.

        Mirrors ``PortfolioEnv.step`` exactly — project against the
        drifted pre-trade weights and the paper book's value, then
        advance the book one period (μ from the exact transaction
        remainder, growth from the panel's realised price relative) so
        the *next* decision's drawdown guard sees the value through
        this decision's holding period.  All writes go to the staged
        state; an aborted batch leaves the session's guardrails
        untouched.
        """
        if state.risk_w_drifted is None:
            # Arm lazily: fresh sessions, and sessions restored from
            # pre-risk checkpoints, baseline the guard at the current
            # book (value 1.0, drift = last served target).
            state.risk_w_drifted = np.asarray(state.w_prev, dtype=np.float64).copy()
            state.lockout = self._risk.initial_state(state.risk_value)
        report, state.lockout = self._risk.step(
            state.risk_w_drifted,
            weights,
            t=t - session.start,
            value=state.risk_value,
            state=state.lockout,
        )
        weights = report.weights
        mu = transaction_remainder_exact(
            state.risk_w_drifted, weights, self.commission, self.commission
        )
        rel = session.data.close[t + 1] / session.data.close[t]
        y = np.empty(rel.shape[0] + 1)
        y[0] = 1.0
        y[1:] = rel
        state.risk_value *= mu * float(y @ weights)
        state.risk_w_drifted = drifted_weights(weights, y)
        risk_info: Dict[str, Any] = {
            "pre_turnover": report.pre_turnover,
            "post_turnover": report.post_turnover,
            "locked": report.locked,
            "binding": report.binding_names(),
            "value": state.risk_value,
        }
        if state.lockout is not None:
            risk_info["lockout"] = state.lockout.to_json_dict()
        return weights, risk_info

    # -- checkpointing -------------------------------------------------
    def save_checkpoint(
        self,
        path: PathLike,
        session_ids: Optional[Sequence[str]] = None,
        shard: Optional[str] = None,
    ) -> Path:
        """Persist markets, sessions, and strategy weights to ``path``.

        ``path`` becomes a directory holding ``manifest.json`` plus one
        ``.npz`` per market panel and per learned-strategy state dict.
        Strategy params must be JSON-encodable (the repo's config
        dataclasses are handled via type tags).

        ``session_ids`` restricts the checkpoint to a subset of
        sessions; the checkpoint stays self-contained (only the market
        panels and agents that subset references are written).  With
        the default ``None`` every session *and* every registered
        market — including sessionless ones — is persisted, preserving
        the full-checkpoint behaviour.  ``shard`` is an optional label
        recorded in the manifest so a multi-worker deployment's
        per-shard checkpoints say which worker wrote them;
        :meth:`load_checkpoint` accepts shard checkpoints like any
        other (the label is informational).

        Every file is written atomically (temp file + ``os.replace``)
        and the manifest lands last, so a crash mid-save leaves either
        the previous checkpoint or a directory whose stale manifest
        still references only fully-written files — never a manifest
        pointing at torn ones.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        with self._lock:
            if session_ids is None:
                sessions = list(self._sessions.values())
                market_names = sorted(self._markets)
            else:
                sessions = [self._session(sid) for sid in session_ids]
                market_names = sorted({s.market for s in sessions})
            market_files: Dict[str, str] = {}
            for i, name in enumerate(market_names):
                filename = f"market_{i}.npz"
                save_state_dict(path / filename, _market_to_state(self._markets[name]))
                market_files[name] = filename

            agent_entries: Dict[str, Dict[str, Any]] = {}
            agent_keys: Dict[str, str] = {}  # agent_key -> manifest key
            sessions_payload = []
            for session in sessions:
                if session.agent_key not in agent_keys:
                    manifest_key = f"agent_{len(agent_keys)}"
                    agent_keys[session.agent_key] = manifest_key
                    network = getattr(session.agent, "network", None)
                    weights_file = None
                    if network is not None and hasattr(network, "state_dict"):
                        weights_file = f"{manifest_key}.npz"
                        save_state_dict(path / weights_file, network.state_dict())
                    agent_entries[manifest_key] = {
                        "spec": {
                            "strategy": session.spec["strategy"],
                            "params": _encode_value(session.spec["params"]),
                        },
                        "weights": weights_file,
                        "shared": session.shared,
                        # Shared agents must be republished on load under
                        # the key they were shared by: spec-canonical for
                        # registry-built agents, the explicit "!"-key for
                        # prebuilt/artifact agents.  Restoring an
                        # artifact agent under the spec-canonical key
                        # would hand its trained weights to later plain
                        # same-spec sessions (and collapse distinct
                        # shards with identical constructor params).
                        "agent_key": session.agent_key if session.shared else None,
                    }
                session_payload = {
                    "session_id": session.session_id,
                    "agent": agent_keys[session.agent_key],
                    "market": session.market,
                    "next_t": session.next_t,
                    "start": session.start,
                    "decisions": session.decisions,
                    "w_prev": [float(w) for w in session.w_prev],
                    "observation": _encode_value(session.observation),
                }
                if session.risk_w_drifted is not None:
                    # Armed guardrail state (risk-engine services): the
                    # paper book and its high-water mark round-trip, so
                    # a restored session resumes mid-lockout rather
                    # than re-arming fresh.
                    session_payload["risk"] = {
                        "value": float(session.risk_value),
                        "w_drifted": [
                            float(w) for w in session.risk_w_drifted
                        ],
                        "lockout": (
                            session.lockout.to_json_dict()
                            if session.lockout is not None
                            else None
                        ),
                    }
                sessions_payload.append(session_payload)
            manifest: Dict[str, Any] = {
                # Version 2 adds the optional per-session "risk" entry
                # (and, additively, the optional "shard" label);
                # everything else is the version-1 schema.
                "version": 2,
                "commission": self.commission,
                "markets": market_files,
                "agents": agent_entries,
                "sessions": sessions_payload,
            }
            if shard is not None:
                manifest["shard"] = str(shard)
            save_json(path / "manifest.json", manifest)
        if self._injector is not None:
            # Chaos seam: tear checkpoint files per the plan *after* the
            # clean save, emulating post-write disk corruption that
            # load_checkpoint must surface as CheckpointCorrupt.
            self._injector.corrupt_checkpoint(path)
        return path

    @classmethod
    def load_checkpoint(
        cls,
        path: PathLike,
        registry: Optional[StrategyRegistry] = None,
        risk=None,
        faults=None,
    ) -> "PortfolioService":
        """Rebuild a service whose next decisions match the saved one's.

        Accepts version-1 (pre-risk) and version-2 checkpoints.  Like
        the execution engine, ``risk`` is a runtime setting passed at
        load (and so is ``faults``, a chaos plan armed on the restored
        service); persisted guardrail state (version 2) is restored
        either way, and version-1 sessions simply arm fresh on their
        next decision.

        A truncated or tampered checkpoint file raises
        :class:`CheckpointCorrupt` naming the offending file (a missing
        *checkpoint* still raises ``FileNotFoundError`` — absent and
        corrupt are different operator problems).
        """
        path = Path(path)
        manifest = _read_checkpoint_file(path / "manifest.json", load_json)
        if manifest.get("version") not in (1, 2):
            raise ValueError(f"unsupported checkpoint version {manifest.get('version')!r}")
        service = cls(
            registry=registry,
            commission=manifest["commission"],
            risk=risk,
            faults=faults,
        )

        markets: Dict[str, MarketData] = {}
        for name, filename in manifest["markets"].items():
            markets[name] = _market_from_state(
                _read_checkpoint_file(
                    path / filename, load_state_dict, referenced=True
                )
            )
            service._markets[name] = markets[name]

        agents: Dict[str, Tuple[Agent, Dict[str, Any], bool, str]] = {}
        for key, entry in manifest["agents"].items():
            spec = {
                "strategy": entry["spec"]["strategy"],
                "params": _decode_value(entry["spec"]["params"]),
            }
            agent = service.registry.create(spec["strategy"], **spec["params"])
            if entry["weights"] is not None:
                agent.network.load_state_dict(
                    _read_checkpoint_file(
                        path / entry["weights"], load_state_dict, referenced=True
                    )
                )
            shared = bool(entry["shared"])
            # Older checkpoints (no "agent_key") shared under the
            # spec-canonical key only; keep that as the fallback.
            shared_key = entry.get("agent_key") or _canonical_key(
                spec["strategy"], spec["params"]
            )
            if shared:
                service._shared_agents[shared_key] = agent
            agents[key] = (agent, spec, shared, shared_key)

        for payload in manifest["sessions"]:
            agent, spec, shared, shared_key = agents[payload["agent"]]
            panel = markets[payload["market"]]
            observation = _decode_value(payload["observation"])
            if not shared:
                service._private_seq += 1
            session = _Session(
                session_id=payload["session_id"],
                spec=spec,
                agent=agent,
                # Stateful agents need per-instance keys, or the next
                # save would dedup same-spec sessions onto one agent.
                agent_key=shared_key if shared else f"!private:{service._private_seq}",
                shared=shared,
                market=payload["market"],
                data=panel,
                observation=observation,
                next_t=int(payload["next_t"]),
                start=int(payload["start"]),
                w_prev=np.asarray(payload["w_prev"], dtype=np.float64),
                decisions=int(payload["decisions"]),
            )
            risk_state = payload.get("risk")
            if risk_state is not None:
                session.risk_value = float(risk_state["value"])
                session.risk_w_drifted = np.asarray(
                    risk_state["w_drifted"], dtype=np.float64
                )
                if risk_state.get("lockout") is not None:
                    session.lockout = LockoutState.from_json_dict(
                        risk_state["lockout"]
                    )
            if not shared:
                agent.begin_backtest(panel)
                # Classical strategies anchor their relatives window at
                # the first served index; restore that cursor when the
                # session had already started.
                if session.decisions > 0 and hasattr(agent, "_start_index"):
                    agent._start_index = session.start
            service._sessions[session.session_id] = session
        return service

    # -- session export/import -----------------------------------------
    def export_session(self, session_id: str) -> Dict[str, Any]:
        """Portable snapshot of one session — the per-session unit of the
        checkpoint schema (version 2), detached from the full manifest.

        The payload carries the session's spec (params tag-encoded, so
        the dict round-trips JSON), the *name* of its market panel (not
        the panel itself — panels are shared and persisted separately),
        its cursor/weights/guardrail state, and — for learned
        strategies — the network state dict as numpy arrays (the one
        non-JSON field; :class:`~repro.serving.SessionStateStore` spills
        it to an ``.npz`` sidecar).  :meth:`import_session` on any
        service with the same market registered rebuilds a session whose
        next decisions are bit-identical — the failover contract the
        multi-worker supervisor rehydrates through.
        """
        with self._lock:
            session = self._session(session_id)
            state: Dict[str, Any] = {
                "next_t": session.next_t,
                "start": session.start,
                "decisions": session.decisions,
                "w_prev": [float(w) for w in session.w_prev],
                "observation": _encode_value(session.observation),
                # Denormalised so a store can describe evicted sessions
                # without loading their (large) market panel.
                "n_assets": session.data.n_assets,
                "last_t": session.data.n_periods - 2,
            }
            if session.risk_w_drifted is not None:
                state["risk"] = {
                    "value": float(session.risk_value),
                    "w_drifted": [float(w) for w in session.risk_w_drifted],
                    "lockout": (
                        session.lockout.to_json_dict()
                        if session.lockout is not None
                        else None
                    ),
                }
            weights = None
            network = getattr(session.agent, "network", None)
            if network is not None and hasattr(network, "state_dict"):
                weights = network.state_dict()
            return {
                "version": 2,
                "session_id": session.session_id,
                "spec": {
                    "strategy": session.spec["strategy"],
                    "params": _encode_value(session.spec["params"]),
                },
                "market": session.market,
                "shared": session.shared,
                "agent_key": session.agent_key if session.shared else None,
                "state": state,
                "weights": weights,
            }

    def import_session(
        self, payload: Mapping[str, Any], data: Optional[MarketData] = None
    ) -> SessionInfo:
        """Recreate a session from an :meth:`export_session` payload.

        The payload's market must already be registered under the same
        name (or be supplied via ``data=``, which registers it).  Agent
        resolution mirrors :meth:`load_checkpoint`: a shared agent
        republishes under the key it was shared by — so two sessions
        imported with the same spec land on one instance and keep
        micro-batching into single forwards — while stateful agents are
        rebuilt private, re-anchored at the session's first served
        index (their state is spec + anchor, the same contract
        checkpoints rely on).
        """
        if payload.get("version") not in (1, 2):
            raise ValueError(
                f"unsupported session payload version {payload.get('version')!r}"
            )
        spec = {
            "strategy": payload["spec"]["strategy"],
            "params": _decode_value(payload["spec"]["params"]),
        }
        state = payload["state"]
        with self._lock:
            session_id = payload["session_id"]
            if session_id in self._sessions:
                raise ValueError(f"session {session_id!r} already exists")
            market_name = payload["market"]
            if data is not None:
                self.register_market(market_name, data)
            if market_name not in self._markets:
                raise KeyError(
                    f"unknown market {market_name!r}; register it before "
                    "importing sessions that reference it"
                )
            panel = self._markets[market_name]
            shared = bool(payload["shared"])
            shared_key = payload.get("agent_key") or _canonical_key(
                spec["strategy"], spec["params"]
            )
            agent = (
                self._shared_agents.get(shared_key)
                if shared and shared_key is not None
                else None
            )
            if agent is None:
                agent = self.registry.create(spec["strategy"], **spec["params"])
                if payload.get("weights") is not None:
                    agent.network.load_state_dict(payload["weights"])
                if shared and shared_key is not None:
                    self._shared_agents[shared_key] = agent
            if not shared:
                self._private_seq += 1
            session = _Session(
                session_id=session_id,
                spec=spec,
                agent=agent,
                agent_key=(
                    shared_key if shared else f"!private:{self._private_seq}"
                ),
                shared=shared,
                market=market_name,
                data=panel,
                observation=_decode_value(state["observation"]),
                next_t=int(state["next_t"]),
                start=int(state["start"]),
                w_prev=np.asarray(state["w_prev"], dtype=np.float64),
                decisions=int(state["decisions"]),
            )
            risk_state = state.get("risk")
            if risk_state is not None:
                session.risk_value = float(risk_state["value"])
                session.risk_w_drifted = np.asarray(
                    risk_state["w_drifted"], dtype=np.float64
                )
                if risk_state.get("lockout") is not None:
                    session.lockout = LockoutState.from_json_dict(
                        risk_state["lockout"]
                    )
            if not shared:
                agent.begin_backtest(panel)
                if session.decisions > 0 and hasattr(agent, "_start_index"):
                    agent._start_index = session.start
            self._sessions[session_id] = session
            return self._info(session)


# ----------------------------------------------------------------------
class _Slot:
    """Mailbox for one request passing through the micro-batcher."""

    __slots__ = ("response", "error", "done")

    def __init__(self):
        self.response: Optional[RebalanceResponse] = None
        self.error: Optional[BaseException] = None
        self.done = False


@dataclass
class BatcherStats:
    """Backpressure counters for the micro-batcher's admission queue."""

    submitted: int = 0
    queue_rejections: int = 0      # QueueFull raised at admission
    deadline_expirations: int = 0  # DeadlineExceeded raised in queue
    max_queue_depth: int = 0       # high-water mark of pending requests

    def to_json_dict(self) -> Dict[str, int]:
        return asdict(self)


class MicroBatcher:
    """Coalesces concurrent rebalance requests into batched service calls.

    Threads call :meth:`submit`; the first waiter becomes the *leader*,
    waits up to ``max_wait`` seconds (or until ``max_batch`` requests
    accumulate), then flushes the whole batch through
    :meth:`PortfolioService.rebalance_many` — one SNN forward for the
    lot — and distributes the responses.

    ``max_queue`` bounds admission: a request arriving with that many
    already pending is rejected with :class:`QueueFull` instead of
    growing the queue without limit.  ``request_timeout`` bounds the
    *queue wait*: a request still unclaimed by a leader when its
    deadline passes removes itself and raises :class:`DeadlineExceeded`
    (once a leader has taken it into a flush it is served normally —
    in-flight work is never abandoned).  Both default to unbounded,
    preserving the unhardened behaviour; :attr:`stats` counts
    rejections, expirations, and the queue's high-water mark.
    """

    def __init__(
        self,
        service: PortfolioService,
        max_batch: int = 64,
        max_wait: float = 0.005,
        max_queue: Optional[int] = None,
        request_timeout: Optional[float] = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None for unbounded)")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be > 0 (or None)")
        self.service = service
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.max_queue = None if max_queue is None else int(max_queue)
        self.request_timeout = (
            None if request_timeout is None else float(request_timeout)
        )
        self.stats = BatcherStats()
        self._cond = threading.Condition()
        self._pending: List[Tuple[RebalanceRequest, _Slot]] = []
        self._leader_active = False
        # Share the service's obs handle so batcher series land in the
        # same registry (and the same /metrics page).
        svc_obs = getattr(service, "obs", None)
        self._obs = svc_obs if svc_obs is not None else get_obs()
        if self._obs.enabled:
            self._m_depth = self._obs.gauge(
                "repro_batcher_queue_depth", help="pending requests in queue"
            )
            self._m_rejections = self._obs.counter(
                "repro_batcher_rejections_total",
                help="requests shed at admission (QueueFull)",
            )
            self._m_expirations = self._obs.counter(
                "repro_batcher_deadline_expirations_total",
                help="requests expired waiting in queue",
            )

    def submit(self, request: RebalanceRequest) -> RebalanceResponse:
        """Enqueue ``request`` and block until its decision is served.

        The calling thread either waits for a leader to serve it or
        becomes the leader itself; leadership hands over whenever a
        flush completes with requests still queued, so no waiter can
        be stranded past the batch cut.

        Raises :class:`QueueFull` when the admission queue is at
        ``max_queue``, and :class:`DeadlineExceeded` when the request
        is still queued after ``request_timeout`` seconds.
        """
        slot = _Slot()
        with self._cond:
            if (
                self.max_queue is not None
                and len(self._pending) >= self.max_queue
            ):
                self.stats.queue_rejections += 1
                if self._obs.enabled:
                    self._m_rejections.inc()
                    self._obs.event(
                        "batcher_shed",
                        level="warn",
                        pending=len(self._pending),
                        max_queue=self.max_queue,
                    )
                raise QueueFull(
                    f"admission queue full ({len(self._pending)} pending, "
                    f"max_queue={self.max_queue})"
                )
            self._pending.append((request, slot))
            self.stats.submitted += 1
            self.stats.max_queue_depth = max(
                self.stats.max_queue_depth, len(self._pending)
            )
            if self._obs.enabled:
                self._m_depth.set(len(self._pending))
            self._cond.notify_all()
        deadline = (
            None
            if self.request_timeout is None
            else time.monotonic() + self.request_timeout
        )
        while True:
            with self._cond:
                while not slot.done and (self._leader_active or not self._pending):
                    if deadline is None:
                        self._cond.wait()
                        continue
                    remaining = deadline - time.monotonic()
                    if remaining > 0:
                        self._cond.wait(remaining)
                        continue
                    # Deadline passed.  Still queued → withdraw and
                    # fail; already claimed by a leader → the decision
                    # is in flight, wait it out (it will be served).
                    withdrawn = False
                    for i, (_, pending_slot) in enumerate(self._pending):
                        if pending_slot is slot:
                            del self._pending[i]
                            withdrawn = True
                            break
                    if withdrawn:
                        self.stats.deadline_expirations += 1
                        if self._obs.enabled:
                            self._m_expirations.inc()
                            self._m_depth.set(len(self._pending))
                        raise DeadlineExceeded(
                            f"request for session "
                            f"{request.session_id!r} spent more than "
                            f"{self.request_timeout}s in the queue"
                        )
                    deadline = None
                if slot.done:
                    if slot.error is not None:
                        raise slot.error
                    return slot.response
                # No leader and work queued (our slot included): lead.
                self._leader_active = True
                batch = self._collect_locked()
            self._flush(batch)

    def _flush(self, batch: List[Tuple[RebalanceRequest, _Slot]]) -> None:
        """Serve ``batch`` outside the lock and wake its waiters.

        If the batched call rejects (one bad request fails the whole
        transactional batch, leaving every session untouched), fall
        back to serving each request individually so only the
        offenders see the error.

        Outcomes are tracked per slot as they commit: when a
        ``KeyboardInterrupt``/``SystemExit`` lands mid individual
        fallback, slots whose decisions already committed still get
        their real responses — only the requests that never ran see the
        interrupt.
        """
        # slot id -> (response, error); filled in as outcomes commit.
        outcomes: Dict[int, Tuple[Optional[RebalanceResponse], Optional[BaseException]]] = {}
        try:
            with self._obs.span("batcher.flush", size=len(batch)):
                try:
                    responses = self.service.rebalance_many(
                        [req for req, _ in batch]
                    )
                    for (_, s), resp in zip(batch, responses):
                        outcomes[id(s)] = (resp, None)
                except Exception:
                    for req, s in batch:
                        try:
                            outcomes[id(s)] = (self.service.rebalance(req), None)
                        except Exception as exc:
                            outcomes[id(s)] = (None, exc)
        except BaseException as exc:
            # KeyboardInterrupt/SystemExit: report committed slots
            # accurately, fail only the undone ones, then propagate.
            with self._cond:
                for _, s in batch:
                    resp, err = outcomes.get(id(s), (None, exc))
                    s.response, s.error, s.done = resp, err, True
                self._leader_active = False
                self._cond.notify_all()
            raise
        with self._cond:
            for _, s in batch:
                resp, err = outcomes[id(s)]
                s.response, s.error, s.done = resp, err, True
            self._leader_active = False
            self._cond.notify_all()

    def _collect_locked(self) -> List[Tuple[RebalanceRequest, _Slot]]:
        """Wait (holding the lock) for the batch window, then drain."""
        deadline = time.monotonic() + self.max_wait
        while len(self._pending) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            self._cond.wait(remaining)
        batch = self._pending[: self.max_batch]
        self._pending = self._pending[self.max_batch :]
        if self._obs.enabled:
            self._m_depth.set(len(self._pending))
        return batch
