"""Inference-service layer: serve rebalance decisions from any
registry-constructed strategy.

:class:`PortfolioService` keeps per-session state (strategy, market
panel, previous weights, decision cursor), shares one instance of each
stateless strategy across sessions, and micro-batches concurrent
rebalance requests into single ``decide_batch`` forward passes.
:class:`MicroBatcher` adds the cross-thread request coalescing, and
:mod:`repro.serving.http` exposes the whole thing as a stdlib JSON
HTTP endpoint (see ``examples/serving_demo.py``).
"""

from .service import (
    InvalidStrategyOutput,
    MicroBatcher,
    PortfolioService,
    RebalanceRequest,
    RebalanceResponse,
    ServiceStats,
    SessionInfo,
)

__all__ = [
    "InvalidStrategyOutput",
    "MicroBatcher",
    "PortfolioService",
    "RebalanceRequest",
    "RebalanceResponse",
    "ServiceStats",
    "SessionInfo",
]
