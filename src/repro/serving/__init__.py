"""Inference-service layer: serve rebalance decisions from any
registry-constructed strategy.

:class:`PortfolioService` keeps per-session state (strategy, market
panel, previous weights, decision cursor), shares one instance of each
stateless strategy across sessions, and micro-batches concurrent
rebalance requests into single ``decide_batch`` forward passes.
:class:`MicroBatcher` adds the cross-thread request coalescing, and
:mod:`repro.serving.http` exposes the whole thing as a stdlib JSON
HTTP endpoint (see ``examples/serving_demo.py``).

Resilience: :class:`ServingResilience` arms a per-session circuit
breaker (degraded hold-previous-weights responses instead of repeated
failures), the micro-batcher takes admission/queue-deadline bounds
(:class:`QueueFull` → HTTP 429, :class:`DeadlineExceeded` → HTTP 504),
and corrupt checkpoints load as :class:`CheckpointCorrupt` naming the
damaged file.  All off by default — the unhardened paths are
bit-identical.

Scale: :class:`ServingSupervisor` runs N worker processes (one
:class:`PortfolioService` shard each, sessions routed by market panel)
over a write-through :class:`SessionStateStore` — crash failover with
at-most-one-round replay, lazy session rehydration with LRU residency,
heartbeat health checks, graceful drain (:class:`Draining` → HTTP 503),
and priority load shedding (:class:`LoadShed` → HTTP 429).  With one
worker and no fault plan it is bit-identical to the in-process service.
"""

from .service import (
    BatcherStats,
    CheckpointCorrupt,
    DeadlineExceeded,
    InvalidStrategyOutput,
    MicroBatcher,
    PortfolioService,
    QueueFull,
    RebalanceRequest,
    RebalanceResponse,
    ServiceStats,
    ServingResilience,
    SessionInfo,
)
from .store import SessionStateStore
from .supervisor import (
    Draining,
    LoadShed,
    ServingSupervisor,
    SupervisorStats,
    WorkerHealth,
)

__all__ = [
    "BatcherStats",
    "CheckpointCorrupt",
    "DeadlineExceeded",
    "Draining",
    "InvalidStrategyOutput",
    "LoadShed",
    "MicroBatcher",
    "PortfolioService",
    "QueueFull",
    "RebalanceRequest",
    "RebalanceResponse",
    "ServiceStats",
    "ServingResilience",
    "SessionInfo",
    "SessionStateStore",
    "ServingSupervisor",
    "SupervisorStats",
    "WorkerHealth",
]
