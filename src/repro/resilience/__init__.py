"""Deterministic fault injection and fault tolerance.

The robustness substrate under the sweep engine, the serving layer, and
the data plane: :class:`FaultPlan`/:class:`FaultInjector` arm named
seams with *seeded, replayable* faults (chaos tests that cannot flake),
and :class:`RetryPolicy`/:func:`call_with_retry` give every consumer
the same bounded capped-exponential-backoff retry shape with
deterministic jitter.

The contract that keeps the parity crown jewel safe: a ``None`` or
empty plan and all-healthy inputs take exactly the unhardened code
paths — bit-identical results, gated by the throughput bench's
``resilience`` section under ``--check``.
"""

from .faults import (
    DataFaults,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    ServingFaults,
    SweepFaults,
    corrupt_panel,
    injector_from,
)
from .retry import RetriesExhausted, RetryPolicy, call_with_retry

__all__ = [
    "DataFaults",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "RetriesExhausted",
    "RetryPolicy",
    "ServingFaults",
    "SweepFaults",
    "call_with_retry",
    "corrupt_panel",
    "injector_from",
]
