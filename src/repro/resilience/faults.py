"""Seeded, deterministic fault injection.

A :class:`FaultPlan` names which seams misbehave and how often; a
:class:`FaultInjector` turns the plan into *replayable* fault decisions.
Every decision is a pure function of ``(plan.seed, site, key)`` through
a stable hash — never of process randomness, wall clock, or call order —
so the same plan fires the same faults at the same places whether a
sweep runs serially or on a process pool, and a chaos test that failed
once fails the same way every time.

Seams
-----
``data.*``
    Feed corruption: NaN/zero prices, missing candles (timestamp gaps),
    duplicated timestamps, stale repeated candles.  Applied by
    :func:`corrupt_panel`; repaired by
    :func:`repro.data.validation.validate_panel`.
``sweep.*``
    Worker failure: transient ``run_shard`` exceptions, a crash that
    leaves a partial artifact dir (the killed-worker shape), and
    permanently broken shards (the quarantine path).
``serving.*``
    Agent forwards that raise, slow sessions exceeding a deadline,
    corrupted checkpoint bytes, and — for the supervised multi-worker
    tier — worker processes that die mid-batch
    (:meth:`FaultInjector.worker_crashes`, consumed by
    :class:`~repro.serving.ServingSupervisor` workers).

An all-zero plan is *empty*: every consumer checks
:meth:`FaultPlan.is_empty` once and takes today's exact code path, so
``None`` and an empty plan are bit-identical by construction.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..data.market import MarketData, unvalidated_market
from ..obs import get_obs
from ..utils.rng import make_rng, stable_hash
from ..utils.serialization import PathLike

__all__ = [
    "DataFaults",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "ServingFaults",
    "SweepFaults",
    "corrupt_panel",
]


class InjectedFault(RuntimeError):
    """An error raised *on purpose* by the fault injector.

    Carries the seam site and decision key so logs and quarantine
    reports say exactly which planned fault fired.
    """

    def __init__(self, site: str, key: str):
        super().__init__(f"injected fault at {site} [{key}]")
        self.site = site
        self.key = key


# ----------------------------------------------------------------------
# Plan: one frozen dataclass per seam, all-zero defaults.


@dataclass(frozen=True)
class DataFaults:
    """Feed-corruption rates (per cell or per row, in [0, 1]).

    ``fetch_error_rate`` is the transport seam: a chart-data fetch
    raises instead of returning candles.  It draws per
    ``(pair, attempt)`` but only for attempts below
    ``fetch_error_attempts``, so a retry policy with more attempts is
    guaranteed to recover — the same contract as
    :class:`SweepFaults.transient_rate`.
    """

    nan_rate: float = 0.0        # per-cell: prices become NaN
    zero_rate: float = 0.0       # per-cell: prices collapse to 0
    missing_rate: float = 0.0    # per-row: the candle never arrives (gap)
    duplicate_rate: float = 0.0  # per-row: timestamp repeats the previous
    stale_rate: float = 0.0      # per-row: OHLCV repeats the previous row
    fetch_error_rate: float = 0.0   # per (pair, attempt): the fetch raises
    fetch_error_attempts: int = 1   # only attempts below this can fail

    def __post_init__(self):
        for f in dataclasses.fields(self):
            if not f.name.endswith("_rate"):
                continue
            v = getattr(self, f.name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{f.name} must be in [0, 1], got {v}")
        if self.fetch_error_attempts < 0:
            raise ValueError("fetch_error_attempts must be >= 0")

    @property
    def active(self) -> bool:
        return any(
            getattr(self, f.name) > 0.0
            for f in dataclasses.fields(self)
            if f.name.endswith("_rate")
        )


@dataclass(frozen=True)
class SweepFaults:
    """Worker-failure behaviour for ``run_shard``.

    ``transient_rate`` draws per ``(shard_id, attempt)`` but only for
    attempts below ``transient_attempts``, so a retry policy with more
    attempts than that is *guaranteed* to recover — the CI chaos gate's
    contract.  ``crash_shards``/``broken_shards`` target shards by
    position in expansion order: a crash fires on the first attempt
    only and leaves a partial artifact dir behind (the killed-worker
    shape); a broken shard fails every attempt (the quarantine path).
    """

    transient_rate: float = 0.0
    transient_attempts: int = 1
    crash_shards: Tuple[int, ...] = ()
    broken_shards: Tuple[int, ...] = ()

    def __post_init__(self):
        if not 0.0 <= self.transient_rate <= 1.0:
            raise ValueError("transient_rate must be in [0, 1]")
        if self.transient_attempts < 0:
            raise ValueError("transient_attempts must be >= 0")
        object.__setattr__(
            self, "crash_shards", tuple(int(i) for i in self.crash_shards)
        )
        object.__setattr__(
            self, "broken_shards", tuple(int(i) for i in self.broken_shards)
        )

    @property
    def active(self) -> bool:
        return (
            self.transient_rate > 0.0
            or bool(self.crash_shards)
            or bool(self.broken_shards)
        )


@dataclass(frozen=True)
class ServingFaults:
    """Serving-seam behaviour.

    Session faults (``forward_error_rate``/``slow_rate``) draw per
    ``(session_id, t)``; worker-crash faults target the supervised
    multi-worker tier and draw per ``(worker, batch_id)``, where
    ``batch_id`` is the supervisor's monotonically increasing per-worker
    dispatch counter.  A replayed batch after a failover carries a *new*
    ``batch_id``, so an explicit one-shot entry in
    ``worker_crash_batches`` is guaranteed to recover — the load-test
    chaos gate's contract.
    """

    forward_error_rate: float = 0.0    # the agent forward raises
    slow_rate: float = 0.0             # the round stalls slow_seconds
    slow_seconds: float = 0.0
    checkpoint_corrupt_rate: float = 0.0  # per-file: checkpoint bytes torn
    worker_crash_rate: float = 0.0     # per (worker, batch): process dies mid-batch
    worker_crash_batches: Tuple[Tuple[int, int], ...] = ()  # explicit (worker, batch_id) kills

    def __post_init__(self):
        for name in (
            "forward_error_rate",
            "slow_rate",
            "checkpoint_corrupt_rate",
            "worker_crash_rate",
        ):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.slow_seconds < 0:
            raise ValueError("slow_seconds must be non-negative")
        object.__setattr__(
            self,
            "worker_crash_batches",
            tuple(
                (int(worker), int(batch))
                for worker, batch in self.worker_crash_batches
            ),
        )

    @property
    def active(self) -> bool:
        return (
            self.forward_error_rate > 0.0
            or self.slow_rate > 0.0
            or self.checkpoint_corrupt_rate > 0.0
            or self.worker_crash_rate > 0.0
            or bool(self.worker_crash_batches)
        )


@dataclass(frozen=True)
class FaultPlan:
    """The full chaos schedule: a seed plus one spec per seam.

    JSON-round-trippable (:meth:`to_json_dict`/:meth:`from_json_dict`,
    :meth:`save`/:meth:`load`) so the CLI's ``--fault-plan`` and CI
    chaos jobs replay exactly the plan a failure was observed under.
    """

    seed: int = 0
    data: DataFaults = DataFaults()
    sweep: SweepFaults = SweepFaults()
    serving: ServingFaults = ServingFaults()

    def is_empty(self) -> bool:
        """True when no seam can ever fire — consumers take the
        unhardened bit-identical path."""
        return not (
            self.data.active or self.sweep.active or self.serving.active
        )

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "data": dataclasses.asdict(self.data),
            "sweep": {
                "transient_rate": self.sweep.transient_rate,
                "transient_attempts": self.sweep.transient_attempts,
                "crash_shards": list(self.sweep.crash_shards),
                "broken_shards": list(self.sweep.broken_shards),
            },
            "serving": dataclasses.asdict(self.serving),
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        sweep = dict(payload.get("sweep") or {})
        sweep["crash_shards"] = tuple(sweep.get("crash_shards") or ())
        sweep["broken_shards"] = tuple(sweep.get("broken_shards") or ())
        serving = dict(payload.get("serving") or {})
        serving["worker_crash_batches"] = tuple(
            tuple(int(x) for x in item)
            for item in serving.get("worker_crash_batches") or ()
        )
        return cls(
            seed=int(payload.get("seed", 0)),
            data=DataFaults(**(payload.get("data") or {})),
            sweep=SweepFaults(**sweep),
            serving=ServingFaults(**serving),
        )

    def save(self, path: PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: PathLike) -> "FaultPlan":
        return cls.from_json_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
@dataclass
class FaultInjector:
    """Turns a :class:`FaultPlan` into deterministic fault decisions.

    ``fires(site, key, rate)`` is the one primitive: a uniform draw in
    ``[0, 1)`` from ``stable_hash(seed:site:key)`` compared against
    ``rate``.  Fired faults append to :attr:`record` so two replays of
    the same plan can be compared sequence-for-sequence.  ``sleep`` is
    the injectable stall used by slow-session faults (tests swap in a
    fake so chaos suites run instantly).
    """

    plan: FaultPlan
    sleep: Callable[[float], None] = time.sleep
    record: List[Tuple[str, str]] = field(default_factory=list)

    def _note(self, site: str, key: str) -> None:
        """Record a fired fault (and mirror it to the obs event log).

        The emitted ``fault_fired`` event carries the same
        ``(seed, site, key)`` identity the deterministic draw used, so
        an event log can be replayed against :attr:`record`.
        """
        self.record.append((site, key))
        obs = get_obs()
        if obs.enabled:
            obs.event(
                "fault_fired", level="warn",
                seed=self.plan.seed, site=site, key=key,
            )

    def _unit(self, site: str, key: str) -> float:
        return (
            stable_hash(f"{self.plan.seed}:{site}:{key}", modulus=2 ** 30)
            / 2 ** 30
        )

    def fires(self, site: str, key: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        fired = rate >= 1.0 or self._unit(site, key) < rate
        if fired:
            self._note(site, key)
        return fired

    # -- sweep seam ----------------------------------------------------
    def shard_fault(
        self, shard_id: str, position: int, attempt: int
    ) -> Optional[str]:
        """Which sweep fault (if any) hits this shard attempt.

        Returns ``None`` (healthy), ``"transient"`` (raise before any
        work), ``"crash"`` (raise mid-write, partial dir left), or
        ``"broken"`` (raise on every attempt — quarantine fodder).
        """
        sweep = self.plan.sweep
        if position in sweep.broken_shards:
            self._note("sweep.broken", f"{shard_id}:{attempt}")
            return "broken"
        if position in sweep.crash_shards and attempt == 0:
            self._note("sweep.crash", f"{shard_id}:{attempt}")
            return "crash"
        if attempt < sweep.transient_attempts and self.fires(
            "sweep.transient", f"{shard_id}:{attempt}", sweep.transient_rate
        ):
            return "transient"
        return None

    # -- serving seam --------------------------------------------------
    def forward_fails(self, session_id: str, t: int) -> bool:
        return self.fires(
            "serving.forward", f"{session_id}:{t}",
            self.plan.serving.forward_error_rate,
        )

    def maybe_stall(self, session_id: str, t: int) -> bool:
        """Apply the slow-session fault (returns whether it fired)."""
        serving = self.plan.serving
        if self.fires("serving.slow", f"{session_id}:{t}", serving.slow_rate):
            self.sleep(serving.slow_seconds)
            return True
        return False

    def worker_crashes(self, worker: int, batch_id: int) -> bool:
        """Whether this dispatched batch kills its worker process.

        Explicit ``worker_crash_batches`` entries fire exactly on their
        ``(worker, batch_id)`` pair; because the supervisor assigns a
        fresh ``batch_id`` to the replayed batch after failover, a
        one-shot entry can never re-fire on the replay.  The rate-based
        draw uses the same key, so it is equally replayable.
        """
        serving = self.plan.serving
        if (int(worker), int(batch_id)) in serving.worker_crash_batches:
            self._note("serving.worker_crash", f"{worker}:{batch_id}")
            return True
        return self.fires(
            "serving.worker_crash", f"{worker}:{batch_id}",
            serving.worker_crash_rate,
        )

    def corrupt_checkpoint(self, path: PathLike) -> List[str]:
        """Tear checkpoint files in ``path`` per the plan.

        Each regular file is truncated to half its size when its keyed
        draw fires — the torn-write shape ``load_checkpoint`` must turn
        into a structured :class:`~repro.serving.CheckpointCorrupt`.
        Returns the names of the files corrupted.
        """
        rate = self.plan.serving.checkpoint_corrupt_rate
        torn: List[str] = []
        if rate <= 0.0:
            return torn
        for file in sorted(Path(path).iterdir()):
            if not file.is_file():
                continue
            if self.fires("serving.checkpoint", file.name, rate):
                data = file.read_bytes()
                file.write_bytes(data[: len(data) // 2])
                torn.append(file.name)
        return torn

    # -- data seam -----------------------------------------------------
    def fetch_fails(self, pair: str, attempt: int) -> bool:
        """Whether this fetch attempt raises (transport-level fault)."""
        data = self.plan.data
        if attempt >= data.fetch_error_attempts:
            return False
        return self.fires(
            "data.fetch", f"{pair}:{attempt}", data.fetch_error_rate
        )

    def corrupt_market(self, data: MarketData, key: str = "") -> MarketData:
        return corrupt_panel(data, self.plan.data, self.plan.seed, key=key)


def injector_from(plan_or_injector) -> Optional[FaultInjector]:
    """Normalise a ``FaultPlan | FaultInjector | None`` parameter.

    Empty plans normalise to ``None`` — the single check that makes
    "no plan" and "empty plan" the same code path everywhere.
    """
    if plan_or_injector is None:
        return None
    if isinstance(plan_or_injector, FaultInjector):
        return None if plan_or_injector.plan.is_empty() else plan_or_injector
    if isinstance(plan_or_injector, FaultPlan):
        if plan_or_injector.is_empty():
            return None
        return FaultInjector(plan_or_injector)
    raise TypeError(
        f"expected FaultPlan, FaultInjector, or None, got "
        f"{type(plan_or_injector).__name__}"
    )


# ----------------------------------------------------------------------
def corrupt_panel(
    data: MarketData, faults: DataFaults, seed: int, key: str = ""
) -> MarketData:
    """Return a feed-corrupted copy of ``data`` (the *dirty* panel).

    Applies, in a fixed order, the plan's cell faults (NaN prices, zero
    prices), stale repeated rows, duplicated timestamps, and missing
    candles (rows removed, leaving timestamp gaps).  The result is
    built *without* validation — it is exactly the malformed feed
    :func:`repro.data.validation.validate_panel` exists to detect and
    repair.  Deterministic: one seeded generator derived from
    ``(seed, key)`` drives all draws, so the same panel corrupts the
    same way every replay.
    """
    if not faults.active:
        return data
    rng = make_rng(stable_hash(f"{seed}:data:{key}", modulus=2 ** 31 - 1))
    n, m = data.close.shape
    o = data.open.copy()
    h = data.high.copy()
    l = data.low.copy()
    c = data.close.copy()
    v = data.volume.copy()
    ts = data.timestamps.copy()

    # Cell faults (row 0 is spared so a repaired panel always has an
    # anchor price to forward-fill from).
    nan_mask = rng.random((n, m)) < faults.nan_rate
    zero_mask = rng.random((n, m)) < faults.zero_rate
    nan_mask[0] = False
    zero_mask[0] = False
    for mask, value in ((nan_mask, np.nan), (zero_mask, 0.0)):
        o[mask] = value
        h[mask] = value
        l[mask] = value
        c[mask] = value

    # Row faults are drawn for every row > 0 in one pass each.
    stale_rows = np.flatnonzero(rng.random(n) < faults.stale_rate)
    dup_rows = np.flatnonzero(rng.random(n) < faults.duplicate_rate)
    missing_rows = np.flatnonzero(rng.random(n) < faults.missing_rate)
    for r in stale_rows:
        if r == 0:
            continue
        o[r], h[r], l[r], c[r], v[r] = o[r - 1], h[r - 1], l[r - 1], c[r - 1], v[r - 1]
    for r in dup_rows:
        if r == 0:
            continue
        ts[r] = ts[r - 1]
    keep = np.ones(n, dtype=bool)
    keep[missing_rows] = False
    keep[0] = True  # the feed's first candle anchors the timeline

    return unvalidated_market(
        timestamps=ts[keep],
        names=list(data.names),
        open=o[keep],
        high=h[keep],
        low=l[keep],
        close=c[keep],
        volume=v[keep],
        period_seconds=data.period_seconds,
    )
