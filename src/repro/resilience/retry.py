"""Bounded retry with capped exponential backoff and deterministic jitter.

:class:`RetryPolicy` is the one retry shape the repo uses — the sweep
engine's per-shard retries and the data layer's fetch retries both run
through it.  Jitter is *deterministic*: the delay for ``(key, attempt)``
is a pure function of the policy's jitter fraction and a stable hash,
never of process randomness or wall clock, so a replayed fault plan
produces identical retry schedules (the determinism discipline the rest
of the repo runs on).

``call_with_retry`` owns the loop: call, classify, sleep, repeat.  The
sleeper and clock are injectable so chaos tests run instantly on a fake
clock while production code defaults to ``time.sleep``/``time.monotonic``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, Type

from ..utils.rng import stable_hash

__all__ = ["RetriesExhausted", "RetryPolicy", "call_with_retry"]


class RetriesExhausted(RuntimeError):
    """Every attempt allowed by a :class:`RetryPolicy` failed.

    ``__cause__`` carries the last attempt's exception; ``attempts`` and
    ``elapsed`` record what the loop actually did.
    """

    def __init__(self, message: str, attempts: int, elapsed: float):
        super().__init__(message)
        self.attempts = attempts
        self.elapsed = elapsed


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try and how long to wait between tries.

    Parameters
    ----------
    max_attempts:
        Total attempts (first call included); ``1`` disables retries.
    base_delay:
        Backoff before the first retry, in seconds.
    multiplier:
        Exponential growth factor per retry.
    max_delay:
        Cap on any single backoff.
    jitter:
        Fraction of the capped delay added deterministically in
        ``[0, jitter)``, keyed by ``(key, attempt)`` — decorrelates a
        fleet of retriers without sacrificing replayability.
    timeout:
        Optional total budget in seconds across all attempts (measured
        on the injected clock); exceeded budgets stop retrying even
        with attempts left.
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 10.0
    jitter: float = 0.1
    timeout: Optional[float] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff after failed attempt ``attempt`` (0-based).

        Pure function of the policy and ``(key, attempt)``: capped
        exponential plus a deterministic jitter fraction drawn from a
        stable hash.
        """
        raw = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        unit = stable_hash(f"retry:{key}:{attempt}", modulus=2 ** 30) / 2 ** 30
        return raw * (1.0 + self.jitter * unit)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "multiplier": self.multiplier,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
            "timeout": self.timeout,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "RetryPolicy":
        return cls(
            max_attempts=int(payload.get("max_attempts", 3)),
            base_delay=float(payload.get("base_delay", 0.1)),
            multiplier=float(payload.get("multiplier", 2.0)),
            max_delay=float(payload.get("max_delay", 10.0)),
            jitter=float(payload.get("jitter", 0.1)),
            timeout=(
                None
                if payload.get("timeout") is None
                else float(payload["timeout"])
            ),
        )


def call_with_retry(
    fn: Callable[[int], Any],
    policy: RetryPolicy,
    key: str = "",
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
) -> Any:
    """Run ``fn(attempt)`` under ``policy`` and return its result.

    ``fn`` receives the 0-based attempt number (callers that inject
    faults key off it).  Exceptions outside ``retry_on`` propagate
    immediately; retryable failures back off by
    :meth:`RetryPolicy.delay` until attempts or the time budget run
    out, then raise :class:`RetriesExhausted` from the last error.
    ``on_retry(attempt, error, delay)`` observes each scheduled retry.
    """
    start = clock()
    last: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        try:
            return fn(attempt)
        except retry_on as exc:
            last = exc
            if attempt + 1 >= policy.max_attempts:
                break
            delay = policy.delay(attempt, key)
            if policy.timeout is not None and (
                clock() - start + delay > policy.timeout
            ):
                break
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            sleep(delay)
    elapsed = clock() - start
    attempts = attempt + 1
    raise RetriesExhausted(
        f"{key or 'call'} failed after {attempts} attempt(s) "
        f"({elapsed:.3f}s): {last!r}",
        attempts=attempts,
        elapsed=elapsed,
    ) from last
