"""Best Stock: the single best asset in hindsight (Table 3's "Best Stock").

The standard hindsight benchmark of the on-line portfolio-selection
literature: put everything in the one asset that performs best over the
*entire back-test window*.  It intentionally peeks at the future — it is
an upper-bound reference for single-asset strategies, not a tradeable
policy — which is why the paper's Table 3 can show it beating every
on-line method on fAPV in experiment 3 while still drawing down 51%.

A causal variant (:class:`FollowTheWinner`) that holds the best asset
*so far* is included for completeness/ablation.
"""

from __future__ import annotations

import numpy as np

from ..data.market import MarketData
from .base import ClassicalStrategy


class BestStock(ClassicalStrategy):
    """All-in on the asset with the highest total return over the test."""

    name = "Best Stock"

    def begin_backtest(self, data: MarketData) -> None:
        super().begin_backtest(data)
        total_growth = data.close[-1] / data.close[0]
        self._best = int(np.argmax(total_growth))

    def asset_weights(self, relatives: np.ndarray, n_assets: int) -> np.ndarray:
        weights = np.zeros(n_assets)
        weights[self._best] = 1.0
        return weights


class FollowTheWinner(ClassicalStrategy):
    """Causal cousin of Best Stock: hold the best performer to date."""

    name = "Follow-the-Winner"

    def asset_weights(self, relatives: np.ndarray, n_assets: int) -> np.ndarray:
        weights = np.zeros(n_assets)
        if relatives.shape[0] == 0:
            return np.full(n_assets, 1.0 / n_assets)
        growth = np.prod(relatives, axis=0)
        weights[int(np.argmax(growth))] = 1.0
        return weights
