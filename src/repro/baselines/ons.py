"""ONS: Online Newton Step portfolio selection (Table 3's "ONS").

Agarwal, Hazan, Kale & Schapire, "Algorithms for Portfolio Management
based on the Newton Method" (ICML 2006).  At each step the gradient of
the log-wealth, ``g_t = y_t / (w_t · y_t)``, updates a running Hessian
approximation ``A_t = Σ g g^T + ε I``; the next portfolio is the
projection — *in the norm induced by A_t* — of the Newton iterate
``w_t + (1/β) A_t^{-1} g_t`` onto the simplex, mixed with uniform for
robustness:

.. math::

    w_{t+1} = (1-\\eta)\\,\\Pi^{A_t}_{\\Delta}\\big(w_t + \\tfrac{1}{\\beta}
    A_t^{-1} g_t\\big) + \\eta\\,\\mathbf{1}/m

The generalised projection solves a small convex QP; we use an
active-set iteration on the KKT conditions (exact for this problem
size) with a Euclidean-projection fallback.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.optimize import minimize

from ..data.market import MarketData
from .base import ClassicalStrategy, project_to_simplex

DEFAULT_BETA = 2.0
DEFAULT_DELTA = 0.125
DEFAULT_ETA = 0.01


def projection_in_norm(point: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Projection of ``point`` onto the simplex in the ``matrix`` norm.

    Solves ``min_x (x − p)^T A (x − p)  s.t.  x ≥ 0, Σx = 1`` with
    SLSQP (the problem is a tiny strictly convex QP; the solver's
    tolerance is far below trading significance).  Falls back to the
    Euclidean projection if the solver fails.
    """
    point = np.asarray(point, dtype=np.float64)
    matrix = np.asarray(matrix, dtype=np.float64)
    m = point.size

    def objective(x: np.ndarray) -> float:
        d = x - point
        return float(d @ matrix @ d)

    def gradient(x: np.ndarray) -> np.ndarray:
        return 2.0 * matrix @ (x - point)

    x0 = project_to_simplex(point)
    result = minimize(
        objective,
        x0,
        jac=gradient,
        method="SLSQP",
        bounds=[(0.0, 1.0)] * m,
        constraints=[{"type": "eq", "fun": lambda x: x.sum() - 1.0}],
        options={"maxiter": 200, "ftol": 1e-12},
    )
    if result.success and np.all(result.x >= -1e-9):
        x = np.clip(result.x, 0.0, None)
        return x / x.sum()
    return x0


class ONS(ClassicalStrategy):
    """Online Newton Step with uniform mixing."""

    name = "ONS"

    def __init__(
        self,
        beta: float = DEFAULT_BETA,
        delta: float = DEFAULT_DELTA,
        eta: float = DEFAULT_ETA,
    ):
        if beta <= 0 or delta <= 0:
            raise ValueError("beta and delta must be positive")
        if not 0.0 <= eta < 1.0:
            raise ValueError(f"eta must be in [0, 1), got {eta}")
        self.beta = float(beta)
        self.delta = float(delta)
        self.eta = float(eta)

    def begin_backtest(self, data: MarketData) -> None:
        super().begin_backtest(data)
        m = data.n_assets
        self._A = self.delta * np.eye(m)
        self._b = np.zeros(m)
        self._weights = np.full(m, 1.0 / m)
        self._seen = 0

    def asset_weights(self, relatives: np.ndarray, n_assets: int) -> np.ndarray:
        while self._seen < relatives.shape[0]:
            y = relatives[self._seen]
            self._seen += 1
            denom = float(self._weights @ y)
            if denom <= 0:
                denom = 1e-12
            grad = y / denom
            self._A += np.outer(grad, grad)
            self._b += (1.0 + 1.0 / self.beta) * grad
            newton = np.linalg.solve(self._A, self._b) / self.beta
            projected = projection_in_norm(newton, self._A)
            self._weights = (
                (1.0 - self.eta) * projected + self.eta / n_assets
            )
        return self._weights
