"""Uniform Buy-And-Hold (market benchmark).

Buys the uniform portfolio at the first decision and never rebalances:
the target weights drift with prices.  Not in Table 3 but standard in
every on-line portfolio-selection comparison and useful as the "market"
reference series in the experiment harness.
"""

from __future__ import annotations

import numpy as np

from .base import ClassicalStrategy


class UBAH(ClassicalStrategy):
    """Uniform buy-and-hold: initial 1/M, then let weights drift."""

    name = "UBAH"

    def asset_weights(self, relatives: np.ndarray, n_assets: int) -> np.ndarray:
        weights = np.full(n_assets, 1.0 / n_assets)
        if relatives.shape[0] == 0:
            return weights
        # Compound each asset's growth since the start; the drifted
        # buy-and-hold weights are proportional to cumulative growth.
        growth = np.prod(relatives, axis=0)
        drifted = weights * growth
        return drifted / drifted.sum()
