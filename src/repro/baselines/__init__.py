"""Classical on-line portfolio-selection baselines of Table 3.

UCRP, Best Stock, M0, ANTICOR, and ONS (plus UBAH and variants), all
implementing the common :class:`~repro.agents.base.Agent` interface so
they back-test through the same loop as the learning agents.
"""

from typing import Dict, List

from ..agents.base import Agent
from .anticor import Anticor, AnticorEnsemble, anticor_weights
from .bah import UBAH
from .base import ClassicalStrategy, project_to_simplex
from .best_stock import BestStock, FollowTheWinner
from .crp import CRP, UCRP
from .m0 import M0
from .ons import ONS, projection_in_norm


def table3_baselines() -> List[Agent]:
    """The classical strategies of the paper's Table 3, in its order."""
    return [ONS(), BestStock(), Anticor(), M0(), UCRP()]


__all__ = [
    "Anticor",
    "AnticorEnsemble",
    "BestStock",
    "CRP",
    "ClassicalStrategy",
    "FollowTheWinner",
    "M0",
    "ONS",
    "UBAH",
    "UCRP",
    "anticor_weights",
    "project_to_simplex",
    "projection_in_norm",
    "table3_baselines",
]
