r"""ANTICOR: the anti-correlation mean-reversion strategy (Table 3's
"ANTICOR").

Borodin, El-Yaniv & Gogan (2004).  For a window length ``w`` the
algorithm compares two consecutive windows of log price-relatives,
LX1 = periods t−2w+1..t−w and LX2 = t−w+1..t.  Wealth is transferred
from asset ``i`` to asset ``j`` when ``i`` outperformed ``j`` in the
recent window but their cross-window correlation ``M_cor[i, j]`` is
positive — betting the lead will revert.  The claim from ``i`` to ``j``
adds the negative autocorrelations of both assets:

.. math::

    claim_{i \to j} = M_{cor}[i,j] + \max(0, -M_{cor}[i,i])
                      + \max(0, -M_{cor}[j,j])

The canonical BAH(ANTICOR) wealth-weighted ensemble over window lengths
``2..W`` is provided as :class:`AnticorEnsemble`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..data.market import MarketData
from .base import ClassicalStrategy

DEFAULT_WINDOW = 15


def _window_statistics(lx1: np.ndarray, lx2: np.ndarray):
    """Means and cross-window correlation matrix of two log-relative blocks."""
    mu1 = lx1.mean(axis=0)
    mu2 = lx2.mean(axis=0)
    sd1 = lx1.std(axis=0, ddof=1)
    sd2 = lx2.std(axis=0, ddof=1)
    n = lx1.shape[0]
    cov = (lx1 - mu1).T @ (lx2 - mu2) / (n - 1)
    denom = np.outer(sd1, sd2)
    with np.errstate(divide="ignore", invalid="ignore"):
        corr = np.where(denom > 0, cov / denom, 0.0)
    return mu2, corr


def anticor_weights(
    relatives: np.ndarray, current: np.ndarray, window: int
) -> np.ndarray:
    """One ANTICOR update of the portfolio ``current``.

    ``relatives`` holds all observed price relatives (rows oldest
    first).  Returns the new asset allocation; if fewer than ``2·window``
    observations exist the portfolio is unchanged.
    """
    n_obs, n_assets = relatives.shape
    if n_obs < 2 * window:
        return current
    log_rel = np.log(relatives[-2 * window :])
    lx1 = log_rel[:window]
    lx2 = log_rel[window:]
    mu2, corr = _window_statistics(lx1, lx2)

    # claim[i, j]: transfer wealth i -> j when i beat j recently and the
    # cross-correlation is positive.
    better = mu2[:, None] > mu2[None, :]
    positive = corr > 0
    claims = np.where(
        better & positive,
        corr
        + np.maximum(0.0, -np.diag(corr))[:, None]
        + np.maximum(0.0, -np.diag(corr))[None, :],
        0.0,
    )
    np.fill_diagonal(claims, 0.0)

    totals = claims.sum(axis=1)
    transfer = np.zeros_like(claims)
    senders = totals > 0
    transfer[senders] = (
        current[senders, None] * claims[senders] / totals[senders, None]
    )
    new_weights = current - transfer.sum(axis=1) + transfer.sum(axis=0)
    new_weights = np.clip(new_weights, 0.0, None)
    total = new_weights.sum()
    if total <= 0:
        return np.full(n_assets, 1.0 / n_assets)
    return new_weights / total


class Anticor(ClassicalStrategy):
    """Single-window ANTICOR."""

    name = "ANTICOR"

    def __init__(self, window: int = DEFAULT_WINDOW):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.window = int(window)

    def begin_backtest(self, data: MarketData) -> None:
        super().begin_backtest(data)
        self._weights: Optional[np.ndarray] = None
        self._seen = 0

    def asset_weights(self, relatives: np.ndarray, n_assets: int) -> np.ndarray:
        if self._weights is None:
            self._weights = np.full(n_assets, 1.0 / n_assets)
        # Apply one update per newly observed period (the back-test loop
        # hands us the full history each call).
        while self._seen < relatives.shape[0]:
            self._seen += 1
            self._weights = anticor_weights(
                relatives[: self._seen], self._weights, self.window
            )
        return self._weights


class AnticorEnsemble(ClassicalStrategy):
    """BAH(ANTICOR): wealth-weighted ensemble over windows 2..max_window."""

    name = "ANTICOR-BAH"

    def __init__(self, max_window: int = 15):
        if max_window < 2:
            raise ValueError(f"max_window must be >= 2, got {max_window}")
        self.max_window = int(max_window)

    def begin_backtest(self, data: MarketData) -> None:
        super().begin_backtest(data)
        n_windows = self.max_window - 1
        self._experts: List[Optional[np.ndarray]] = [None] * n_windows
        self._wealth = np.ones(n_windows)
        self._seen = 0

    def asset_weights(self, relatives: np.ndarray, n_assets: int) -> np.ndarray:
        for k in range(len(self._experts)):
            if self._experts[k] is None:
                self._experts[k] = np.full(n_assets, 1.0 / n_assets)
        while self._seen < relatives.shape[0]:
            y = relatives[self._seen]
            self._seen += 1
            for k, window in enumerate(range(2, self.max_window + 1)):
                expert = self._experts[k]
                self._wealth[k] *= float(expert @ y)
                drifted = expert * y
                drifted = drifted / drifted.sum()
                self._experts[k] = anticor_weights(
                    relatives[: self._seen], drifted, window
                )
        combined = sum(
            wealth * expert
            for wealth, expert in zip(self._wealth, self._experts)
        ) / self._wealth.sum()
        return combined
