"""Shared machinery for the classical on-line portfolio-selection
strategies the paper benchmarks against (Table 3).

All baselines are :class:`~repro.agents.base.Agent` subclasses, so they
run through the identical back-test loop as the learning agents.
Following the on-line portfolio-selection literature (and Jiang et
al.'s comparison), the classical strategies allocate over the M risky
assets only — their cash weight is always zero; the simplex is over
assets.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..agents.base import Agent
from ..data.market import MarketData


def project_to_simplex(v: np.ndarray) -> np.ndarray:
    """Euclidean projection onto the probability simplex.

    Duchi et al. (2008): O(n log n) sort-based algorithm.
    """
    v = np.asarray(v, dtype=np.float64)
    if v.ndim != 1:
        raise ValueError("project_to_simplex expects a vector")
    u = np.sort(v)[::-1]
    css = np.cumsum(u)
    rho_candidates = u - (css - 1.0) / np.arange(1, v.size + 1)
    rho = np.nonzero(rho_candidates > 0)[0][-1]
    theta = (css[rho] - 1.0) / (rho + 1.0)
    return np.maximum(v - theta, 0.0)


class ClassicalStrategy(Agent):
    """Base class: tracks observed price relatives, allocates over assets.

    Subclasses implement :meth:`asset_weights`, returning a distribution
    over the M assets given all price relatives observed so far
    (rows ``y_1 .. y_k``, each ``close_t / close_{t-1}``).
    """

    def begin_backtest(self, data: MarketData) -> None:
        """Reset per-run state; the single place ``_start_index`` is born."""
        self._start_index: int | None = None

    def asset_weights(self, relatives: np.ndarray, n_assets: int) -> np.ndarray:
        raise NotImplementedError

    def act(self, data: MarketData, t: int, w_prev: np.ndarray) -> np.ndarray:
        if not hasattr(self, "_start_index"):
            raise RuntimeError(
                f"{self.name}: begin_backtest must be called before act"
            )
        if self._start_index is None:
            self._start_index = t
        # Relatives observed since the back-test started (no look-ahead:
        # row k is close_{s+k+1}/close_{s+k} with s+k+1 <= t).
        closes = data.close[self._start_index : t + 1]
        relatives = closes[1:] / closes[:-1] if closes.shape[0] > 1 else np.empty(
            (0, data.n_assets)
        )
        w_assets = self.asset_weights(relatives, data.n_assets)
        w_assets = np.asarray(w_assets, dtype=np.float64)
        if w_assets.shape != (data.n_assets,):
            raise ValueError(
                f"{self.name}: expected {data.n_assets} asset weights, "
                f"got shape {w_assets.shape}"
            )
        if np.any(w_assets < -1e-9):
            raise ValueError(f"{self.name}: negative asset weights")
        w_assets = np.clip(w_assets, 0.0, None)
        total = w_assets.sum()
        if total <= 0:
            w_assets = np.full(data.n_assets, 1.0 / data.n_assets)
        else:
            w_assets = w_assets / total
        return np.concatenate([[0.0], w_assets])
