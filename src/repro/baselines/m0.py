"""M0: the order-0 Markov prediction strategy (Table 3's "M0").

Borodin, El-Yaniv & Gogan ("Can We Learn to Beat the Best Stock", 2004)
describe the M(0) strategy from the universal-prediction family: a
zeroth-order predictor counts, for each asset, how often it has been the
period's best performer, and allocates proportionally to the
add-half (Krichevsky–Trofimov) smoothed counts.  With no memory of
context it is a calibrated follow-the-winner that never commits fully to
one asset.
"""

from __future__ import annotations

import numpy as np

from .base import ClassicalStrategy


class M0(ClassicalStrategy):
    """Order-0 Markov experts with Krichevsky–Trofimov smoothing."""

    name = "M0"

    def __init__(self, prior: float = 0.5):
        if prior <= 0:
            raise ValueError(f"prior must be positive, got {prior}")
        self.prior = float(prior)

    def asset_weights(self, relatives: np.ndarray, n_assets: int) -> np.ndarray:
        if relatives.shape[0] > 0:
            winners = np.argmax(relatives, axis=1)
            counts = np.bincount(winners, minlength=n_assets).astype(np.float64)
        else:
            counts = np.zeros(n_assets)
        smoothed = counts + self.prior
        return smoothed / smoothed.sum()
