"""Constant-rebalanced portfolios.

UCRP — the Uniform Constant Rebalanced Portfolio — rebalances to the
uniform asset allocation every period (Cover 1991's benchmark; Table 3's
"UCRP").  The generalised :class:`CRP` accepts any fixed target.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .base import ClassicalStrategy


class CRP(ClassicalStrategy):
    """Rebalance to a fixed asset allocation every period."""

    name = "CRP"

    def __init__(self, target: Optional[Sequence[float]] = None):
        self._target = None if target is None else np.asarray(target, dtype=np.float64)
        if self._target is not None:
            if np.any(self._target < 0):
                raise ValueError("CRP target must be non-negative")
            total = self._target.sum()
            if total <= 0:
                raise ValueError("CRP target must have positive mass")
            self._target = self._target / total

    def asset_weights(self, relatives: np.ndarray, n_assets: int) -> np.ndarray:
        if self._target is None:
            return np.full(n_assets, 1.0 / n_assets)
        if self._target.shape != (n_assets,):
            raise ValueError(
                f"CRP target has {self._target.shape[0]} entries for "
                f"{n_assets} assets"
            )
        return self._target


class UCRP(CRP):
    """Uniform CRP: 1/M in every asset, rebalanced each period."""

    name = "UCRP"

    def __init__(self):
        super().__init__(target=None)
