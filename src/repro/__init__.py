"""repro — Spiking Deep Reinforcement Learning for Portfolio Management.

A full reproduction of Saeidi, Fallah, Barmaki & Farbeh, "A Novel
Neuromorphic Processors Realization of Spiking Deep Reinforcement
Learning for Portfolio Management" (DATE 2022), including every
substrate the paper depends on:

* :mod:`repro.autograd` — numpy reverse-mode autodiff (no torch needed)
* :mod:`repro.snn` — population coding, two-state LIF, STBP (Alg. 1)
* :mod:`repro.data` — synthetic Poloniex-like crypto market, 2016–2021
* :mod:`repro.envs` — the Jiang-framework PM environment (eq. (1))
* :mod:`repro.agents` — the SDP agent + the DRL[Jiang] EIIE baseline
* :mod:`repro.baselines` — ONS, Best Stock, ANTICOR, M0, UCRP, UBAH
* :mod:`repro.loihi` — 8-bit quantization (eq. (14)), fixed-point chip
  simulation, energy/latency device models (Table 4)
* :mod:`repro.metrics` — fAPV, Sharpe, MDD (eqs. (15)–(17))
* :mod:`repro.experiments` — end-to-end regeneration of Tables 3 & 4

Quickstart::

    from repro.experiments import make_config, run_experiment, render_table3
    result = run_experiment(make_config(1, profile="quick"))
    print(render_table3(result))
"""

__version__ = "1.0.0"

from . import agents, autograd, baselines, data, envs, experiments, loihi, metrics, snn, utils

__all__ = [
    "__version__",
    "agents",
    "autograd",
    "baselines",
    "data",
    "envs",
    "experiments",
    "loihi",
    "metrics",
    "snn",
    "utils",
]
