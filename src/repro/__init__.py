"""repro — Spiking Deep Reinforcement Learning for Portfolio Management.

A full reproduction of Saeidi, Fallah, Barmaki & Farbeh, "A Novel
Neuromorphic Processors Realization of Spiking Deep Reinforcement
Learning for Portfolio Management" (DATE 2022), including every
substrate the paper depends on:

* :mod:`repro.autograd` — numpy reverse-mode autodiff (no torch needed)
* :mod:`repro.snn` — population coding, two-state LIF, STBP (Alg. 1)
* :mod:`repro.data` — synthetic Poloniex-like crypto market, 2016–2021
* :mod:`repro.envs` — the Jiang-framework PM environment (eq. (1))
* :mod:`repro.execution` — liquidity-aware execution & slippage
  simulation (impact models, partial fills, implementation shortfall)
* :mod:`repro.agents` — the SDP agent + the DRL[Jiang] EIIE baseline
* :mod:`repro.baselines` — ONS, Best Stock, ANTICOR, M0, UCRP, UBAH
* :mod:`repro.loihi` — 8-bit quantization (eq. (14)), fixed-point chip
  simulation, energy/latency device models (Table 4)
* :mod:`repro.metrics` — fAPV, Sharpe, MDD (eqs. (15)–(17))
* :mod:`repro.experiments` — end-to-end regeneration of Tables 3 & 4
* :mod:`repro.registry` — string-keyed construction of every strategy
* :mod:`repro.serving` — multi-session inference service (micro-batched
  rebalance decisions, checkpointing, stdlib HTTP endpoint)

Quickstart::

    from repro.experiments import make_config, run_experiment, render_table3
    result = run_experiment(make_config(1, profile="quick"))
    print(render_table3(result))

Serving::

    from repro import registry
    from repro.experiments import build_experiment_data, make_config
    from repro.serving import PortfolioService, RebalanceRequest

    config = make_config(1, profile="quick")
    panel = build_experiment_data(config).test

    service = PortfolioService()
    service.register_market("poloniex", panel)
    for sid in ("alice", "bob"):
        service.create_session(
            sid, strategy="sdp",
            params={"observation": config.observation,
                    "hidden_sizes": config.hidden_sizes},
            market="poloniex",
        )
    # Concurrent sessions on one stateless strategy share a single
    # batched SNN forward per round:
    responses = service.rebalance_many(
        [RebalanceRequest("alice"), RebalanceRequest("bob")]
    )

See ``API.md`` for the Strategy protocol, registry names, and the
serving request/response schema.
"""

__version__ = "1.1.0"

from . import (
    agents,
    autograd,
    baselines,
    data,
    envs,
    execution,
    experiments,
    loihi,
    metrics,
    registry,
    serving,
    snn,
    utils,
)

__all__ = [
    "__version__",
    "agents",
    "autograd",
    "baselines",
    "data",
    "envs",
    "execution",
    "experiments",
    "loihi",
    "metrics",
    "registry",
    "serving",
    "snn",
    "utils",
]
