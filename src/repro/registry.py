"""String-keyed construction of every strategy in the repo.

The registry is the single public way to build a policy from
configuration — a name plus a parameter dict — instead of importing
concrete classes.  It is what :mod:`repro.serving` uses to turn a JSON
rebalance-session spec into a live agent, what the experiment runner
uses to build its learned agents, and the extension point for user
strategies::

    from repro import registry

    registry.create("sdp", n_assets=6)              # name + params
    registry.build({"strategy": "ons", "params": {"beta": 2.0}})

    @registry.register("my_momentum")
    class MyMomentum(ClassicalStrategy):
        ...

Built-in names: ``sdp``, ``jiang``, ``ons``, ``anticor``, ``crp``,
``ucrp``, ``bah`` (alias ``ubah``), ``best_stock``,
``follow_the_winner``, ``m0``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, Mapping, Optional, Tuple

from .agents.base import Agent
from .agents.jiang import JiangDRLAgent
from .agents.sdp import SDPAgent
from .baselines import CRP, M0, ONS, UBAH, UCRP, Anticor, BestStock, FollowTheWinner

if TYPE_CHECKING:
    from .experiments.config import ExperimentConfig

StrategyFactory = Callable[..., Agent]

__all__ = [
    "DEFAULT_REGISTRY",
    "StrategyRegistry",
    "TRAINABLE_STRATEGIES",
    "available_strategies",
    "build",
    "create",
    "is_trainable",
    "register",
    "strategy_from_config",
    "strategy_params_from_config",
]


def _normalize(name: str) -> str:
    return name.strip().lower().replace("-", "_").replace(" ", "_")


class StrategyRegistry:
    """Maps strategy names to factories producing :class:`Agent` objects.

    Names are case-insensitive; ``-`` and spaces normalise to ``_``.
    """

    def __init__(self):
        self._factories: Dict[str, StrategyFactory] = {}

    # ------------------------------------------------------------------
    def register(
        self, name: str, factory: Optional[StrategyFactory] = None
    ) -> StrategyFactory:
        """Register ``factory`` under ``name``.

        Usable directly — ``registry.register("ons", ONS)`` — or as a
        class/function decorator: ``@registry.register("my_strategy")``.
        Re-registering a taken name raises ``ValueError``.
        """
        key = _normalize(name)

        def _store(f: StrategyFactory) -> StrategyFactory:
            if key in self._factories:
                raise ValueError(f"strategy {key!r} is already registered")
            if not callable(f):
                raise TypeError(f"factory for {key!r} must be callable")
            self._factories[key] = f
            return f

        if factory is None:
            return _store
        return _store(factory)

    def unregister(self, name: str) -> None:
        """Remove a registered strategy (no-op if absent)."""
        self._factories.pop(_normalize(name), None)

    def get_factory(self, name: str) -> Optional[StrategyFactory]:
        """The factory registered under ``name``, or ``None``."""
        return self._factories.get(_normalize(name))

    # ------------------------------------------------------------------
    def create(self, name: str, **params: Any) -> Agent:
        """Construct the strategy registered under ``name``.

        ``params`` are forwarded to the factory verbatim (e.g.
        ``n_assets`` for the learned strategies).
        """
        key = _normalize(name)
        try:
            factory = self._factories[key]
        except KeyError:
            raise KeyError(
                f"unknown strategy {name!r}; available: {', '.join(self.names())}"
            ) from None
        agent = factory(**params)
        if not isinstance(agent, Agent):
            raise TypeError(
                f"factory for {key!r} returned {type(agent).__name__}, "
                "expected an Agent"
            )
        return agent

    def build(self, spec: Mapping[str, Any]) -> Agent:
        """Construct a strategy from a spec dict.

        The spec names the strategy under ``"strategy"`` (or ``"name"``)
        and carries constructor parameters either nested under
        ``"params"`` or inline alongside the name — the JSON shape the
        serving layer speaks.
        """
        spec = dict(spec)
        strategy_key = spec.pop("strategy", None)
        name_key = spec.pop("name", None)
        name = strategy_key if strategy_key is not None else name_key
        if name is None:
            raise KeyError("spec must name a strategy under 'strategy' (or 'name')")
        params = dict(spec.pop("params", None) or {})
        params.update(spec)
        return self.create(name, **params)

    # ------------------------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        """Registered strategy names, sorted."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and _normalize(name) in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)


#: The process-wide registry holding every built-in strategy.
DEFAULT_REGISTRY = StrategyRegistry()

DEFAULT_REGISTRY.register("sdp", SDPAgent)
DEFAULT_REGISTRY.register("jiang", JiangDRLAgent)
DEFAULT_REGISTRY.register("ons", ONS)
DEFAULT_REGISTRY.register("anticor", Anticor)
DEFAULT_REGISTRY.register("crp", CRP)
DEFAULT_REGISTRY.register("ucrp", UCRP)
DEFAULT_REGISTRY.register("bah", UBAH)
DEFAULT_REGISTRY.register("ubah", UBAH)
DEFAULT_REGISTRY.register("best_stock", BestStock)
DEFAULT_REGISTRY.register("follow_the_winner", FollowTheWinner)
DEFAULT_REGISTRY.register("m0", M0)


def register(name: str, factory: Optional[StrategyFactory] = None) -> StrategyFactory:
    """Register a user strategy in the default registry (decorator-friendly)."""
    return DEFAULT_REGISTRY.register(name, factory)


def create(name: str, **params: Any) -> Agent:
    """Construct a strategy by name from the default registry."""
    return DEFAULT_REGISTRY.create(name, **params)


def build(spec: Mapping[str, Any]) -> Agent:
    """Construct a strategy from a spec dict via the default registry."""
    return DEFAULT_REGISTRY.build(spec)


def available_strategies() -> Tuple[str, ...]:
    """Names constructible through the default registry."""
    return DEFAULT_REGISTRY.names()


#: Registry names of the strategies trained by :class:`PolicyTrainer`
#: (everything else is a parameter-free classical baseline to which
#: seeds and network hyper-parameters do not apply).
TRAINABLE_STRATEGIES: Tuple[str, ...] = ("sdp", "jiang")


def is_trainable(name: str) -> bool:
    """True when ``name`` denotes a learned (trainable) strategy."""
    return _normalize(name) in TRAINABLE_STRATEGIES


def strategy_params_from_config(
    name: str,
    config: "ExperimentConfig",
    n_assets: Optional[int] = None,
    **overrides: Any,
) -> Dict[str, Any]:
    """Constructor params for strategy ``name`` under ``config``.

    The single definition of spec→strategy wiring: the experiment
    runner, the sweep engine, and artifact checkpoints all derive (and
    persist) exactly this dict, so a strategy rebuilt from a stored spec
    is constructed identically to the one the experiment ran.
    """
    key = _normalize(name)
    n = int(n_assets) if n_assets is not None else int(config.num_assets)
    params: Dict[str, Any]
    if key == "sdp":
        params = dict(
            n_assets=n,
            observation=config.observation,
            hidden_sizes=config.hidden_sizes,
            timesteps=config.timesteps,
            encoder_pop_size=config.encoder_pop_size,
            decoder_pop_size=config.decoder_pop_size,
            lif=config.lif,
            surrogate_amplifier=config.surrogate_amplifier,
            surrogate_window=config.surrogate_window,
            seed=config.agent_seed,
        )
    elif key == "jiang":
        params = dict(
            n_assets=n,
            observation=config.observation,
            seed=config.agent_seed,
        )
    else:
        params = {}
    params.update(overrides)
    return params


def strategy_from_config(
    name: str,
    config: "ExperimentConfig",
    n_assets: Optional[int] = None,
    **overrides: Any,
) -> Agent:
    """Build a strategy wired to an :class:`ExperimentConfig`.

    For the learned strategies the config's observation, network and
    seed hyper-parameters become constructor arguments (exactly the
    wiring the experiment runner uses); classical strategies take no
    config parameters.  ``overrides`` replace any derived argument.
    """
    key = _normalize(name)
    params = strategy_params_from_config(key, config, n_assets, **overrides)
    return DEFAULT_REGISTRY.create(key, **params)
