"""Gradient verification: finite differences and fused-kernel parity.

Used by the test suite to validate every op in the engine and the
surrogate-gradient-free parts of the spiking stack, and — via
:func:`check_fused_training_parity` — to gate the hand-derived analytic
kernels of the fused STBP training path against the closure-graph
reference.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert analytic gradients of ``fn`` match finite differences.

    ``fn`` must be a pure function of its tensor inputs returning a
    tensor of any shape (the check sums it to a scalar).
    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    for p in inputs:
        p.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    for i, inp in enumerate(inputs):
        if not inp.requires_grad:
            continue
        analytic = inp.grad if inp.grad is not None else np.zeros_like(inp.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )


def check_fused_training_parity(
    policy,
    data,
    indices: np.ndarray,
    w_prev: np.ndarray,
    w_drifted: np.ndarray,
    y_next: np.ndarray,
    commission: float = 0.0025,
    atol: float = 1e-9,
) -> Dict[str, float]:
    """Gate the fused STBP kernels against the closure-graph reference.

    Runs the trainer's objective once through ``policy_forward`` +
    ``backward()`` and once through ``policy_forward_fused`` +
    ``policy_backward_fused`` from the *same* parameters and inputs,
    then asserts:

    * actions are **bit-identical** between the two paths;
    * the scalar loss is bit-identical;
    * every parameter gradient matches within ``atol`` (the kernels are
      written to be exactly identical; ``atol`` only bounds the check).

    Returns the per-parameter max-abs gradient differences (keyed by
    parameter index) for diagnostics.  Parameter ``.grad`` slots are
    cleared on exit; parameter values are never touched.
    """
    # Lazy import: envs.costs sits above autograd in the layer stack.
    from ..envs.costs import fused_training_loss, transaction_remainder_approx

    params = list(policy.parameters())
    for p in params:
        p.zero_grad()
    actions = policy.policy_forward(data, indices, w_prev)
    mu = transaction_remainder_approx(Tensor(w_drifted), actions, commission)
    growth = (actions * Tensor(y_next)).sum(axis=1)
    log_return = (mu * growth).log()
    loss = -log_return.mean()
    loss.backward()
    ref_loss = float(loss.data)
    ref_grads = [None if p.grad is None else p.grad.copy() for p in params]

    for p in params:
        p.zero_grad()
    actions_fused = policy.policy_forward_fused(data, indices, w_prev)
    if not np.array_equal(actions_fused, actions.data):
        worst = np.abs(actions_fused - actions.data).max()
        raise AssertionError(
            f"fused forward diverged from the graph path "
            f"(max abs diff {worst:.3e})"
        )
    fused_loss, _, grad_actions = fused_training_loss(
        actions_fused, w_drifted, y_next, commission
    )
    if fused_loss != ref_loss:
        raise AssertionError(
            f"fused loss {fused_loss!r} != graph loss {ref_loss!r}"
        )
    policy.policy_backward_fused(grad_actions)

    diffs: Dict[str, float] = {}
    try:
        for i, (p, ref) in enumerate(zip(params, ref_grads)):
            if ref is None or p.grad is None:
                raise AssertionError(
                    f"parameter {i}: gradient missing on "
                    f"{'graph' if ref is None else 'fused'} path"
                )
            worst = float(np.abs(p.grad - ref).max())
            diffs[f"param_{i}"] = worst
            if worst > atol:
                raise AssertionError(
                    f"parameter {i} (shape {p.data.shape}): fused gradient "
                    f"differs from graph path by {worst:.3e} > atol {atol:.1e}"
                )
    finally:
        for p in params:
            p.zero_grad()
    return diffs
