"""Finite-difference gradient verification.

Used by the test suite to validate every op in the engine and the
surrogate-gradient-free parts of the spiking stack.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert analytic gradients of ``fn`` match finite differences.

    ``fn`` must be a pure function of its tensor inputs returning a
    tensor of any shape (the check sums it to a scalar).
    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    for p in inputs:
        p.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    for i, inp in enumerate(inputs):
        if not inp.requires_grad:
            continue
        analytic = inp.grad if inp.grad is not None else np.zeros_like(inp.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
