"""Numpy-based reverse-mode automatic differentiation.

Public surface::

    from repro.autograd import Tensor, nn, functional, optim
    from repro.autograd import concatenate, stack, where, custom_op
"""

from . import functional, nn, optim
from .gradcheck import (
    check_fused_training_parity,
    check_gradients,
    numerical_gradient,
)
from .tensor import (
    Tensor,
    concatenate,
    custom_op,
    enable_grad,
    ensure_tensor,
    is_grad_enabled,
    no_grad,
    ones,
    set_grad_enabled,
    stack,
    unbroadcast,
    where,
    zeros,
    zeros_like,
)

__all__ = [
    "Tensor",
    "concatenate",
    "custom_op",
    "enable_grad",
    "ensure_tensor",
    "functional",
    "is_grad_enabled",
    "nn",
    "no_grad",
    "ones",
    "optim",
    "set_grad_enabled",
    "stack",
    "unbroadcast",
    "where",
    "zeros",
    "zeros_like",
    "check_fused_training_parity",
    "check_gradients",
    "numerical_gradient",
]
