"""Composite differentiable operations built on :class:`~repro.autograd.tensor.Tensor`.

Includes the numerically-stable softmax family used by the policy
decoders and an ``im2col`` 2-D convolution used by the Jiang EIIE
baseline network.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor, ensure_tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = ensure_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))``."""
    x = ensure_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def relu(x: Tensor) -> Tensor:
    return ensure_tensor(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    return ensure_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return ensure_tensor(x).tanh()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = ensure_tensor(prediction) - ensure_tensor(target)
    return (diff * diff).mean()


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (torch convention)."""
    out = ensure_tensor(x) @ weight.T
    if bias is not None:
        out = out + bias
    return out


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: Tuple[int, int]
) -> Tuple[np.ndarray, int, int]:
    """Extract sliding patches from ``x`` of shape (B, C, H, W).

    Returns an array of shape (B, out_h, out_w, C * kh * kw) plus the
    output spatial dimensions.
    """
    batch, channels, height, width = x.shape
    sh, sw = stride
    out_h = (height - kh) // sh + 1
    out_w = (width - kw) // sw + 1
    shape = (batch, channels, out_h, out_w, kh, kw)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2] * sh,
        x.strides[3] * sw,
        x.strides[2],
        x.strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, out_h, out_w, channels * kh * kw
    )
    return np.ascontiguousarray(cols), out_h, out_w


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: Tuple[int, int] = (1, 1),
) -> Tensor:
    """2-D cross-correlation (convolution in the deep-learning sense).

    Parameters
    ----------
    x:
        Input of shape ``(B, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, kH, kW)``.
    bias:
        Optional ``(C_out,)`` bias.
    stride:
        Spatial stride ``(sH, sW)``.

    Returns
    -------
    Tensor of shape ``(B, C_out, H_out, W_out)``.
    """
    x = ensure_tensor(x)
    weight = ensure_tensor(weight)
    if x.ndim != 4:
        raise ValueError(f"conv2d expects 4-D input, got shape {x.shape}")
    if weight.ndim != 4:
        raise ValueError(f"conv2d expects 4-D weight, got shape {weight.shape}")
    if x.shape[1] != weight.shape[1]:
        raise ValueError(
            f"channel mismatch: input has {x.shape[1]}, weight expects {weight.shape[1]}"
        )

    c_out, c_in, kh, kw = weight.shape
    cols, out_h, out_w = _im2col(x.data, kh, kw, stride)
    w_mat = weight.data.reshape(c_out, -1)
    out = cols @ w_mat.T  # (B, out_h, out_w, C_out)
    out = out.transpose(0, 3, 1, 2)
    if bias is not None:
        out = out + bias.data.reshape(1, -1, 1, 1)

    sh, sw = stride

    def backward(g: np.ndarray):
        # g: (B, C_out, out_h, out_w)
        g_cols = g.transpose(0, 2, 3, 1)  # (B, oh, ow, C_out)
        grad_w = np.einsum("bijo,bijk->ok", g_cols, cols).reshape(weight.shape)
        grad_cols = g_cols @ w_mat  # (B, oh, ow, C_in*kh*kw)
        grad_cols = grad_cols.reshape(
            x.shape[0], out_h, out_w, c_in, kh, kw
        ).transpose(0, 3, 1, 2, 4, 5)
        grad_x = np.zeros_like(x.data)
        for i in range(kh):
            for j in range(kw):
                grad_x[
                    :, :, i : i + out_h * sh : sh, j : j + out_w * sw : sw
                ] += grad_cols[:, :, :, :, i, j]
        grads = [grad_x, grad_w]
        if bias is not None:
            grads.append(g.sum(axis=(0, 2, 3)))
        return tuple(grads)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(np.ascontiguousarray(out), parents, backward, "conv2d")


def dropout(
    x: Tensor, p: float, rng: np.random.Generator, training: bool = True
) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``p == 0``."""
    if not training or p <= 0.0:
        return ensure_tensor(x)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    x = ensure_tensor(x)
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)
