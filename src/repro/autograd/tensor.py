"""Reverse-mode automatic differentiation on numpy arrays.

This module provides the :class:`Tensor` type used throughout the
reproduction.  A ``Tensor`` wraps a ``numpy.ndarray`` and records the
operations applied to it so that :meth:`Tensor.backward` can propagate
gradients through the computation graph.

The engine is deliberately small but complete enough to train both the
spiking deterministic policy (unrolled over time with surrogate
gradients, see :mod:`repro.snn`) and the Jiang et al. EIIE convolutional
baseline (see :mod:`repro.agents.jiang`).

Design notes
------------
* Graphs are built eagerly: every differentiable operation returns a new
  ``Tensor`` holding references to its parents and a backward closure.
* Broadcasting follows numpy semantics; gradients are reduced back to the
  parent's shape with :func:`unbroadcast`.
* ``float64`` is the default dtype so that finite-difference gradient
  checking (:mod:`repro.autograd.gradcheck`) is reliable.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

Arrayish = Union["Tensor", np.ndarray, float, int, list, tuple]

_DEFAULT_DTYPE = np.float64

# ----------------------------------------------------------------------
# Global grad mode.  When disabled, Tensor._make returns plain leaf
# tensors: no parents, no backward closures, no graph — the inference
# fast path.  Thread-local so a serving thread running under no_grad()
# cannot disable graph construction in a concurrently training thread.
import threading as _threading


class _GradMode(_threading.local):
    enabled: bool = True


_grad_mode = _GradMode()


def is_grad_enabled() -> bool:
    """Whether operations currently record the autograd graph."""
    return _grad_mode.enabled


def set_grad_enabled(mode: bool) -> bool:
    """Set the global grad mode; returns the previous mode.

    Prefer the :func:`no_grad` / :func:`enable_grad` context managers,
    which restore the previous mode even when an exception escapes.
    """
    previous = _grad_mode.enabled
    _grad_mode.enabled = bool(mode)
    return previous


class _GradContext:
    """Context manager / decorator that pins the grad mode.

    Re-entrant and exception-safe: the previous mode is restored on
    exit no matter how the block terminates.
    """

    __slots__ = ("_mode", "_stack")

    def __init__(self, mode: bool):
        self._mode = mode
        self._stack: List[bool] = []

    def __enter__(self) -> "_GradContext":
        self._stack.append(set_grad_enabled(self._mode))
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        set_grad_enabled(self._stack.pop())

    def __call__(self, fn: Callable) -> Callable:
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with _GradContext(self._mode):
                return fn(*args, **kwargs)

        return wrapper


def no_grad() -> _GradContext:
    """Disable graph construction inside a ``with`` block (or decorator).

    Every operation performed under ``no_grad()`` returns a leaf tensor
    holding only the forward value — no parents, no backward closures —
    so pure-inference code (back-testing, serving) skips the per-op
    graph allocation entirely.  Nesting and exceptions are handled; the
    previous mode is always restored.
    """
    return _GradContext(False)


def enable_grad() -> _GradContext:
    """Re-enable graph construction inside a ``no_grad()`` region."""
    return _GradContext(True)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shape produced by broadcasting) back to ``shape``.

    Summing over axes that were added or stretched by numpy broadcasting
    restores the gradient of the original operand.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were prepended by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: Arrayish, dtype=_DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


def ensure_tensor(value: Arrayish) -> "Tensor":
    """Coerce ``value`` to a :class:`Tensor` (no-op if it already is one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


class Tensor:
    """A numpy-backed array that records gradients.

    Parameters
    ----------
    data:
        Array-like initial value.  Copied into ``float64`` unless an
        ndarray of floating dtype is given, in which case it is used
        as-is (views are allowed; the engine never mutates data of
        graph-internal tensors).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "_op")

    def __init__(self, data: Arrayish, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(_DEFAULT_DTYPE)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = ()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._op: str = ""

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared, do not mutate)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a tensor with exactly one element")
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing data, cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str = "",
    ) -> "Tensor":
        out = Tensor(data)
        if _grad_mode.enabled and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
            out._op = op
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: Optional[Arrayish] = None) -> None:
        """Backpropagate ``grad`` (default: ones) through the graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        topo: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo.append(node)

        visit(self)

        grads = {id(self): np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
                continue
            # Intermediate nodes can also be inspected if they were marked.
            if not node._parents:
                node._accumulate(node_grad)
                continue
            parent_grads = node._backward(node_grad)
            if parent_grads is None:
                continue
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Arrayish) -> "Tensor":
        other = ensure_tensor(other)
        data = self.data + other.data

        def backward(g: np.ndarray):
            return (unbroadcast(g, self.shape), unbroadcast(g, other.shape))

        return Tensor._make(data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray):
            return (-g,)

        return Tensor._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other: Arrayish) -> "Tensor":
        other = ensure_tensor(other)
        data = self.data - other.data

        def backward(g: np.ndarray):
            return (unbroadcast(g, self.shape), unbroadcast(-g, other.shape))

        return Tensor._make(data, (self, other), backward, "sub")

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return ensure_tensor(other).__sub__(self)

    def __mul__(self, other: Arrayish) -> "Tensor":
        other = ensure_tensor(other)
        data = self.data * other.data

        def backward(g: np.ndarray):
            return (
                unbroadcast(g * other.data, self.shape),
                unbroadcast(g * self.data, other.shape),
            )

        return Tensor._make(data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        other = ensure_tensor(other)
        data = self.data / other.data

        def backward(g: np.ndarray):
            return (
                unbroadcast(g / other.data, self.shape),
                unbroadcast(-g * self.data / (other.data ** 2), other.shape),
            )

        return Tensor._make(data, (self, other), backward, "div")

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return ensure_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        data = self.data ** exponent

        def backward(g: np.ndarray):
            return (g * exponent * self.data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward, "pow")

    def __matmul__(self, other: Arrayish) -> "Tensor":
        other = ensure_tensor(other)
        data = self.data @ other.data

        def backward(g: np.ndarray):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                ga = g * b
                gb = g * a
            elif a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                ga = unbroadcast((g[..., None, :] * b).sum(axis=-1), a.shape)
                gb = unbroadcast(a[:, None] * g[..., None, :], b.shape)
            elif b.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                ga = unbroadcast(g[..., :, None] * b, a.shape)
                gb = unbroadcast((a * g[..., :, None]).sum(axis=tuple(range(a.ndim - 1))), b.shape)
            else:
                ga = unbroadcast(g @ np.swapaxes(b, -1, -2), a.shape)
                gb = unbroadcast(np.swapaxes(a, -1, -2) @ g, b.shape)
            return (ga, gb)

        return Tensor._make(data, (self, other), backward, "matmul")

    def __rmatmul__(self, other: Arrayish) -> "Tensor":
        return ensure_tensor(other).__matmul__(self)

    # ------------------------------------------------------------------
    # Elementwise transcendental ops
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(g: np.ndarray):
            return (g * data,)

        return Tensor._make(data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(g: np.ndarray):
            return (g / self.data,)

        return Tensor._make(data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(g: np.ndarray):
            return (g * 0.5 / data,)

        return Tensor._make(data, (self,), backward, "sqrt")

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(g: np.ndarray):
            return (g * (1.0 - data ** 2),)

        return Tensor._make(data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: np.ndarray):
            return (g * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, 0.0)

        def backward(g: np.ndarray):
            return (g * mask,)

        return Tensor._make(data, (self,), backward, "relu")

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(g: np.ndarray):
            return (g * np.sign(self.data),)

        return Tensor._make(data, (self,), backward, "abs")

    def clip(self, low: Optional[float], high: Optional[float]) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = np.ones_like(self.data)
        if low is not None:
            mask = mask * (self.data >= low)
        if high is not None:
            mask = mask * (self.data <= high)

        def backward(g: np.ndarray):
            return (g * mask,)

        return Tensor._make(data, (self,), backward, "clip")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            if axis is None:
                return (np.broadcast_to(g, self.shape).copy(),)
            g_expanded = g
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                for a in sorted(axes):
                    g_expanded = np.expand_dims(g_expanded, a)
            return (np.broadcast_to(g_expanded, self.shape).copy(),)

        return Tensor._make(data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            if axis is None:
                mask = (self.data == data).astype(self.data.dtype)
                mask /= mask.sum()
                return (mask * g,)
            g_expanded = g
            d_expanded = data
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                for a in sorted(axes):
                    g_expanded = np.expand_dims(g_expanded, a)
                    d_expanded = np.expand_dims(d_expanded, a)
            mask = (self.data == d_expanded).astype(self.data.dtype)
            mask /= mask.sum(
                axis=axis if isinstance(axis, tuple) else (axis,), keepdims=True
            )
            return (mask * g_expanded,)

        return Tensor._make(data, (self,), backward, "max")

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        old_shape = self.shape

        def backward(g: np.ndarray):
            return (g.reshape(old_shape),)

        return Tensor._make(data, (self,), backward, "reshape")

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(g: np.ndarray):
            return (g.transpose(inverse),)

        return Tensor._make(data, (self,), backward, "transpose")

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(g: np.ndarray):
            out = np.zeros_like(self.data)
            np.add.at(out, index, g)
            return (out,)

        return Tensor._make(data, (self,), backward, "getitem")

    def expand_dims(self, axis: int) -> "Tensor":
        data = np.expand_dims(self.data, axis)

        def backward(g: np.ndarray):
            return (np.squeeze(g, axis=axis),)

        return Tensor._make(data, (self,), backward, "expand_dims")

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        data = np.squeeze(self.data, axis=axis)
        old_shape = self.shape

        def backward(g: np.ndarray):
            return (g.reshape(old_shape),)

        return Tensor._make(data, (self,), backward, "squeeze")

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable; return plain ndarrays)
    # ------------------------------------------------------------------
    def __gt__(self, other: Arrayish) -> np.ndarray:
        return self.data > _as_array(other)

    def __ge__(self, other: Arrayish) -> np.ndarray:
        return self.data >= _as_array(other)

    def __lt__(self, other: Arrayish) -> np.ndarray:
        return self.data < _as_array(other)

    def __le__(self, other: Arrayish) -> np.ndarray:
        return self.data <= _as_array(other)


# ----------------------------------------------------------------------
# Module-level graph ops over collections of tensors
# ----------------------------------------------------------------------
def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``, differentiable in every input."""
    tensors = [ensure_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        grads = []
        slicer: List[slice] = [slice(None)] * g.ndim
        for i in range(len(tensors)):
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(g[tuple(slicer)])
        return tuple(grads)

    return Tensor._make(data, tensors, backward, "concatenate")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``, differentiable in every input."""
    tensors = [ensure_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        pieces = np.split(g, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return Tensor._make(data, tensors, backward, "stack")


def where(condition: np.ndarray, a: Arrayish, b: Arrayish) -> Tensor:
    """Differentiable ``numpy.where`` with a boolean (non-tensor) condition."""
    a = ensure_tensor(a)
    b = ensure_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)

    def backward(g: np.ndarray):
        return (
            unbroadcast(np.where(cond, g, 0.0), a.shape),
            unbroadcast(np.where(cond, 0.0, g), b.shape),
        )

    return Tensor._make(data, (a, b), backward, "where")


def custom_op(
    inputs: Sequence[Tensor],
    forward_value: np.ndarray,
    backward_fn: Callable[[np.ndarray], Iterable[Optional[np.ndarray]]],
    name: str = "custom",
) -> Tensor:
    """Register an op with a hand-written gradient (e.g. surrogate spikes).

    Parameters
    ----------
    inputs:
        Parent tensors the gradient flows back to.
    forward_value:
        Pre-computed forward result.
    backward_fn:
        Maps the output gradient to one gradient per input (``None`` to
        skip an input).
    """
    return Tensor._make(np.asarray(forward_value), tuple(inputs), backward_fn, name)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def zeros_like(t: Tensor) -> Tensor:
    return Tensor(np.zeros_like(t.data))
