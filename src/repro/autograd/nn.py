"""Neural-network module system on top of the autograd engine.

Mirrors the familiar torch-style API (``Module``/``Parameter``/
``Linear``/``Conv2d``/``Sequential``) at the scale this reproduction
needs.  All random initialisation takes an explicit
``numpy.random.Generator`` so experiments are reproducible.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a :class:`Module`."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes;
    :meth:`parameters` walks the tree.  ``__call__`` dispatches to
    ``forward``.
    """

    def __init__(self):
        self.training = True

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- parameter traversal -------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}.{name}" if prefix else name
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{i}", item

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).items():
            pass
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- (de)serialisation ---------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every named parameter's data."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            target = params[name]
            value = np.asarray(value, dtype=target.data.dtype)
            if value.shape != target.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"expected {target.data.shape}, got {value.shape}"
                )
            target.data = value.copy()


def kaiming_uniform(
    shape: Sequence[int], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He-style uniform initialisation, the default for linear/conv layers."""
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


class Linear(Module):
    """Affine layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            kaiming_uniform((out_features, in_features), in_features, rng)
        )
        bound = 1.0 / np.sqrt(max(in_features, 1))
        self.bias = (
            Parameter(rng.uniform(-bound, bound, size=out_features)) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2-D convolution layer (cross-correlation), stride only, no padding.

    Matches the needs of the EIIE network, whose kernels always span the
    full remaining width, so padding is never required.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: Tuple[int, int],
        stride: Tuple[int, int] = (1, 1),
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = tuple(kernel_size)
        self.stride = tuple(stride)
        fan_in = in_channels * kernel_size[0] * kernel_size[1]
        self.weight = Parameter(
            kaiming_uniform((out_channels, in_channels, *kernel_size), fan_in, rng)
        )
        bound = 1.0 / np.sqrt(max(fan_in, 1))
        self.bias = (
            Parameter(rng.uniform(-bound, bound, size=out_channels)) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride})"
        )


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def __len__(self) -> int:
        return len(self.layers)
