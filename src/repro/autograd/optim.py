"""First-order optimisers for :class:`~repro.autograd.nn.Parameter` lists.

The paper trains SDP with a learning rate of ``1e-5`` (Table 2) using
gradient descent through STBP; we additionally provide Adam and RMSProp,
which the Jiang et al. baseline framework uses, plus plain SGD with
momentum for ablations.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimiser: holds parameters, applies per-step updates."""

    #: Names of per-parameter state-buffer lists a subclass carries
    #: (moments, running averages) — what :meth:`state_dict` persists.
    #: Scratch buffers are deliberately excluded: their contents never
    #: survive a step.
    _state_buffer_names: Tuple[str, ...] = ()

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self._step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        self._step_count += 1
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            self._update(i, p)

    def _update(self, index: int, param: Tensor) -> None:
        raise NotImplementedError

    # -- resumable state ------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Snapshot of the optimiser's mutable state (step counter plus
        per-parameter moment buffers).  Loading it into a same-shaped
        optimiser resumes the exact update sequence."""
        state: Dict[str, Any] = {"step_count": self._step_count}
        for name in self._state_buffer_names:
            state[name] = [buf.copy() for buf in getattr(self, name)]
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output (in-place on the buffers)."""
        self._step_count = int(state["step_count"])
        for name in self._state_buffer_names:
            buffers = getattr(self, name)
            saved = state[name]
            if len(saved) != len(buffers):
                raise ValueError(
                    f"state {name!r} has {len(saved)} buffers for "
                    f"{len(buffers)} parameters"
                )
            for buf, value in zip(buffers, saved):
                value = np.asarray(value)
                if value.shape != buf.shape:
                    raise ValueError(
                        f"state {name!r} buffer shape {value.shape} does not "
                        f"match parameter shape {buf.shape}"
                    )
                np.copyto(buf, value)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay.

    Updates run fully in place on preallocated state buffers — no array
    is allocated per step — and are bit-identical to the textbook
    out-of-place formulas (same operations, same order).
    """

    _state_buffer_names = ("_velocity",)

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]

    def _update(self, index: int, param: Tensor) -> None:
        grad = param.grad
        buf = self._scratch[index]
        if self.weight_decay:
            np.multiply(param.data, self.weight_decay, out=buf)
            np.add(grad, buf, out=buf)
            grad = buf
        if self.momentum:
            velocity = self._velocity[index]
            np.multiply(velocity, self.momentum, out=velocity)
            np.add(velocity, grad, out=velocity)
            grad = velocity
        np.multiply(grad, self.lr, out=buf)
        np.subtract(param.data, buf, out=param.data)


class RMSProp(Optimizer):
    """RMSProp (Tieleman & Hinton), used by the original EIIE code.

    In-place on preallocated buffers; bit-identical to the out-of-place
    formulation (every ufunc keeps its operand order).
    """

    _state_buffer_names = ("_square_avg",)

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float,
        alpha: float = 0.99,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.alpha = alpha
        self.eps = eps
        self.weight_decay = weight_decay
        self._square_avg = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]
        self._scratch2 = [np.empty_like(p.data) for p in self.params]

    def _update(self, index: int, param: Tensor) -> None:
        grad = param.grad
        buf, buf2 = self._scratch[index], self._scratch2[index]
        if self.weight_decay:
            np.multiply(param.data, self.weight_decay, out=buf2)
            np.add(grad, buf2, out=buf2)
            grad = buf2
        avg = self._square_avg[index]
        np.multiply(avg, self.alpha, out=avg)
        # ((1 − α) · g) · g, matching the reference's evaluation order.
        np.multiply(grad, 1.0 - self.alpha, out=buf)
        np.multiply(buf, grad, out=buf)
        np.add(avg, buf, out=avg)
        np.sqrt(avg, out=buf)
        np.add(buf, self.eps, out=buf)
        np.multiply(grad, self.lr, out=buf2)
        np.divide(buf2, buf, out=buf2)
        np.subtract(param.data, buf2, out=param.data)


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    _state_buffer_names = ("_m", "_v")

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]
        self._scratch2 = [np.empty_like(p.data) for p in self.params]
        self._scratch3 = (
            [np.empty_like(p.data) for p in self.params] if weight_decay else None
        )

    def _update(self, index: int, param: Tensor) -> None:
        """In-place Adam step, bit-identical to the out-of-place formulas."""
        grad = param.grad
        buf, buf2 = self._scratch[index], self._scratch2[index]
        if self.weight_decay:
            decayed = self._scratch3[index]
            np.multiply(param.data, self.weight_decay, out=decayed)
            np.add(grad, decayed, out=decayed)
            grad = decayed
        m = self._m[index]
        v = self._v[index]
        np.multiply(m, self.beta1, out=m)
        np.multiply(grad, 1.0 - self.beta1, out=buf)
        np.add(m, buf, out=m)
        np.multiply(v, self.beta2, out=v)
        # ((1 − β₂) · g) · g, matching the reference's evaluation order.
        np.multiply(grad, 1.0 - self.beta2, out=buf)
        np.multiply(buf, grad, out=buf)
        np.add(v, buf, out=v)
        np.divide(m, 1.0 - self.beta1 ** self._step_count, out=buf)    # m_hat
        np.divide(v, 1.0 - self.beta2 ** self._step_count, out=buf2)   # v_hat
        np.sqrt(buf2, out=buf2)
        np.add(buf2, self.eps, out=buf2)
        np.multiply(buf, self.lr, out=buf)
        np.divide(buf, buf2, out=buf)
        np.subtract(param.data, buf, out=param.data)


class GradientClipper:
    """Clip the global gradient norm of a parameter list before a step."""

    def __init__(self, max_norm: float):
        if max_norm <= 0:
            raise ValueError(f"max_norm must be positive, got {max_norm}")
        self.max_norm = max_norm

    def clip(self, params: Iterable[Tensor]) -> float:
        """Scale gradients in-place; returns the pre-clip global norm."""
        params = [p for p in params if p.grad is not None]
        total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
        if total > self.max_norm and total > 0:
            scale = self.max_norm / total
            for p in params:
                np.multiply(p.grad, scale, out=p.grad)
        return total
