"""First-order optimisers for :class:`~repro.autograd.nn.Parameter` lists.

The paper trains SDP with a learning rate of ``1e-5`` (Table 2) using
gradient descent through STBP; we additionally provide Adam and RMSProp,
which the Jiang et al. baseline framework uses, plus plain SGD with
momentum for ablations.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimiser: holds parameters, applies per-step updates."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self._step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        self._step_count += 1
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            self._update(i, p)

    def _update(self, index: int, param: Tensor) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def _update(self, index: int, param: Tensor) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            self._velocity[index] = self.momentum * self._velocity[index] + grad
            grad = self._velocity[index]
        param.data = param.data - self.lr * grad


class RMSProp(Optimizer):
    """RMSProp (Tieleman & Hinton), used by the original EIIE code."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float,
        alpha: float = 0.99,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.alpha = alpha
        self.eps = eps
        self.weight_decay = weight_decay
        self._square_avg = [np.zeros_like(p.data) for p in self.params]

    def _update(self, index: int, param: Tensor) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        avg = self._square_avg[index]
        avg *= self.alpha
        avg += (1.0 - self.alpha) * grad * grad
        param.data = param.data - self.lr * grad / (np.sqrt(avg) + self.eps)


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def _update(self, index: int, param: Tensor) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        m = self._m[index]
        v = self._v[index]
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad * grad
        m_hat = m / (1.0 - self.beta1 ** self._step_count)
        v_hat = v / (1.0 - self.beta2 ** self._step_count)
        param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class GradientClipper:
    """Clip the global gradient norm of a parameter list before a step."""

    def __init__(self, max_norm: float):
        if max_norm <= 0:
            raise ValueError(f"max_norm must be positive, got {max_norm}")
        self.max_norm = max_norm

    def clip(self, params: Iterable[Tensor]) -> float:
        """Scale gradients in-place; returns the pre-clip global norm."""
        params = [p for p in params if p.grad is not None]
        total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
        if total > self.max_norm and total > 0:
            scale = self.max_norm / total
            for p in params:
                p.grad = p.grad * scale
        return total
