"""Weight/threshold rescaling onto Loihi's integer grid (eq. (14)).

Loihi stores synaptic weights as 8-bit integers (sign + 7-bit mantissa
at the default weight exponent, giving an even-valued effective range of
±254).  Eq. (14) rescales each layer independently:

.. math::

    r^{(k)} = \\frac{w^{(k)(loihi)}_{max}}{w^{(k)}_{max}},\\qquad
    w^{(k)(loihi)} = round(r^{(k)} w^{(k)}),\\qquad
    V_{th}^{(k)(loihi)} = round(r^{(k)} V_{th})

Because LIF dynamics are scale-invariant when weights, bias, and
threshold are scaled together and spikes are binary, the per-layer
rescale preserves behaviour up to rounding error — the property the
round-trip tests in ``tests/test_loihi_quantize.py`` verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..snn.layers import SpikingLinear
from ..snn.network import SDPNetwork, SharedSDPNetwork

#: Decay factors on Loihi are 12-bit fixed point: factor = int / 4096.
DECAY_SCALE_BITS = 12
DECAY_SCALE = 1 << DECAY_SCALE_BITS


@dataclass(frozen=True)
class LoihiSpec:
    """Integer formats of the simulated chip (Loihi-1 defaults).

    Parameters
    ----------
    weight_max:
        Largest representable synaptic weight magnitude (±254 at the
        default weight exponent: 8-bit storage, even granularity).
    weight_step:
        Granularity of representable weights (2 at the default exponent).
    neurons_per_core / synapses_per_core:
        Capacity limits used by the placement report.
    num_cores:
        Neuromorphic cores per chip (128 on Loihi-1).
    """

    weight_max: int = 254
    weight_step: int = 2
    neurons_per_core: int = 1024
    synapses_per_core: int = 128 * 1024
    num_cores: int = 128

    def __post_init__(self):
        if self.weight_max <= 0 or self.weight_step <= 0:
            raise ValueError("weight_max and weight_step must be positive")
        if self.weight_max % self.weight_step != 0:
            raise ValueError("weight_max must be a multiple of weight_step")


@dataclass
class QuantizedLayer:
    """One spiking layer in chip format.

    Integer weights/bias/threshold plus the 12-bit decay factors and the
    rescale ratio needed to interpret chip quantities in float units.
    """

    weight: np.ndarray          # int32, (out, in)
    bias: np.ndarray            # int32, (out,)
    v_threshold: int
    current_decay: int          # 12-bit fixed point
    voltage_decay: int          # 12-bit fixed point
    ratio: float                # r^(k) of eq. (14)

    @property
    def in_features(self) -> int:
        return self.weight.shape[1]

    @property
    def out_features(self) -> int:
        return self.weight.shape[0]

    def dequantized_weight(self) -> np.ndarray:
        """Float weights implied by the chip integers (w / r)."""
        return self.weight.astype(np.float64) / self.ratio


def quantize_layer(layer: SpikingLinear, spec: Optional[LoihiSpec] = None) -> QuantizedLayer:
    """Apply eq. (14) to one layer.

    The rescale ratio maps the layer's largest |weight| onto the chip's
    largest representable weight; rounding then snaps to the
    ``weight_step`` grid.  Bias and threshold share the ratio so the
    spike condition is preserved.
    """
    spec = spec if spec is not None else LoihiSpec()
    w = layer.weight.data
    w_max = float(np.abs(w).max())
    if w_max == 0.0:
        ratio = 1.0
    else:
        ratio = spec.weight_max / w_max
    step = spec.weight_step
    w_int = np.round(ratio * w / step).astype(np.int64) * step
    w_int = np.clip(w_int, -spec.weight_max, spec.weight_max).astype(np.int32)
    b_int = np.round(ratio * layer.bias.data).astype(np.int32)
    vth_int = int(round(ratio * layer.lif.v_threshold))
    if vth_int <= 0:
        raise ValueError(
            "quantized threshold collapsed to zero; weights are too small "
            "relative to the threshold for 8-bit mapping"
        )
    return QuantizedLayer(
        weight=w_int,
        bias=b_int,
        v_threshold=vth_int,
        current_decay=int(round(layer.lif.current_decay * DECAY_SCALE)),
        voltage_decay=int(round(layer.lif.voltage_decay * DECAY_SCALE)),
        ratio=ratio,
    )


@dataclass
class QuantizedNetwork:
    """Chip-format SDP: quantized layers + float encoder/decoder params.

    Encoding happens off-chip (the embedded host injects input spikes)
    and the rate decoder is a read-out, so both stay in float — exactly
    the Loihi deployment split of Tang et al. / the paper's Fig. 2.

    ``kind`` selects the read-out semantics: ``"population"`` for the
    monolithic Algorithm-1 network (N populations → softmax), or
    ``"shared"`` for the weight-shared per-asset scorer (scalar score
    per asset + cash bias → softmax across assets).
    """

    layers: List[QuantizedLayer]
    decoder_weight: np.ndarray
    decoder_bias: np.ndarray
    timesteps: int
    kind: str = "population"
    cash_bias: float = 0.0

    @property
    def num_neurons(self) -> int:
        return sum(layer.out_features for layer in self.layers)

    @property
    def num_synapses(self) -> int:
        return sum(layer.weight.size for layer in self.layers)


def quantize_network(network, spec: Optional[LoihiSpec] = None) -> QuantizedNetwork:
    """Quantize every spiking layer of an SDP network (eq. (14)).

    Accepts either :class:`~repro.snn.network.SDPNetwork` or
    :class:`~repro.snn.network.SharedSDPNetwork`.
    """
    spec = spec if spec is not None else LoihiSpec()
    layers = [quantize_layer(layer, spec) for layer in network.stack.layers]
    if isinstance(network, SharedSDPNetwork):
        return QuantizedNetwork(
            layers=layers,
            decoder_weight=network.readout_weight.data.copy()[None, :],
            decoder_bias=network.readout_bias.data.copy(),
            timesteps=network.config.timesteps,
            kind="shared",
            cash_bias=float(network.cash_bias.data[0]),
        )
    if isinstance(network, SDPNetwork):
        return QuantizedNetwork(
            layers=layers,
            decoder_weight=network.decoder.weight.data.copy(),
            decoder_bias=network.decoder.bias.data.copy(),
            timesteps=network.config.timesteps,
            kind="population",
        )
    raise TypeError(f"cannot quantize network of type {type(network).__name__}")


@dataclass(frozen=True)
class PlacementReport:
    """How the network maps onto chip cores (capacity accounting)."""

    cores_used: int
    neurons: int
    synapses: int
    neuron_utilization: float
    synapse_utilization: float

    def fits(self) -> bool:
        return self.neuron_utilization <= 1.0 and self.synapse_utilization <= 1.0


def placement(net: QuantizedNetwork, spec: Optional[LoihiSpec] = None) -> PlacementReport:
    """Greedy capacity check: cores needed for neurons and synapses."""
    spec = spec if spec is not None else LoihiSpec()
    neuron_cores = int(np.ceil(net.num_neurons / spec.neurons_per_core))
    synapse_cores = int(np.ceil(net.num_synapses / spec.synapses_per_core))
    cores = max(neuron_cores, synapse_cores, 1)
    return PlacementReport(
        cores_used=cores,
        neurons=net.num_neurons,
        synapses=net.num_synapses,
        neuron_utilization=net.num_neurons / (spec.num_cores * spec.neurons_per_core),
        synapse_utilization=net.num_synapses / (spec.num_cores * spec.synapses_per_core),
    )
