"""Loihi substrate: eq. (14) quantization, fixed-point core simulation,
energy/latency device models (Table 4), and the deployment pipeline
(Fig. 2)."""

from .core import ChipActivity, LoihiCoreSimulator
from .deploy import AgreementReport, LoihiDeployment, deploy
from .energy import (
    EnergyReport,
    LoihiDeviceModel,
    VonNeumannDeviceModel,
    energy_reduction_ratio,
    paper_cpu_model,
    paper_gpu_model,
    paper_loihi_model,
)
from .quantize import (
    DECAY_SCALE,
    LoihiSpec,
    PlacementReport,
    QuantizedLayer,
    QuantizedNetwork,
    placement,
    quantize_layer,
    quantize_network,
)

__all__ = [
    "AgreementReport",
    "ChipActivity",
    "DECAY_SCALE",
    "EnergyReport",
    "LoihiCoreSimulator",
    "LoihiDeployment",
    "LoihiDeviceModel",
    "LoihiSpec",
    "PlacementReport",
    "QuantizedLayer",
    "QuantizedNetwork",
    "VonNeumannDeviceModel",
    "deploy",
    "energy_reduction_ratio",
    "paper_cpu_model",
    "paper_gpu_model",
    "paper_loihi_model",
    "placement",
    "quantize_layer",
    "quantize_network",
]
