"""Behavioural fixed-point simulator of the neuromorphic chip.

Executes a :class:`~repro.loihi.quantize.QuantizedNetwork` with pure
integer arithmetic, mirroring Loihi's compartment dynamics:

* synaptic current: ``c ← (c · dc) >> 12  +  W_int · spikes + b_int``
* membrane voltage: ``v ← ((v · dv) >> 12) · (1 − o_prev) + c``
* spike: ``o = 1[v > vth_int]`` with hard reset via the ``(1−o)`` gate

which is the integer image of Algorithm 1's float dynamics under the
eq. (14) rescale.  The simulator also counts spike and synaptic-op
events, which drive the energy model of :mod:`repro.loihi.energy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..snn.encoding import PopulationEncoder
from ..snn.network import ActivityRecord
from .quantize import DECAY_SCALE_BITS, QuantizedNetwork


@dataclass
class ChipActivity:
    """Event counts of one on-chip inference batch."""

    timesteps: int
    batch_size: int
    input_spikes: float
    layer_spikes: List[float]
    synaptic_ops: List[float]
    neuron_updates: List[float]

    def to_activity_record(self) -> ActivityRecord:
        return ActivityRecord(
            timesteps=self.timesteps,
            batch_size=self.batch_size,
            input_spikes=self.input_spikes,
            layer_spikes=list(self.layer_spikes),
            synaptic_ops=list(self.synaptic_ops),
            neuron_updates=list(self.neuron_updates),
        )


class LoihiCoreSimulator:
    """Integer-dynamics executor for a quantized SDP network.

    Parameters
    ----------
    network:
        The eq.-(14)-quantized network.
    encoder:
        The float population encoder (runs on the embedded host; its
        output spikes are injected into the chip).
    """

    def __init__(self, network: QuantizedNetwork, encoder: PopulationEncoder):
        self.network = network
        self.encoder = encoder
        expected = network.layers[0].in_features
        if encoder.config.num_neurons != expected:
            raise ValueError(
                f"encoder emits {encoder.config.num_neurons} spike lines, "
                f"first layer expects {expected}"
            )

    # ------------------------------------------------------------------
    def run(
        self, states: np.ndarray, timesteps: Optional[int] = None
    ) -> Tuple[np.ndarray, ChipActivity]:
        """Execute inference; returns (actions, event counts).

        ``states``: (batch, state_dim) float observations.
        """
        timesteps = timesteps if timesteps is not None else self.network.timesteps
        states = np.asarray(states, dtype=np.float64)
        n_assets = None
        if self.network.kind == "shared":
            # Shared scorer: states are (batch, assets, features); every
            # asset runs through the same chip cores.
            if states.ndim == 2:
                states = states[None]
            if states.ndim != 3:
                raise ValueError(
                    "shared networks expect (batch, assets, features) states"
                )
            outer_batch, n_assets, d = states.shape
            states = states.reshape(outer_batch * n_assets, d)
        else:
            states = np.atleast_2d(states)
        batch = states.shape[0]
        spike_trains = self.encoder.encode(states, timesteps)

        layers = self.network.layers
        currents = [np.zeros((batch, l.out_features), dtype=np.int64) for l in layers]
        voltages = [np.zeros((batch, l.out_features), dtype=np.int64) for l in layers]
        prev_spikes = [np.zeros((batch, l.out_features), dtype=np.int64) for l in layers]

        sum_out = np.zeros((batch, layers[-1].out_features), dtype=np.int64)
        layer_spikes = [0.0] * len(layers)
        synaptic_ops = [0.0] * len(layers)
        input_total = 0.0

        for t in range(timesteps):
            spikes = spike_trains[t].astype(np.int64)
            input_total += float(spikes.sum())
            for k, layer in enumerate(layers):
                synaptic_ops[k] += float(spikes.sum()) * layer.out_features
                drive = spikes @ layer.weight.T.astype(np.int64) + layer.bias
                currents[k] = (
                    (currents[k] * layer.current_decay) >> DECAY_SCALE_BITS
                ) + drive
                decayed = (voltages[k] * layer.voltage_decay) >> DECAY_SCALE_BITS
                voltages[k] = decayed * (1 - prev_spikes[k]) + currents[k]
                spikes = (voltages[k] > layer.v_threshold).astype(np.int64)
                prev_spikes[k] = spikes
                layer_spikes[k] += float(spikes.sum())
            sum_out += spikes

        if self.network.kind == "shared":
            actions = self._decode_shared(sum_out, timesteps, n_assets)
            batch = batch // n_assets  # one inference covers all assets
        else:
            actions = self._decode(sum_out, timesteps)
        activity = ChipActivity(
            timesteps=timesteps,
            batch_size=batch,
            input_spikes=input_total,
            layer_spikes=layer_spikes,
            synaptic_ops=synaptic_ops,
            neuron_updates=[
                float(l.out_features * timesteps * batch) for l in layers
            ],
        )
        return actions, activity

    # ------------------------------------------------------------------
    def _decode(self, sum_spikes: np.ndarray, timesteps: int) -> np.ndarray:
        """Float read-out (eqs. (8)-(10)), executed on the host."""
        w = self.network.decoder_weight  # (N, P)
        b = self.network.decoder_bias
        n_actions, pop = w.shape
        rates = sum_spikes.astype(np.float64) / timesteps
        rates = rates.reshape(rates.shape[0], n_actions, pop)
        logits = (rates * w[None]).sum(axis=2) + b
        logits -= logits.max(axis=1, keepdims=True)
        temp = np.exp(logits)
        return temp / temp.sum(axis=1, keepdims=True)

    def _decode_shared(
        self, sum_spikes: np.ndarray, timesteps: int, n_assets: int
    ) -> np.ndarray:
        """Shared read-out: scalar score per asset, cash bias, softmax."""
        w = self.network.decoder_weight[0]  # (P,)
        b = float(self.network.decoder_bias[0])
        rates = sum_spikes.astype(np.float64) / timesteps
        scores = rates @ w + b  # (B*A,)
        scores = scores.reshape(-1, n_assets)
        logits = np.concatenate(
            [np.full((scores.shape[0], 1), self.network.cash_bias), scores],
            axis=1,
        )
        logits -= logits.max(axis=1, keepdims=True)
        temp = np.exp(logits)
        return temp / temp.sum(axis=1, keepdims=True)

    def act(self, state: np.ndarray, timesteps: Optional[int] = None) -> np.ndarray:
        """Single-state convenience wrapper."""
        if self.network.kind == "shared":
            actions, _ = self.run(np.asarray(state)[None], timesteps)
        else:
            actions, _ = self.run(np.atleast_2d(state), timesteps)
        return actions[0]
