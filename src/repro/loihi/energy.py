"""Power, energy, and latency models for Table 4.

The paper measures power with onboard sensors (powerstat for the
Core i7-7500 CPU, nvidia-smi for the Tesla K80 GPU, an energy probe for
Loihi) and reports idle watts, dynamic watts, inferences per second, and
energy per inference.  Without the physical devices we model each one
explicitly:

* **Loihi** — event-driven: dynamic energy = Σ events × per-event
  energy, with per-event figures from the published Loihi
  characterisation (Davies et al., IEEE Micro 2018): ≈23.6 pJ per
  synaptic operation, ≈81 pJ per neuron compartment update, ≈1.7 nJ for
  injecting a spike from the host.  Latency = per-algorithmic-timestep
  barrier time × T plus host I/O.
* **CPU/GPU** — clock-driven: dynamic energy = dynamic power ×
  inference time; inference time = MACs / effective throughput + a
  per-inference host/framework overhead (which dominates at this model
  size, matching the ≈1–2 inf/s of Table 4).

Idle/dynamic watts default to the paper's measured values, so the
reproduction shares Table 4's operating points and differs only where
the paper's arithmetic is internally inconsistent (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..snn.network import ActivityRecord

# Published Loihi per-event energies (Davies et al. 2018), joules.
SYNOP_ENERGY_J = 23.6e-12
NEURON_UPDATE_ENERGY_J = 81.0e-12
SPIKE_INJECTION_ENERGY_J = 1.7e-9
# Per-algorithmic-timestep wall time on Loihi for a network of this
# size (barrier-synchronised), seconds.
TIMESTEP_TIME_S = 8.0e-6


@dataclass(frozen=True)
class EnergyReport:
    """Power/latency summary of one (device, workload) pair: a Table 4 row."""

    device: str
    idle_power_w: float
    dynamic_power_w: float
    inferences_per_s: float
    energy_per_inference_j: float

    @property
    def nj_per_inference(self) -> float:
        """Dynamic energy per inference in nanojoules (Table 4's column)."""
        return self.energy_per_inference_j * 1e9

    def as_row(self) -> Dict[str, float]:
        return {
            "Idle(W)": self.idle_power_w,
            "Dyn(W)": self.dynamic_power_w,
            "Inf/s": self.inferences_per_s,
            "nJ/Inf": self.nj_per_inference,
        }


@dataclass(frozen=True)
class LoihiDeviceModel:
    """Event-driven energy/latency model of the Loihi chip.

    ``idle_power_w`` defaults to the paper's measured 1.01 W (whole
    board).  ``host_io_s`` is the per-inference host↔chip round trip,
    calibrated so throughput matches Table 4's ≈1 inf/s at T=5 (the
    pipeline, not the chip, is the bottleneck at this model size).
    """

    idle_power_w: float = 1.01
    synop_energy_j: float = SYNOP_ENERGY_J
    neuron_update_energy_j: float = NEURON_UPDATE_ENERGY_J
    spike_injection_energy_j: float = SPIKE_INJECTION_ENERGY_J
    timestep_time_s: float = TIMESTEP_TIME_S
    host_io_s: float = 0.96

    def dynamic_energy_per_inference(self, activity: ActivityRecord) -> float:
        """Joules of event-driven work for one inference."""
        per_inf = activity.per_inference()
        return (
            per_inf.total_synops * self.synop_energy_j
            + per_inf.total_neuron_updates * self.neuron_update_energy_j
            + per_inf.input_spikes * self.spike_injection_energy_j
        )

    def inference_time_s(self, timesteps: int) -> float:
        return self.host_io_s + timesteps * self.timestep_time_s

    def report(self, activity: ActivityRecord, name: str = "Loihi") -> EnergyReport:
        energy = self.dynamic_energy_per_inference(activity)
        t_inf = self.inference_time_s(activity.timesteps)
        return EnergyReport(
            device=name,
            idle_power_w=self.idle_power_w,
            dynamic_power_w=energy / t_inf,
            inferences_per_s=1.0 / t_inf,
            energy_per_inference_j=energy,
        )


@dataclass(frozen=True)
class VonNeumannDeviceModel:
    """Clock-driven CPU/GPU model.

    ``effective_macs_per_s`` is sustained throughput on this workload
    (small batch-1 model → far below peak).  ``overhead_s`` is the
    per-inference framework/data-pipeline time that dominates the ≈1–2
    inf/s of Table 4.
    """

    name: str
    idle_power_w: float
    dynamic_power_w: float
    effective_macs_per_s: float
    overhead_s: float

    def __post_init__(self):
        if self.effective_macs_per_s <= 0:
            raise ValueError("effective_macs_per_s must be positive")
        if self.overhead_s < 0:
            raise ValueError("overhead_s must be non-negative")

    def inference_time_s(self, macs: int) -> float:
        return self.overhead_s + macs / self.effective_macs_per_s

    def compute_time_s(self, macs: int) -> float:
        """Time the device is actually busy computing (energy-relevant)."""
        return macs / self.effective_macs_per_s

    def report(self, macs: int) -> EnergyReport:
        """Table 4 row for this device.

        Energy per inference is *dynamic compute* energy — dynamic power
        times busy time — matching the paper's energy-cost-per-inference
        methodology ("dividing the energy consumed per second by the
        number of inferences performed per second" at the compute rate);
        the data-pipeline overhead affects throughput but draws idle
        power only.
        """
        t_inf = self.inference_time_s(macs)
        return EnergyReport(
            device=self.name,
            idle_power_w=self.idle_power_w,
            dynamic_power_w=self.dynamic_power_w,
            inferences_per_s=1.0 / t_inf,
            energy_per_inference_j=self.dynamic_power_w * self.compute_time_s(macs),
        )


def paper_cpu_model(experiment: int = 1) -> VonNeumannDeviceModel:
    """Core i7-7500 at the paper's measured operating points.

    Idle/dynamic watts are Table 4's per-experiment measurements;
    overhead is calibrated to reproduce the reported inf/s.
    """
    measured = {
        1: (7.98, 24.02, 2.09),
        2: (9.09, 22.91, 1.60),
        3: (8.69, 23.31, 2.02),
    }
    idle, dyn, inf_s = measured[experiment]
    # Effective batch-1 throughput of a small CNN under a Python
    # framework: ~1e8 MAC/s sustained (interpreter + memory bound, far
    # below the chip's peak), consistent with the paper's measured
    # CPU-vs-Loihi energy ratio band (≈187–243×).
    return VonNeumannDeviceModel(
        name="CPU (i7-7500)",
        idle_power_w=idle,
        dynamic_power_w=dyn,
        effective_macs_per_s=1.2e8,
        overhead_s=1.0 / inf_s,
    )


def paper_gpu_model(experiment: int = 1) -> VonNeumannDeviceModel:
    """Tesla K80 at the paper's measured operating points."""
    measured = {
        1: (100.80, 29.15, 1.23),
        2: (100.25, 29.66, 1.09),
        3: (106.03, 24.33, 1.07),
    }
    idle, dyn, inf_s = measured[experiment]
    # Batch-1 inference on a K80 is kernel-launch dominated: tens of µs
    # per kernel across several layers leaves ~5e7 MAC/s effective —
    # slower busy-time than the CPU for a model this small, which is
    # exactly why Table 4's GPU energy per inference exceeds the CPU's
    # (≈516–580× the Loihi figure).
    return VonNeumannDeviceModel(
        name="GPU (Tesla K80)",
        idle_power_w=idle,
        dynamic_power_w=dyn,
        effective_macs_per_s=5.6e7,
        overhead_s=1.0 / inf_s,
    )


def paper_loihi_model(experiment: int = 1) -> LoihiDeviceModel:
    """Loihi at the paper's measured operating points (inf/s column)."""
    measured_inf_s = {1: 1.04, 2: 0.82, 3: 1.01}
    t = 1.0 / measured_inf_s[experiment]
    return LoihiDeviceModel(host_io_s=t - 5 * TIMESTEP_TIME_S)


def energy_reduction_ratio(
    baseline: EnergyReport, proposed: EnergyReport
) -> float:
    """Paper-style "Nx less energy per inference" headline ratio."""
    if proposed.energy_per_inference_j <= 0:
        raise ValueError("proposed energy must be positive")
    return baseline.energy_per_inference_j / proposed.energy_per_inference_j
