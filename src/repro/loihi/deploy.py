"""Deployment pipeline: trained SDP → quantize → verify → profile (Fig. 2).

``deploy()`` reproduces the paper's §II.D flow: rescale weights and
thresholds onto the chip grid (eq. (14)), place the network on cores,
and return a :class:`LoihiDeployment` whose ``act`` runs the integer
core simulator.  ``agreement`` quantifies float-vs-chip fidelity and
``profile`` produces the Loihi rows of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..snn.network import SDPNetwork
from .core import ChipActivity, LoihiCoreSimulator
from .energy import EnergyReport, LoihiDeviceModel
from .quantize import LoihiSpec, PlacementReport, QuantizedNetwork, placement, quantize_network


@dataclass
class AgreementReport:
    """Fidelity of the quantized policy versus the float policy."""

    mean_l1_action_error: float
    max_l1_action_error: float
    argmax_agreement: float
    num_states: int


class LoihiDeployment:
    """A trained SDP policy running on the simulated chip."""

    def __init__(
        self,
        network: SDPNetwork,
        spec: Optional[LoihiSpec] = None,
        device: Optional[LoihiDeviceModel] = None,
    ):
        self.spec = spec if spec is not None else LoihiSpec()
        self.device = device if device is not None else LoihiDeviceModel()
        self.float_network = network
        self.quantized: QuantizedNetwork = quantize_network(network, self.spec)
        self.placement: PlacementReport = placement(self.quantized, self.spec)
        if not self.placement.fits():
            raise ValueError(
                f"network does not fit on one chip: {self.placement}"
            )
        self.simulator = LoihiCoreSimulator(self.quantized, network.encoder)

    # ------------------------------------------------------------------
    def act(self, state: np.ndarray, timesteps: Optional[int] = None) -> np.ndarray:
        """Chip-format inference for a single state."""
        return self.simulator.act(state, timesteps)

    def run(
        self, states: np.ndarray, timesteps: Optional[int] = None
    ) -> Tuple[np.ndarray, ChipActivity]:
        return self.simulator.run(states, timesteps)

    # ------------------------------------------------------------------
    def agreement(self, states: np.ndarray) -> AgreementReport:
        """Compare chip actions against the float network on ``states``."""
        states = np.atleast_2d(states)
        chip_actions, _ = self.simulator.run(states)
        float_actions = self.float_network.forward(states).data
        l1 = np.abs(chip_actions - float_actions).sum(axis=1)
        agree = (
            np.argmax(chip_actions, axis=1) == np.argmax(float_actions, axis=1)
        ).mean()
        return AgreementReport(
            mean_l1_action_error=float(l1.mean()),
            max_l1_action_error=float(l1.max()),
            argmax_agreement=float(agree),
            num_states=states.shape[0],
        )

    def profile(
        self, states: np.ndarray, name: str = "Loihi", timesteps: Optional[int] = None
    ) -> EnergyReport:
        """Energy/latency report over a representative state batch."""
        _, activity = self.simulator.run(np.atleast_2d(states), timesteps)
        return self.device.report(activity.to_activity_record(), name=name)


def deploy(
    network: SDPNetwork,
    spec: Optional[LoihiSpec] = None,
    device: Optional[LoihiDeviceModel] = None,
) -> LoihiDeployment:
    """Quantize and place a trained SDP network on the simulated chip."""
    return LoihiDeployment(network, spec=spec, device=device)
