"""Market regime model for the synthetic cryptocurrency market.

The paper evaluates on Poloniex data from 2016-08 to 2021-08.  That
span has a very characteristic regime structure — the 2017 bull mania,
the 2018 "crypto winter", the 2019 recovery, the 2020-03 COVID crash,
the 2020–2021 bull run, and the 2021-05 crash — and the relative
performance of the strategies in Table 3 depends on it (e.g. the huge
fAPV of experiment 1 reflects a strongly trending back-test window).

We therefore model the market factor as a *calendar-scheduled* regime
process: a piecewise schedule assigns each date a :class:`Regime` with
annualised drift/volatility, jump intensity, and a volume multiplier.
The default schedule below encodes the 2016–2021 crypto narrative; it
is data the generator consumes, not behaviour, so tests can supply
their own schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from typing import List, Sequence, Tuple

import numpy as np

SECONDS_PER_YEAR = 365.25 * 24 * 3600


def parse_date(text: str) -> int:
    """Parse ``YYYY/MM/DD`` or ``YYYY-MM-DD`` into a UTC epoch second."""
    normalized = text.replace("/", "-")
    dt = datetime.strptime(normalized, "%Y-%m-%d").replace(tzinfo=timezone.utc)
    return int(dt.timestamp())


def format_date(epoch: int) -> str:
    return datetime.fromtimestamp(int(epoch), tz=timezone.utc).strftime("%Y/%m/%d")


@dataclass(frozen=True)
class Regime:
    """Market-factor dynamics of one regime.

    Parameters
    ----------
    name:
        Human-readable label ("bull", "crash", ...).
    drift:
        Annualised log-drift of the market factor.
    volatility:
        Annualised volatility of the market factor.
    jump_rate:
        Expected number of jump events per year.
    jump_scale:
        Standard deviation of a jump's log-return contribution.
    jump_bias:
        Mean of the jump log-return (negative for crash regimes).
    volume_multiplier:
        Scales traded volume (manias trade more).
    alt_bias:
        Annualised drift applied to coins in proportion to their
        ``alt_loading``: the cross-sectional "alt season" /
        "BTC dominance" cycle (alts mooned in 2017 and early 2021 but
        bled against BTC through 2019).
    """

    name: str
    drift: float
    volatility: float
    jump_rate: float = 12.0
    jump_scale: float = 0.03
    jump_bias: float = 0.0
    volume_multiplier: float = 1.0
    alt_bias: float = 0.0

    def __post_init__(self):
        if self.volatility <= 0:
            raise ValueError(f"volatility must be positive, got {self.volatility}")
        if self.jump_rate < 0 or self.jump_scale < 0:
            raise ValueError("jump parameters must be non-negative")
        if self.volume_multiplier <= 0:
            raise ValueError("volume_multiplier must be positive")


# Canonical regimes used by the default calendar.
SIDEWAYS = Regime("sideways", drift=0.10, volatility=0.55, volume_multiplier=0.8)
BULL = Regime("bull", drift=1.80, volatility=0.75, jump_bias=0.01, volume_multiplier=1.6)
#: 2019-style "BTC dominance" bull: the market factor rallies while alts
#: bleed against it (alt season is over).
BULL_BTC = Regime(
    "btc-bull", drift=2.20, volatility=0.80, jump_bias=0.01,
    volume_multiplier=1.8, alt_bias=-2.8,
)
MANIA = Regime(
    "mania", drift=3.60, volatility=1.05, jump_rate=24.0, jump_bias=0.02,
    volume_multiplier=3.0, alt_bias=1.5,
)
BEAR = Regime(
    "bear", drift=-1.20, volatility=0.85, jump_bias=-0.01,
    volume_multiplier=1.1, alt_bias=-0.8,
)
CRASH = Regime(
    "crash", drift=-6.00, volatility=1.60, jump_rate=60.0, jump_scale=0.06,
    jump_bias=-0.03, volume_multiplier=2.5, alt_bias=-1.5,
)
RECOVERY = Regime("recovery", drift=1.20, volatility=0.70, volume_multiplier=1.2)


class RegimeSchedule:
    """Piecewise-constant calendar of regimes.

    Parameters
    ----------
    segments:
        Sequence of ``(start_date, regime)`` pairs, ordered by date.
        Each regime applies from its start date until the next
        segment's start (the last one applies indefinitely).
    """

    def __init__(self, segments: Sequence[Tuple[str, Regime]]):
        if not segments:
            raise ValueError("schedule requires at least one segment")
        starts = [parse_date(date) for date, _ in segments]
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ValueError("schedule segments must be strictly increasing in time")
        self._starts = np.asarray(starts, dtype=np.int64)
        self._regimes: List[Regime] = [regime for _, regime in segments]

    def regime_at(self, epoch: int) -> Regime:
        """Regime in force at ``epoch`` (UTC seconds)."""
        idx = int(np.searchsorted(self._starts, epoch, side="right")) - 1
        idx = max(idx, 0)
        return self._regimes[idx]

    def lookup(self, epochs: np.ndarray) -> List[Regime]:
        """Vectorised regime lookup for an array of epochs."""
        idx = np.searchsorted(self._starts, np.asarray(epochs), side="right") - 1
        idx = np.clip(idx, 0, len(self._regimes) - 1)
        return [self._regimes[i] for i in idx]

    def parameter_arrays(self, epochs: np.ndarray) -> dict:
        """Per-period parameter vectors for the generator hot loop."""
        regimes = self.lookup(epochs)
        return {
            "drift": np.array([r.drift for r in regimes]),
            "volatility": np.array([r.volatility for r in regimes]),
            "jump_rate": np.array([r.jump_rate for r in regimes]),
            "jump_scale": np.array([r.jump_scale for r in regimes]),
            "jump_bias": np.array([r.jump_bias for r in regimes]),
            "volume_multiplier": np.array([r.volume_multiplier for r in regimes]),
            "alt_bias": np.array([r.alt_bias for r in regimes]),
        }

    @property
    def regimes(self) -> List[Regime]:
        return list(self._regimes)

    # -- evaluation-side labeling --------------------------------------
    def labels(self, epochs: np.ndarray) -> List[str]:
        """Regime *names* for an array of epochs (evaluation labeling)."""
        return [r.name for r in self.lookup(epochs)]

    def segments(self, epochs: np.ndarray) -> List[Tuple[str, int, int]]:
        """Contiguous same-regime runs over ``epochs``.

        Returns ``(name, start, stop)`` triples where ``epochs[start:stop]``
        all fall in the named regime.  Consecutive runs share a boundary
        index; the walk-forward evaluator uses them to attribute each
        back-test period to the regime it traded through.
        """
        epochs = np.asarray(epochs)
        if epochs.size == 0:
            return []
        names = self.labels(epochs)
        out: List[Tuple[str, int, int]] = []
        start = 0
        for i in range(1, len(names)):
            if names[i] != names[start]:
                out.append((names[start], start, i))
                start = i
        out.append((names[start], start, len(names)))
        return out


def default_crypto_schedule() -> RegimeSchedule:
    """The 2016–2021 cryptocurrency market narrative.

    Calibrated qualitatively: strong 2017 mania, deep 2018 winter,
    2019 recovery (experiment 1's back-test window 2019/04–2019/08 sits
    in a bull leg), the 2020-03 COVID crash inside experiment 2's
    training span with a recovering back-test (2020/04–2020/08), and the
    2020–21 run-up with the 2021-05 crash inside experiment 3's
    back-test (2021/04–2021/08).
    """
    return RegimeSchedule(
        [
            ("2016/01/01", SIDEWAYS),
            ("2016/10/01", BULL),
            ("2017/04/01", MANIA),
            ("2018/01/08", CRASH),
            ("2018/02/15", BEAR),
            ("2018/12/15", SIDEWAYS),
            ("2019/04/01", BULL_BTC),
            ("2019/07/10", SIDEWAYS),
            ("2019/10/01", BEAR),
            ("2020/01/01", RECOVERY),
            ("2020/03/08", CRASH),
            ("2020/04/01", RECOVERY),
            ("2020/10/01", BULL),
            ("2021/01/01", MANIA),
            ("2021/05/12", CRASH),
            ("2021/06/01", BEAR),
        ]
    )
