"""Feed validation and repair for OHLCV panels.

:func:`validate_panel` is the data plane's airlock: raw panels — from
the generator, the simulated exchange, or a fault-injected feed — pass
through it before anything downstream consumes them.  It detects the
anomalies a real candle feed produces (NaN prices, zero/negative
prices, OHLC inconsistencies, missing candles, duplicated timestamps,
stale repeated rows) and either refuses the panel (``raise``), drops
the affected periods (``drop``), or repairs them in place with flat
forward-filled candles (``ffill``), returning the structured
:class:`AnomalyReport` that tells operators exactly what the feed did.

The healthy path is the invariant that matters: a clean panel is
returned **as the same object** with an empty report — zero copies,
bit-identical to never having called the validator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

import numpy as np

from .market import MarketData, unvalidated_market

__all__ = ["AnomalyReport", "DataAnomalyError", "REPAIR_POLICIES", "validate_panel"]

REPAIR_POLICIES = ("raise", "drop", "ffill")

# Detail lists are capped so a catastrophically bad feed produces a
# readable report, not a megabyte of indices.
_MAX_DETAIL = 32


class DataAnomalyError(ValueError):
    """A panel failed validation under the ``raise`` policy.

    ``report`` carries the full :class:`AnomalyReport` so callers can
    log what was wrong without re-validating.
    """

    def __init__(self, message: str, report: "AnomalyReport"):
        super().__init__(message)
        self.report = report


@dataclass
class AnomalyReport:
    """What :func:`validate_panel` found (and did) in one panel.

    Counts are in the *input* panel's coordinates; ``rows_in`` /
    ``rows_out`` summarise the shape change a repair made.  ``stale_rows``
    is advisory: an exact all-asset repeat of the previous candle is
    suspicious in a liquid market but not provably wrong, so it is
    counted and never repaired.
    """

    policy: str = "raise"
    rows_in: int = 0
    rows_out: int = 0
    nan_cells: int = 0
    nonpositive_cells: int = 0
    inconsistent_cells: int = 0
    missing_rows: int = 0
    duplicate_rows: int = 0
    misaligned_rows: int = 0
    stale_rows: int = 0
    repaired_cells: int = 0
    dropped_rows: int = 0
    detail: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def total_anomalies(self) -> int:
        """Hard anomalies only — stale rows are advisory."""
        return (
            self.nan_cells
            + self.nonpositive_cells
            + self.inconsistent_cells
            + self.missing_rows
            + self.duplicate_rows
            + self.misaligned_rows
        )

    @property
    def clean(self) -> bool:
        return self.total_anomalies == 0

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "nan_cells": self.nan_cells,
            "nonpositive_cells": self.nonpositive_cells,
            "inconsistent_cells": self.inconsistent_cells,
            "missing_rows": self.missing_rows,
            "duplicate_rows": self.duplicate_rows,
            "misaligned_rows": self.misaligned_rows,
            "stale_rows": self.stale_rows,
            "repaired_cells": self.repaired_cells,
            "dropped_rows": self.dropped_rows,
            "total_anomalies": self.total_anomalies,
            "clean": self.clean,
            "detail": {k: list(v) for k, v in self.detail.items()},
        }

    def _note(self, kind: str, index: int) -> None:
        rows = self.detail.setdefault(kind, [])
        if len(rows) < _MAX_DETAIL:
            rows.append(int(index))


def validate_panel(
    data: MarketData, policy: str = "raise"
) -> Tuple[MarketData, AnomalyReport]:
    """Validate (and under a repair policy, fix) one OHLCV panel.

    Parameters
    ----------
    data:
        The panel to check — typically built through
        :func:`~repro.data.market.unvalidated_market` by a feed path
        that cannot trust its input.  Already-valid panels are fine.
    policy:
        ``"raise"`` — raise :class:`DataAnomalyError` on any hard
        anomaly.  ``"drop"`` — remove every anomalous period and
        re-stamp the survivors contiguously from the first kept
        timestamp (index-space compaction: downstream consumers see a
        shorter, clean panel).  ``"ffill"`` — reconstruct the full
        timeline; anomalous cells and missing candles become flat
        zero-volume candles at the previous close (per asset).

    Returns
    -------
    ``(panel, report)`` — on a clean input the *same* panel object and
    an all-zero report, so the healthy path is bit-identical to never
    validating.
    """
    if policy not in REPAIR_POLICIES:
        raise ValueError(
            f"unknown repair policy {policy!r}; expected one of "
            f"{'/'.join(REPAIR_POLICIES)}"
        )
    report = AnomalyReport(policy=policy, rows_in=data.n_periods)
    n, m = data.close.shape
    if n == 0 or m == 0:
        raise DataAnomalyError("empty panel", report)
    period = int(data.period_seconds)
    ts = np.asarray(data.timestamps, dtype=np.int64)

    # -- timeline reconstruction --------------------------------------
    # Map every input row onto the canonical grid anchored at the first
    # timestamp.  Duplicates keep their first occurrence; rows off the
    # grid are unusable; grid slots nobody filled are missing candles.
    t0 = int(ts[0])
    offsets = ts - t0
    aligned = (offsets >= 0) & (offsets % period == 0)
    slots = np.where(aligned, offsets // period, -1)
    n_slots = int(slots.max()) + 1 if aligned.any() else 0
    if n_slots <= 0:
        raise DataAnomalyError("no grid-aligned timestamps", report)
    filled = np.full(n_slots, -1, dtype=np.int64)
    for i in range(n):
        s = slots[i]
        if s < 0:
            report.misaligned_rows += 1
            report._note("misaligned", i)
        elif filled[s] >= 0:
            report.duplicate_rows += 1
            report._note("duplicate", i)
        else:
            filled[s] = i
    missing = np.flatnonzero(filled < 0)
    report.missing_rows = int(missing.size)
    for s in missing[:_MAX_DETAIL]:
        report._note("missing", int(s))

    # Assemble the grid (missing slots start all-NaN and are caught by
    # the cell checks below).
    def grid(x: np.ndarray) -> np.ndarray:
        out = np.full((n_slots, m), np.nan)
        good = filled >= 0
        out[good] = x[filled[good]]
        return out

    go, gh, gl, gc, gv = (
        grid(data.open), grid(data.high), grid(data.low),
        grid(data.close), grid(data.volume),
    )
    grid_ts = t0 + period * np.arange(n_slots, dtype=np.int64)
    row_missing = filled < 0

    # -- cell checks ---------------------------------------------------
    nan_cells = (
        np.isnan(go) | np.isnan(gh) | np.isnan(gl) | np.isnan(gc) | np.isnan(gv)
    )
    # Missing candles are reported as rows, not as NaN cells.
    nan_cell_count = int(nan_cells[~row_missing].sum())
    report.nan_cells = nan_cell_count
    with np.errstate(invalid="ignore"):
        nonpos = ~nan_cells & (
            (go <= 0) | (gh <= 0) | (gl <= 0) | (gc <= 0) | (gv < 0)
        )
        body_high = np.maximum(go, gc)
        body_low = np.minimum(go, gc)
        inconsistent = ~nan_cells & ~nonpos & (
            (gh < gl)
            | (gh < body_high - 1e-9)
            | (gl > body_low + 1e-9)
        )
    report.nonpositive_cells = int(nonpos.sum())
    report.inconsistent_cells = int(inconsistent.sum())
    bad_cells = nan_cells | nonpos | inconsistent
    for r in np.flatnonzero(bad_cells.any(axis=1) & ~row_missing)[:_MAX_DETAIL]:
        report._note("bad_cells", int(r))

    # -- stale rows (advisory) ----------------------------------------
    present = np.flatnonzero(~row_missing)
    if present.size > 1:
        prev, cur = present[:-1], present[1:]
        consecutive = (cur - prev) == 1
        same = (
            (go[cur] == go[prev]).all(axis=1)
            & (gh[cur] == gh[prev]).all(axis=1)
            & (gl[cur] == gl[prev]).all(axis=1)
            & (gc[cur] == gc[prev]).all(axis=1)
            & (gv[cur] == gv[prev]).all(axis=1)
        )
        stale = cur[consecutive & same]
        report.stale_rows = int(stale.size)
        for s in stale[:_MAX_DETAIL]:
            report._note("stale", int(s))

    # -- the healthy fast path ----------------------------------------
    if report.clean:
        report.rows_out = n
        return data, report

    if policy == "raise":
        raise DataAnomalyError(
            f"panel failed validation: {report.nan_cells} NaN cells, "
            f"{report.nonpositive_cells} non-positive cells, "
            f"{report.inconsistent_cells} inconsistent cells, "
            f"{report.missing_rows} missing rows, "
            f"{report.duplicate_rows} duplicate rows, "
            f"{report.misaligned_rows} misaligned rows",
            report,
        )

    bad_rows = row_missing | bad_cells.any(axis=1)
    if policy == "drop":
        keep = np.flatnonzero(~bad_rows)
        if keep.size < 2:
            raise DataAnomalyError(
                "fewer than two clean periods survive the drop repair",
                report,
            )
        report.dropped_rows = int(n_slots - keep.size)
        # Index-space compaction: survivors are re-stamped contiguously
        # from the first kept timestamp.  Return relatives across a
        # dropped period splice two non-adjacent candles — the price of
        # refusing to synthesise data.
        repaired = MarketData(
            timestamps=int(grid_ts[keep[0]])
            + period * np.arange(keep.size, dtype=np.int64),
            names=list(data.names),
            open=go[keep],
            high=gh[keep],
            low=gl[keep],
            close=gc[keep],
            volume=gv[keep],
            period_seconds=period,
        )
        report.rows_out = repaired.n_periods
        return repaired, report

    # policy == "ffill": every bad cell becomes a flat zero-volume
    # candle at the previous clean close (per asset).  Leading bad
    # cells backfill from the asset's first clean close.
    for j in range(m):
        col_bad = np.flatnonzero(bad_cells[:, j])
        if col_bad.size == 0:
            continue
        col_good = np.flatnonzero(~bad_cells[:, j])
        if col_good.size == 0:
            raise DataAnomalyError(
                f"asset {data.names[j]!r} has no clean candle to repair from",
                report,
            )
        # For each bad slot, the last clean slot before it (or the
        # first clean slot, for leading gaps).
        pos = np.searchsorted(col_good, col_bad) - 1
        src = col_good[np.maximum(pos, 0)]
        fill = gc[src, j]
        go[col_bad, j] = fill
        gh[col_bad, j] = fill
        gl[col_bad, j] = fill
        gc[col_bad, j] = fill
        gv[col_bad, j] = 0.0
        report.repaired_cells += int(col_bad.size)
    repaired = MarketData(
        timestamps=grid_ts,
        names=list(data.names),
        open=go,
        high=gh,
        low=gl,
        close=gc,
        volume=gv,
        period_seconds=period,
    )
    report.rows_out = repaired.n_periods
    return repaired, report
