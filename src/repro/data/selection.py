"""Asset-universe selection: top-k coins by trailing traded volume.

The paper: "Each test consists of a portfolio of 11 cryptocurrencies
with the highest trading volume in the last 30 days before the test
data."  This module implements that selection against either a
:class:`~repro.data.market.MarketData` panel or the simulated exchange.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from .market import MarketData
from .poloniex import PoloniexSimulator
from .regimes import parse_date

PAPER_NUM_ASSETS = 11
PAPER_VOLUME_WINDOW_DAYS = 30


def top_volume_assets(
    data: MarketData,
    as_of: Union[int, str],
    k: int = PAPER_NUM_ASSETS,
    window_days: int = PAPER_VOLUME_WINDOW_DAYS,
) -> List[str]:
    """Names of the ``k`` assets with the highest volume before ``as_of``.

    Volume is summed over the ``window_days`` days ending immediately
    before ``as_of`` (the paper's "last 30 days before the test data").
    Ties are broken by name for determinism.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if k > data.n_assets:
        raise ValueError(f"requested top {k} of only {data.n_assets} assets")
    epoch = parse_date(as_of) if isinstance(as_of, str) else int(as_of)
    end = int(np.searchsorted(data.timestamps, epoch, side="left"))
    if end == 0:
        raise ValueError("as_of precedes available history")
    window_periods = max(int(window_days * 86_400 / data.period_seconds), 1)
    lo = max(end - window_periods, 0)
    totals = data.volume[lo:end].sum(axis=0)
    order = sorted(range(data.n_assets), key=lambda j: (-totals[j], data.names[j]))
    return [data.names[j] for j in order[:k]]


def select_universe(
    exchange: PoloniexSimulator,
    test_start: str,
    k: int = PAPER_NUM_ASSETS,
    window_days: int = PAPER_VOLUME_WINDOW_DAYS,
) -> List[str]:
    """Paper-style selection through the exchange interface.

    Returns currency-pair names (e.g. ``USDT_BTC``) ranked by trailing
    volume as of the back-test start date.
    """
    names = top_volume_assets(
        exchange.data, test_start, k=k, window_days=window_days
    )
    return [f"{exchange.quote}_{name}" for name in names]
