"""OHLCV panel container used throughout the reproduction.

:class:`MarketData` holds aligned open/high/low/close/volume arrays of
shape ``(n_periods, n_assets)`` plus period timestamps and asset names.
It is the only interface the environments, agents, and baselines see —
whether the panel came from the synthetic generator or the simulated
exchange API.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from .regimes import format_date, parse_date


@dataclass
class MarketData:
    """Aligned OHLCV history for a set of assets.

    All price arrays have shape ``(n_periods, n_assets)``; ``timestamps``
    holds the *open* time of each period in UTC epoch seconds and is
    strictly increasing with a constant spacing of ``period_seconds``.
    """

    timestamps: np.ndarray
    names: List[str]
    open: np.ndarray
    high: np.ndarray
    low: np.ndarray
    close: np.ndarray
    volume: np.ndarray
    period_seconds: int

    def __post_init__(self):
        self.timestamps = np.asarray(self.timestamps, dtype=np.int64)
        for attr in ("open", "high", "low", "close", "volume"):
            setattr(self, attr, np.asarray(getattr(self, attr), dtype=np.float64))
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural and OHLC consistency invariants."""
        n, m = self.close.shape
        if len(self.names) != m:
            raise ValueError(f"{len(self.names)} names for {m} asset columns")
        if self.timestamps.shape != (n,):
            raise ValueError("timestamps misaligned with price panel")
        for attr in ("open", "high", "low", "volume"):
            if getattr(self, attr).shape != (n, m):
                raise ValueError(f"{attr} misaligned with close panel")
        if n > 1:
            gaps = np.diff(self.timestamps)
            if not np.all(gaps == self.period_seconds):
                raise ValueError("timestamps must be evenly spaced by period_seconds")
        if np.any(self.low <= 0) or np.any(self.close <= 0):
            raise ValueError("prices must be strictly positive")
        if np.any(self.high < self.low):
            raise ValueError("high < low violates OHLC consistency")
        body_high = np.maximum(self.open, self.close)
        body_low = np.minimum(self.open, self.close)
        if np.any(self.high < body_high - 1e-9) or np.any(self.low > body_low + 1e-9):
            raise ValueError("high/low must bracket open/close")
        if np.any(self.volume < 0):
            raise ValueError("volume must be non-negative")

    # ------------------------------------------------------------------
    # Derived panels used by the observation builders on every decision.
    # Computed once per panel and cached, keyed by the *identity* of the
    # source arrays: assigning a replacement array (even same-shape)
    # invalidates the cache.  In-place mutation of price arrays is
    # unsupported — the repo treats panels as immutable after
    # construction.
    def _cached_panel(self, key: str, sources: tuple, build) -> np.ndarray:
        cache = self.__dict__.get(key)
        if cache is not None and all(
            a is b for a, b in zip(cache[0], sources)
        ) and len(cache[0]) == len(sources):
            return cache[1]
        # A permuted view (permute_assets) builds its panels by
        # permuting the parent's cached ones instead of recomputing —
        # bit-identical (the panels are elementwise per asset) and only
        # for the families actually consumed.
        seed = self.__dict__.get("_perm_seeds", {}).get(key)
        value = seed() if seed is not None else None
        if value is None:
            value = build()
        self.__dict__[key] = (sources, value)
        return value

    def log_close_panel(self) -> np.ndarray:
        """``ln(close)`` for the whole panel, cached."""
        return self._cached_panel(
            "_log_close_cache", (self.close,), lambda: np.log(self.close)
        )

    def feature_panel(self, include_open: bool = True) -> np.ndarray:
        """``(features, periods, assets)`` stack of close/high/low
        (+ open), cached — the EIIE price-tensor source."""
        feats = [self.close, self.high, self.low]
        if include_open:
            feats.append(self.open)
        return self._cached_panel(
            f"_feature_panel_cache_{include_open}",
            tuple(feats),
            lambda: np.stack(feats, axis=0),
        )

    def log_candle_panel(self) -> np.ndarray:
        """``(n_periods, n_assets, 3)`` of ``ln(high/close)``,
        ``ln(low/close)``, ``ln(open/close)``, cached."""
        return self._cached_panel(
            "_log_candle_cache",
            (self.high, self.low, self.open, self.close),
            lambda: np.log(
                np.stack([self.high, self.low, self.open], axis=2)
                / self.close[:, :, None]
            ),
        )

    # ------------------------------------------------------------------
    @property
    def n_periods(self) -> int:
        return self.close.shape[0]

    @property
    def n_assets(self) -> int:
        return self.close.shape[1]

    def index_at(self, when: Union[int, str]) -> int:
        """Index of the first period whose open time is >= ``when``.

        ``when`` may be an epoch second or a ``YYYY/MM/DD`` string.
        """
        epoch = parse_date(when) if isinstance(when, str) else int(when)
        idx = int(np.searchsorted(self.timestamps, epoch, side="left"))
        if idx >= self.n_periods:
            raise IndexError(
                f"{format_date(epoch)} is beyond the last period "
                f"({format_date(int(self.timestamps[-1]))})"
            )
        return idx

    def slice_time(
        self, start: Union[int, str, None] = None, end: Union[int, str, None] = None
    ) -> "MarketData":
        """Sub-panel covering ``[start, end)`` (dates or epochs)."""
        lo = 0 if start is None else self.index_at(start)
        if end is None:
            hi = self.n_periods
        else:
            epoch = parse_date(end) if isinstance(end, str) else int(end)
            hi = int(np.searchsorted(self.timestamps, epoch, side="left"))
        if hi <= lo:
            raise ValueError(f"empty time slice [{start}, {end})")
        return self._take(slice(lo, hi), list(range(self.n_assets)))

    def select_assets(self, which: Sequence[Union[int, str]]) -> "MarketData":
        """Sub-panel with the requested assets (by index or name)."""
        indices = []
        for w in which:
            if isinstance(w, str):
                try:
                    indices.append(self.names.index(w))
                except ValueError:
                    raise KeyError(f"unknown asset {w!r}") from None
            else:
                indices.append(int(w))
        return self._take(slice(None), indices)

    def _take(self, rows: slice, cols: List[int]) -> "MarketData":
        return MarketData(
            timestamps=self.timestamps[rows].copy(),
            names=[self.names[i] for i in cols],
            open=self.open[rows][:, cols].copy(),
            high=self.high[rows][:, cols].copy(),
            low=self.low[rows][:, cols].copy(),
            close=self.close[rows][:, cols].copy(),
            volume=self.volume[rows][:, cols].copy(),
            period_seconds=self.period_seconds,
        )

    def permute_assets(self, perm: Sequence[int]) -> "MarketData":
        """Column-permuted panel, optimised for per-step augmentation.

        Equivalent to ``select_assets(perm)`` when ``perm`` is a
        permutation of all asset indices, but skips the full-panel
        re-validation (a column permutation of a valid panel is valid)
        and seeds the derived-panel caches by permuting this panel's
        cached ones — ``ln(close)[:, perm]`` is bit-identical to
        ``ln(close[:, perm])`` since the panels are elementwise, so the
        whole-panel logs run once per panel instead of once per train
        step.  The trainer's asset-permutation augmentation calls this
        every minibatch.
        """
        perm = np.asarray(perm, dtype=np.int64)
        m = self.n_assets
        if perm.shape != (m,) or not np.array_equal(
            np.sort(perm), np.arange(m)
        ):
            raise ValueError(
                f"perm must be a permutation of all {m} asset indices"
            )
        view = object.__new__(MarketData)
        view.timestamps = self.timestamps
        view.names = [self.names[i] for i in perm]
        view.open = self.open[:, perm]
        view.high = self.high[:, perm]
        view.low = self.low[:, perm]
        view.close = self.close[:, perm]
        view.volume = self.volume[:, perm]
        view.period_seconds = self.period_seconds
        # Lazy cache seeds: when the view is asked for a derived panel,
        # _cached_panel builds it by permuting this (parent) panel's —
        # warming the parent once, then one asset-axis gather per view
        # for exactly the families the consumer reads.  The parent is
        # held weakly so a long-lived view does not pin it; if the
        # parent is gone the view simply computes its own panels.
        parent_ref = weakref.ref(self)

        def _seed(getter, take):
            def build_from_parent():
                parent = parent_ref()
                return None if parent is None else take(getter(parent))

            return build_from_parent

        view.__dict__["_perm_seeds"] = {
            "_log_close_cache": _seed(
                MarketData.log_close_panel, lambda p: p[:, perm]
            ),
            "_log_candle_cache": _seed(
                MarketData.log_candle_panel, lambda p: p[:, perm, :]
            ),
            "_feature_panel_cache_True": _seed(
                lambda d: d.feature_panel(True), lambda p: p[:, :, perm]
            ),
            "_feature_panel_cache_False": _seed(
                lambda d: d.feature_panel(False), lambda p: p[:, :, perm]
            ),
        }
        return view

    # ------------------------------------------------------------------
    def price_relatives(self, include_cash: bool = False) -> np.ndarray:
        """Price-relative vectors y_t = close_t / close_{t-1}.

        Shape ``(n_periods - 1, n_assets)`` — row ``t`` relates period
        ``t+1`` to period ``t``.  With ``include_cash`` a constant-1
        column is prepended (the paper's cash asset).
        """
        rel = self.close[1:] / self.close[:-1]
        if include_cash:
            rel = np.concatenate([np.ones((rel.shape[0], 1)), rel], axis=1)
        return rel

    def log_returns(self) -> np.ndarray:
        """Per-period close-to-close log returns, shape (n-1, m)."""
        return np.log(self.close[1:] / self.close[:-1])

    def rolling_volume(self, window_periods: int) -> np.ndarray:
        """Trailing volume sums (same shape as ``volume``; NaN-free).

        Entry ``[t, i]`` is the volume of asset ``i`` over the window
        ending at (and including) period ``t``, truncated at history
        start.
        """
        if window_periods <= 0:
            raise ValueError("window_periods must be positive")
        csum = np.concatenate(
            [np.zeros((1, self.n_assets)), np.cumsum(self.volume, axis=0)]
        )
        start = np.maximum(np.arange(self.n_periods) + 1 - window_periods, 0)
        return csum[1:] - csum[start]

    def adv_panel(self, window_periods: Optional[int] = None) -> np.ndarray:
        """Trailing *average* per-period volume, cached per window.

        Entry ``[t, i]`` is asset ``i``'s mean volume over the
        ``window_periods`` periods ending at (and including) ``t``
        (expanding at history start) — the per-period tradable-volume
        input the execution layer's impact models consume.  Default
        window: one day of periods.  Sits on the back-test/serving hot
        path, hence the per-window cache.
        """
        if window_periods is None:
            window_periods = max(int(86_400 / self.period_seconds), 1)
        if window_periods <= 0:
            raise ValueError("window_periods must be positive")
        counts = np.minimum(
            np.arange(1, self.n_periods + 1), window_periods
        )[:, None]
        return self._cached_panel(
            f"_adv_panel_cache_{window_periods}",
            (self.volume,),
            lambda: self.rolling_volume(window_periods) / counts,
        )

    def resample(self, factor: int) -> "MarketData":
        """Aggregate ``factor`` consecutive periods into one candle."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        if factor == 1:
            return self
        n = (self.n_periods // factor) * factor
        if n == 0:
            raise ValueError("not enough periods to resample")

        def group(x: np.ndarray) -> np.ndarray:
            return x[:n].reshape(-1, factor, self.n_assets)

        return MarketData(
            timestamps=self.timestamps[:n:factor].copy(),
            names=list(self.names),
            open=group(self.open)[:, 0, :],
            high=group(self.high).max(axis=1),
            low=group(self.low).min(axis=1),
            close=group(self.close)[:, -1, :],
            volume=group(self.volume).sum(axis=1),
            period_seconds=self.period_seconds * factor,
        )

    def __repr__(self) -> str:
        span = (
            f"{format_date(int(self.timestamps[0]))}–"
            f"{format_date(int(self.timestamps[-1]))}"
            if self.n_periods
            else "empty"
        )
        return (
            f"MarketData({self.n_assets} assets × {self.n_periods} periods, "
            f"{self.period_seconds}s candles, {span})"
        )


def unvalidated_market(
    timestamps: np.ndarray,
    names: List[str],
    open: np.ndarray,  # noqa: A002 - mirrors the dataclass field
    high: np.ndarray,
    low: np.ndarray,
    close: np.ndarray,
    volume: np.ndarray,
    period_seconds: int,
) -> MarketData:
    """Construct a :class:`MarketData` *without* running validation.

    The escape hatch the resilience layer needs in exactly two places:
    :func:`repro.resilience.faults.corrupt_panel` building a
    deliberately malformed feed, and
    :func:`repro.data.validation.validate_panel` assembling
    intermediate grids while repairing one.  Everything else must go
    through the validating constructor — a panel built here may violate
    every invariant the rest of the repo assumes.
    """
    data = object.__new__(MarketData)
    data.timestamps = np.asarray(timestamps, dtype=np.int64)
    data.names = list(names)
    data.open = np.asarray(open, dtype=np.float64)
    data.high = np.asarray(high, dtype=np.float64)
    data.low = np.asarray(low, dtype=np.float64)
    data.close = np.asarray(close, dtype=np.float64)
    data.volume = np.asarray(volume, dtype=np.float64)
    data.period_seconds = int(period_seconds)
    return data


# ----------------------------------------------------------------------
# npz-friendly (de)serialisation — the single representation used by
# serving checkpoints and the experiment artifact store.


def market_to_state(data: MarketData) -> dict:
    """Flatten a panel into an npz-compatible dict of arrays."""
    return {
        "timestamps": data.timestamps,
        "open": data.open,
        "high": data.high,
        "low": data.low,
        "close": data.close,
        "volume": data.volume,
        "period_seconds": np.array(data.period_seconds, dtype=np.int64),
        "names": np.array([str(n) for n in data.names]),
    }


def market_from_state(state: dict) -> MarketData:
    """Rebuild a panel from :func:`market_to_state` output."""
    return MarketData(
        timestamps=state["timestamps"],
        names=[str(n) for n in state["names"]],
        open=state["open"],
        high=state["high"],
        low=state["low"],
        close=state["close"],
        volume=state["volume"],
        period_seconds=int(state["period_seconds"]),
    )
