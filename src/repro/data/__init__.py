"""Market-data substrate: synthetic crypto market + simulated exchange.

Substitutes the paper's Poloniex 2016–2021 dataset (see DESIGN.md §2)
with a deterministic regime-switching jump-diffusion market and an
offline Poloniex-compatible API.
"""

from .generator import (
    DEFAULT_PERIOD_SECONDS,
    CoinSpec,
    MarketGenerator,
    default_universe,
)
from .market import (
    MarketData,
    market_from_state,
    market_to_state,
    unvalidated_market,
)
from .poloniex import (
    DEFAULT_FETCH_RETRY,
    PoloniexError,
    PoloniexSimulator,
    PoloniexTransientError,
    VALID_PERIODS,
)
from .regimes import (
    Regime,
    RegimeSchedule,
    default_crypto_schedule,
    format_date,
    parse_date,
)
from .selection import (
    PAPER_NUM_ASSETS,
    PAPER_VOLUME_WINDOW_DAYS,
    select_universe,
    top_volume_assets,
)
from .splits import (
    TABLE1_WINDOWS,
    ExperimentWindow,
    get_window,
    walk_forward_windows,
)
from .validation import (
    REPAIR_POLICIES,
    AnomalyReport,
    DataAnomalyError,
    validate_panel,
)

__all__ = [
    "AnomalyReport",
    "CoinSpec",
    "DEFAULT_FETCH_RETRY",
    "DEFAULT_PERIOD_SECONDS",
    "DataAnomalyError",
    "ExperimentWindow",
    "MarketData",
    "MarketGenerator",
    "PAPER_NUM_ASSETS",
    "PAPER_VOLUME_WINDOW_DAYS",
    "PoloniexError",
    "PoloniexSimulator",
    "PoloniexTransientError",
    "REPAIR_POLICIES",
    "Regime",
    "RegimeSchedule",
    "TABLE1_WINDOWS",
    "VALID_PERIODS",
    "default_crypto_schedule",
    "default_universe",
    "format_date",
    "get_window",
    "market_from_state",
    "market_to_state",
    "parse_date",
    "select_universe",
    "top_volume_assets",
    "unvalidated_market",
    "validate_panel",
    "walk_forward_windows",
]
