"""Offline simulation of the Poloniex public HTTP API.

The paper collects its data "from polonix.com [28]" via the public
endpoint ``https://poloniex.com/public``.  This module reproduces the
relevant slice of that API — ``returnChartData``, ``return24hVolume``
and ``returnTicker`` — backed by the synthetic market generator, so the
data-ingestion code path of the reproduction is the same one a live
deployment would use.

Responses follow Poloniex's JSON schema (lists of candle dicts with
``date``/``open``/``high``/``low``/``close``/``volume``/
``quoteVolume``/``weightedAverage`` keys).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .generator import DEFAULT_PERIOD_SECONDS, CoinSpec, MarketGenerator
from .market import MarketData
from .regimes import parse_date

# Candle periods supported by the real API (seconds).
VALID_PERIODS = (300, 900, 1800, 7200, 14400, 86400)


class PoloniexError(ValueError):
    """Raised for malformed API requests (mirrors the HTTP 4xx path)."""


class PoloniexSimulator:
    """A deterministic, offline stand-in for the Poloniex public API.

    Parameters
    ----------
    generator:
        The synthetic market backing the exchange (default universe and
        regime calendar if omitted).
    history_start / history_end:
        Span of history the exchange "has".  Requests outside it return
        empty candle lists, like the real API.
    quote:
        Quote currency of all pairs (the paper trades BTC-quoted pairs;
        we use USDT-style quoting for readability — the algorithms only
        consume relative prices, so the choice is immaterial).
    """

    def __init__(
        self,
        generator: Optional[MarketGenerator] = None,
        history_start: str = "2016/01/01",
        history_end: str = "2021/09/01",
        quote: str = "USDT",
        base_period: int = DEFAULT_PERIOD_SECONDS,
    ):
        self.generator = generator if generator is not None else MarketGenerator()
        self.quote = quote
        self.history_start = history_start
        self.history_end = history_end
        if base_period not in VALID_PERIODS:
            raise PoloniexError(f"invalid base period {base_period}")
        self.base_period = base_period
        # Generate the full base-resolution history once; API calls are
        # slices/resamples of this panel.
        self._data = self.generator.generate(
            history_start, history_end, period_seconds=base_period
        )

    # ------------------------------------------------------------------
    @property
    def data(self) -> MarketData:
        """The full base-resolution panel (test/diagnostic access)."""
        return self._data

    def currency_pairs(self) -> List[str]:
        return [f"{self.quote}_{name}" for name in self._data.names]

    def _asset_index(self, currency_pair: str) -> int:
        try:
            quote, base = currency_pair.split("_")
        except ValueError:
            raise PoloniexError(f"malformed currency pair {currency_pair!r}") from None
        if quote != self.quote:
            raise PoloniexError(f"unknown quote currency {quote!r}")
        try:
            return self._data.names.index(base)
        except ValueError:
            raise PoloniexError(f"unknown currency pair {currency_pair!r}") from None

    # ------------------------------------------------------------------
    def return_chart_data(
        self,
        currency_pair: str,
        period: int = DEFAULT_PERIOD_SECONDS,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> List[Dict[str, float]]:
        """Candlestick data, mirroring ``?command=returnChartData``.

        Parameters
        ----------
        currency_pair:
            e.g. ``"USDT_BTC"``.
        period:
            Candle length in seconds; must be one of
            :data:`VALID_PERIODS` and a multiple of the base period.
        start, end:
            UTC epoch bounds (inclusive start, exclusive end).

        Returns
        -------
        List of candle dicts in Poloniex schema, oldest first.
        """
        if period not in VALID_PERIODS:
            raise PoloniexError(f"invalid period {period}")
        if period % self.base_period != 0:
            raise PoloniexError(
                f"period {period} is finer than the exchange base period "
                f"{self.base_period}"
            )
        j = self._asset_index(currency_pair)
        panel = self._data
        if period != self.base_period:
            panel = panel.resample(period // self.base_period)

        t = panel.timestamps
        lo = 0 if start is None else int(np.searchsorted(t, int(start), side="left"))
        hi = len(t) if end is None else int(np.searchsorted(t, int(end), side="left"))
        candles = []
        for i in range(lo, hi):
            close = panel.close[i, j]
            volume = panel.volume[i, j]
            weighted = (panel.high[i, j] + panel.low[i, j] + close) / 3.0
            candles.append(
                {
                    "date": int(t[i]),
                    "open": float(panel.open[i, j]),
                    "high": float(panel.high[i, j]),
                    "low": float(panel.low[i, j]),
                    "close": float(close),
                    "volume": float(volume),
                    "quoteVolume": float(volume / weighted),
                    "weightedAverage": float(weighted),
                }
            )
        return candles

    # ------------------------------------------------------------------
    def return_24h_volume(self, as_of: Optional[int] = None) -> Dict[str, float]:
        """Trailing-24h traded volume per pair (``return24hVolume``)."""
        t = self._data.timestamps
        idx = len(t) - 1 if as_of is None else max(
            int(np.searchsorted(t, int(as_of), side="right")) - 1, 0
        )
        window = max(int(86_400 / self._data.period_seconds), 1)
        lo = max(idx + 1 - window, 0)
        totals = self._data.volume[lo : idx + 1].sum(axis=0)
        return {
            f"{self.quote}_{name}": float(v)
            for name, v in zip(self._data.names, totals)
        }

    def return_ticker(self, as_of: Optional[int] = None) -> Dict[str, Dict[str, float]]:
        """Last-trade snapshot per pair (``returnTicker``)."""
        t = self._data.timestamps
        idx = len(t) - 1 if as_of is None else max(
            int(np.searchsorted(t, int(as_of), side="right")) - 1, 0
        )
        out = {}
        day = self.return_24h_volume(as_of=int(t[idx]))
        for j, name in enumerate(self._data.names):
            pair = f"{self.quote}_{name}"
            last = float(self._data.close[idx, j])
            out[pair] = {
                "last": last,
                "lowestAsk": last * 1.0005,
                "highestBid": last * 0.9995,
                "baseVolume": day[pair],
                "high24hr": float(self._data.high[max(idx - 47, 0) : idx + 1, j].max()),
                "low24hr": float(self._data.low[max(idx - 47, 0) : idx + 1, j].min()),
            }
        return out

    # ------------------------------------------------------------------
    def fetch_panel(
        self,
        pairs: Sequence[str],
        start: str,
        end: str,
        period: int = DEFAULT_PERIOD_SECONDS,
    ) -> MarketData:
        """Assemble a :class:`MarketData` panel through the API path.

        This is what the data-pipeline bench exercises: every candle
        passes through :meth:`return_chart_data`'s JSON schema, exactly
        as a live ingestion job would.
        """
        t0, t1 = parse_date(start), parse_date(end)
        columns = {}
        timestamps = None
        for pair in pairs:
            candles = self.return_chart_data(pair, period=period, start=t0, end=t1)
            if not candles:
                raise PoloniexError(f"no data for {pair} in [{start}, {end})")
            ts = np.array([c["date"] for c in candles], dtype=np.int64)
            if timestamps is None:
                timestamps = ts
            elif not np.array_equal(timestamps, ts):
                raise PoloniexError("misaligned candles across pairs")
            columns[pair] = candles
        names = [p.split("_")[1] for p in pairs]
        stackcol = lambda key: np.column_stack(
            [[c[key] for c in columns[p]] for p in pairs]
        )
        return MarketData(
            timestamps=timestamps,
            names=names,
            open=stackcol("open"),
            high=stackcol("high"),
            low=stackcol("low"),
            close=stackcol("close"),
            volume=stackcol("volume"),
            period_seconds=period,
        )
