"""Offline simulation of the Poloniex public HTTP API.

The paper collects its data "from polonix.com [28]" via the public
endpoint ``https://poloniex.com/public``.  This module reproduces the
relevant slice of that API — ``returnChartData``, ``return24hVolume``
and ``returnTicker`` — backed by the synthetic market generator, so the
data-ingestion code path of the reproduction is the same one a live
deployment would use.

Responses follow Poloniex's JSON schema (lists of candle dicts with
``date``/``open``/``high``/``low``/``close``/``volume``/
``quoteVolume``/``weightedAverage`` keys).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

# resilience.retry depends only on utils.rng, so importing it here cannot
# cycle back into repro.data (unlike the injector, imported lazily below).
from ..resilience.retry import RetryPolicy, call_with_retry
from .generator import DEFAULT_PERIOD_SECONDS, CoinSpec, MarketGenerator
from .market import MarketData
from .regimes import parse_date

# Candle periods supported by the real API (seconds).
VALID_PERIODS = (300, 900, 1800, 7200, 14400, 86400)

# Fetch retry shape for the ingestion path: jittered exponential backoff
# with a total time budget, the same discipline a live Poloniex client
# would need against timeouts and 5xx responses.
DEFAULT_FETCH_RETRY = RetryPolicy(
    max_attempts=4,
    base_delay=0.2,
    multiplier=2.0,
    max_delay=5.0,
    jitter=0.25,
    timeout=30.0,
)


class PoloniexError(ValueError):
    """Raised for malformed API requests (mirrors the HTTP 4xx path)."""


class PoloniexTransientError(PoloniexError):
    """A retryable fetch failure (the timeout/connection-reset/5xx class).

    The simulator raises it only through the fault-injection seam; live
    subclasses overriding :meth:`PoloniexSimulator.return_chart_data`
    with a real HTTP call should translate their transient network
    errors into this type to get the retry loop for free.
    """


class PoloniexSimulator:
    """A deterministic, offline stand-in for the Poloniex public API.

    Parameters
    ----------
    generator:
        The synthetic market backing the exchange (default universe and
        regime calendar if omitted).
    history_start / history_end:
        Span of history the exchange "has".  Requests outside it return
        empty candle lists, like the real API.
    quote:
        Quote currency of all pairs (the paper trades BTC-quoted pairs;
        we use USDT-style quoting for readability — the algorithms only
        consume relative prices, so the choice is immaterial).
    faults:
        Optional :class:`~repro.resilience.FaultPlan` (or prepared
        injector) arming the data seams: transient fetch failures in
        :meth:`fetch_panel` and feed corruption before repair.  ``None``
        (or an empty plan) leaves every path byte-identical to the
        unhardened simulator.
    retry:
        :class:`~repro.resilience.RetryPolicy` for per-pair fetches
        (default :data:`DEFAULT_FETCH_RETRY`).
    sleep / clock:
        Injectable backoff sleeper and monotonic clock so chaos tests
        replay retry schedules instantly on fake time.
    """

    def __init__(
        self,
        generator: Optional[MarketGenerator] = None,
        history_start: str = "2016/01/01",
        history_end: str = "2021/09/01",
        quote: str = "USDT",
        base_period: int = DEFAULT_PERIOD_SECONDS,
        faults=None,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.generator = generator if generator is not None else MarketGenerator()
        self.quote = quote
        self.history_start = history_start
        self.history_end = history_end
        if base_period not in VALID_PERIODS:
            raise PoloniexError(f"invalid base period {base_period}")
        self.base_period = base_period
        # Lazy import: repro.data must stay importable before
        # repro.resilience finishes loading (see module header).
        from ..resilience import injector_from

        self._injector = injector_from(faults)
        self.fetch_retry = retry if retry is not None else DEFAULT_FETCH_RETRY
        self._sleep = sleep
        self._clock = clock
        # Retries actually scheduled by fetch_panel (diagnostic/tests).
        self.fetch_retry_count = 0
        # Report from the most recent fetch_panel(..., repair=...).
        self.last_anomaly_report = None
        # Generate the full base-resolution history once; API calls are
        # slices/resamples of this panel.
        self._data = self.generator.generate(
            history_start, history_end, period_seconds=base_period
        )

    # ------------------------------------------------------------------
    @property
    def data(self) -> MarketData:
        """The full base-resolution panel (test/diagnostic access)."""
        return self._data

    def currency_pairs(self) -> List[str]:
        return [f"{self.quote}_{name}" for name in self._data.names]

    def _asset_index(self, currency_pair: str) -> int:
        try:
            quote, base = currency_pair.split("_")
        except ValueError:
            raise PoloniexError(f"malformed currency pair {currency_pair!r}") from None
        if quote != self.quote:
            raise PoloniexError(f"unknown quote currency {quote!r}")
        try:
            return self._data.names.index(base)
        except ValueError:
            raise PoloniexError(f"unknown currency pair {currency_pair!r}") from None

    # ------------------------------------------------------------------
    def return_chart_data(
        self,
        currency_pair: str,
        period: int = DEFAULT_PERIOD_SECONDS,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> List[Dict[str, float]]:
        """Candlestick data, mirroring ``?command=returnChartData``.

        Parameters
        ----------
        currency_pair:
            e.g. ``"USDT_BTC"``.
        period:
            Candle length in seconds; must be one of
            :data:`VALID_PERIODS` and a multiple of the base period.
        start, end:
            UTC epoch bounds (inclusive start, exclusive end).

        Returns
        -------
        List of candle dicts in Poloniex schema, oldest first.
        """
        if period not in VALID_PERIODS:
            raise PoloniexError(f"invalid period {period}")
        if period % self.base_period != 0:
            raise PoloniexError(
                f"period {period} is finer than the exchange base period "
                f"{self.base_period}"
            )
        j = self._asset_index(currency_pair)
        panel = self._data
        if period != self.base_period:
            panel = panel.resample(period // self.base_period)

        t = panel.timestamps
        lo = 0 if start is None else int(np.searchsorted(t, int(start), side="left"))
        hi = len(t) if end is None else int(np.searchsorted(t, int(end), side="left"))
        candles = []
        for i in range(lo, hi):
            close = panel.close[i, j]
            volume = panel.volume[i, j]
            weighted = (panel.high[i, j] + panel.low[i, j] + close) / 3.0
            candles.append(
                {
                    "date": int(t[i]),
                    "open": float(panel.open[i, j]),
                    "high": float(panel.high[i, j]),
                    "low": float(panel.low[i, j]),
                    "close": float(close),
                    "volume": float(volume),
                    "quoteVolume": float(volume / weighted),
                    "weightedAverage": float(weighted),
                }
            )
        return candles

    # ------------------------------------------------------------------
    def return_24h_volume(self, as_of: Optional[int] = None) -> Dict[str, float]:
        """Trailing-24h traded volume per pair (``return24hVolume``)."""
        t = self._data.timestamps
        idx = len(t) - 1 if as_of is None else max(
            int(np.searchsorted(t, int(as_of), side="right")) - 1, 0
        )
        window = max(int(86_400 / self._data.period_seconds), 1)
        lo = max(idx + 1 - window, 0)
        totals = self._data.volume[lo : idx + 1].sum(axis=0)
        return {
            f"{self.quote}_{name}": float(v)
            for name, v in zip(self._data.names, totals)
        }

    def return_ticker(self, as_of: Optional[int] = None) -> Dict[str, Dict[str, float]]:
        """Last-trade snapshot per pair (``returnTicker``)."""
        t = self._data.timestamps
        idx = len(t) - 1 if as_of is None else max(
            int(np.searchsorted(t, int(as_of), side="right")) - 1, 0
        )
        out = {}
        day = self.return_24h_volume(as_of=int(t[idx]))
        for j, name in enumerate(self._data.names):
            pair = f"{self.quote}_{name}"
            last = float(self._data.close[idx, j])
            out[pair] = {
                "last": last,
                "lowestAsk": last * 1.0005,
                "highestBid": last * 0.9995,
                "baseVolume": day[pair],
                "high24hr": float(self._data.high[max(idx - 47, 0) : idx + 1, j].max()),
                "low24hr": float(self._data.low[max(idx - 47, 0) : idx + 1, j].min()),
            }
        return out

    # ------------------------------------------------------------------
    def _fetch_chart_data(
        self, pair: str, period: int, start: int, end: int
    ) -> List[Dict[str, float]]:
        """One pair's candles under the retry loop and the fault seam."""

        def attempt_fetch(attempt: int) -> List[Dict[str, float]]:
            if self._injector is not None and self._injector.fetch_fails(
                pair, attempt
            ):
                raise PoloniexTransientError(
                    f"transient failure fetching {pair} (attempt {attempt})"
                )
            return self.return_chart_data(pair, period=period, start=start, end=end)

        def note_retry(attempt: int, exc: BaseException, delay: float) -> None:
            self.fetch_retry_count += 1

        return call_with_retry(
            attempt_fetch,
            self.fetch_retry,
            key=pair,
            retry_on=(PoloniexTransientError, ConnectionError, TimeoutError),
            sleep=self._sleep,
            clock=self._clock,
            on_retry=note_retry,
        )

    def fetch_panel(
        self,
        pairs: Sequence[str],
        start: str,
        end: str,
        period: int = DEFAULT_PERIOD_SECONDS,
        repair: Optional[str] = None,
    ) -> MarketData:
        """Assemble a :class:`MarketData` panel through the API path.

        This is what the data-pipeline bench exercises: every candle
        passes through :meth:`return_chart_data`'s JSON schema, exactly
        as a live ingestion job would.  Per-pair fetches run under
        :attr:`fetch_retry` so transient failures (the fault seam, or a
        live subclass's network errors) back off and recover.  With
        ``repair`` set, the armed data seam corrupts the assembled panel
        and :func:`~repro.data.validation.validate_panel` repairs it
        under that policy, leaving the structured report on
        :attr:`last_anomaly_report`.
        """
        t0, t1 = parse_date(start), parse_date(end)
        columns = {}
        timestamps = None
        for pair in pairs:
            candles = self._fetch_chart_data(pair, period, t0, t1)
            if not candles:
                raise PoloniexError(f"no data for {pair} in [{start}, {end})")
            ts = np.array([c["date"] for c in candles], dtype=np.int64)
            if timestamps is None:
                timestamps = ts
            elif not np.array_equal(timestamps, ts):
                raise PoloniexError("misaligned candles across pairs")
            columns[pair] = candles
        names = [p.split("_")[1] for p in pairs]
        stackcol = lambda key: np.column_stack(
            [[c[key] for c in columns[p]] for p in pairs]
        )
        panel = MarketData(
            timestamps=timestamps,
            names=names,
            open=stackcol("open"),
            high=stackcol("high"),
            low=stackcol("low"),
            close=stackcol("close"),
            volume=stackcol("volume"),
            period_seconds=period,
        )
        if self._injector is not None:
            panel = self._injector.corrupt_market(panel, key=f"fetch:{start}:{end}")
        if repair is not None:
            from .validation import validate_panel

            panel, report = validate_panel(panel, policy=repair)
            self.last_anomaly_report = report
        return panel
