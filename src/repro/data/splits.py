"""Experiment time windows (Table 1 of the paper).

Three 3-year experiments, each split into train/back-test at fixed
calendar dates.  (The paper's text says "80% of the collected data is
considered for the training set and 20% for the algorithm test", but the
dates in Table 1 imply a ≈90%/10% split — 2.7 years of training versus
3.5 months of back-test.  We follow the dates, which are what define the
reported back-tests.)

====== ====================== ====================== =====================
Exp.   Training set           Back-test set          Total
====== ====================== ====================== =====================
1      2016/08/01–2019/04/14  2019/04/14–2019/08/01  2016/08/01–2019/08/01
2      2017/08/01–2020/04/14  2020/04/14–2020/08/01  2017/08/01–2020/08/01
3      2018/08/01–2021/04/14  2021/04/14–2021/08/01  2018/08/01–2021/08/01
====== ====================== ====================== =====================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from .market import MarketData
from .regimes import format_date, parse_date


@dataclass(frozen=True)
class ExperimentWindow:
    """One row of Table 1."""

    experiment: int
    train_start: str
    test_start: str
    test_end: str

    def __post_init__(self):
        a, b, c = (
            parse_date(self.train_start),
            parse_date(self.test_start),
            parse_date(self.test_end),
        )
        if not a < b < c:
            raise ValueError(
                f"experiment {self.experiment}: dates must be ordered "
                f"{self.train_start} < {self.test_start} < {self.test_end}"
            )

    @property
    def total_seconds(self) -> int:
        return parse_date(self.test_end) - parse_date(self.train_start)

    @property
    def train_fraction(self) -> float:
        """Fraction of the window used for training (paper: 80%)."""
        train = parse_date(self.test_start) - parse_date(self.train_start)
        return train / self.total_seconds

    def split(self, data: MarketData) -> Tuple[MarketData, MarketData]:
        """Slice a panel into (train, back-test) sub-panels.

        The back-test slice keeps one extra leading period so the first
        test step has a previous close to compute its price relative
        against (no look-ahead: the overlap period is the last training
        close, already public at test start).
        """
        train = data.slice_time(self.train_start, self.test_start)
        test_start_idx = data.index_at(self.test_start)
        lead = max(test_start_idx - 1, 0)
        test = data.slice_time(int(data.timestamps[lead]), self.test_end)
        return train, test


# Table 1, verbatim.
TABLE1_WINDOWS: Dict[int, ExperimentWindow] = {
    1: ExperimentWindow(1, "2016/08/01", "2019/04/14", "2019/08/01"),
    2: ExperimentWindow(2, "2017/08/01", "2020/04/14", "2020/08/01"),
    3: ExperimentWindow(3, "2018/08/01", "2021/04/14", "2021/08/01"),
}


def get_window(experiment: int) -> ExperimentWindow:
    """Look up a Table 1 window by experiment number (1, 2, or 3)."""
    try:
        return TABLE1_WINDOWS[experiment]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment}; choose from {sorted(TABLE1_WINDOWS)}"
        ) from None


def walk_forward_windows(
    start: Union[int, str],
    end: Union[int, str],
    train_days: int,
    test_days: int,
    step_days: int = 0,
    anchored: bool = False,
) -> List[ExperimentWindow]:
    """Roll train/test windows through ``[start, end)``.

    Fold ``k`` tests on ``test_days`` of data following its training
    span; successive test starts advance by ``step_days`` (default: the
    test length, i.e. back-to-back non-overlapping test windows).  With
    ``anchored=True`` every fold trains from ``start`` (expanding
    window); otherwise each fold trains on the trailing ``train_days``
    (rolling window).  Folds whose test window would run past ``end``
    are dropped — every returned fold has its full test span.

    The folds are plain :class:`ExperimentWindow` rows (``experiment``
    numbering them from 0), so the Table 1 split machinery — including
    the one-period back-test anchor — applies unchanged.
    """
    if train_days <= 0 or test_days <= 0:
        raise ValueError("train_days and test_days must be positive")
    if step_days < 0:
        raise ValueError("step_days must be non-negative")
    step_days = step_days or test_days
    day = 86400
    t0 = parse_date(start) if isinstance(start, str) else int(start)
    t_end = parse_date(end) if isinstance(end, str) else int(end)
    if t0 + (train_days + test_days) * day > t_end:
        raise ValueError(
            f"span [{start}, {end}) too short for one "
            f"{train_days}+{test_days}-day fold"
        )
    folds: List[ExperimentWindow] = []
    test_start = t0 + train_days * day
    while test_start + test_days * day <= t_end:
        train_start = t0 if anchored else test_start - train_days * day
        folds.append(
            ExperimentWindow(
                experiment=len(folds),
                train_start=format_date(train_start),
                test_start=format_date(test_start),
                test_end=format_date(test_start + test_days * day),
            )
        )
        test_start += step_days * day
    return folds
