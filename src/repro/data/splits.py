"""Experiment time windows (Table 1 of the paper).

Three 3-year experiments, each split into train/back-test at fixed
calendar dates.  (The paper's text says "80% of the collected data is
considered for the training set and 20% for the algorithm test", but the
dates in Table 1 imply a ≈90%/10% split — 2.7 years of training versus
3.5 months of back-test.  We follow the dates, which are what define the
reported back-tests.)

====== ====================== ====================== =====================
Exp.   Training set           Back-test set          Total
====== ====================== ====================== =====================
1      2016/08/01–2019/04/14  2019/04/14–2019/08/01  2016/08/01–2019/08/01
2      2017/08/01–2020/04/14  2020/04/14–2020/08/01  2017/08/01–2020/08/01
3      2018/08/01–2021/04/14  2021/04/14–2021/08/01  2018/08/01–2021/08/01
====== ====================== ====================== =====================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .market import MarketData
from .regimes import parse_date


@dataclass(frozen=True)
class ExperimentWindow:
    """One row of Table 1."""

    experiment: int
    train_start: str
    test_start: str
    test_end: str

    def __post_init__(self):
        a, b, c = (
            parse_date(self.train_start),
            parse_date(self.test_start),
            parse_date(self.test_end),
        )
        if not a < b < c:
            raise ValueError(
                f"experiment {self.experiment}: dates must be ordered "
                f"{self.train_start} < {self.test_start} < {self.test_end}"
            )

    @property
    def total_seconds(self) -> int:
        return parse_date(self.test_end) - parse_date(self.train_start)

    @property
    def train_fraction(self) -> float:
        """Fraction of the window used for training (paper: 80%)."""
        train = parse_date(self.test_start) - parse_date(self.train_start)
        return train / self.total_seconds

    def split(self, data: MarketData) -> Tuple[MarketData, MarketData]:
        """Slice a panel into (train, back-test) sub-panels.

        The back-test slice keeps one extra leading period so the first
        test step has a previous close to compute its price relative
        against (no look-ahead: the overlap period is the last training
        close, already public at test start).
        """
        train = data.slice_time(self.train_start, self.test_start)
        test_start_idx = data.index_at(self.test_start)
        lead = max(test_start_idx - 1, 0)
        test = data.slice_time(int(data.timestamps[lead]), self.test_end)
        return train, test


# Table 1, verbatim.
TABLE1_WINDOWS: Dict[int, ExperimentWindow] = {
    1: ExperimentWindow(1, "2016/08/01", "2019/04/14", "2019/08/01"),
    2: ExperimentWindow(2, "2017/08/01", "2020/04/14", "2020/08/01"),
    3: ExperimentWindow(3, "2018/08/01", "2021/04/14", "2021/08/01"),
}


def get_window(experiment: int) -> ExperimentWindow:
    """Look up a Table 1 window by experiment number (1, 2, or 3)."""
    try:
        return TABLE1_WINDOWS[experiment]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment}; choose from {sorted(TABLE1_WINDOWS)}"
        ) from None
