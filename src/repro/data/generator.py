"""Synthetic cryptocurrency market generator.

The paper's evaluation data (Poloniex OHLCV, 2016–2021) is not
redistributable and cannot be downloaded in this offline environment, so
we build the closest synthetic equivalent: a *correlated regime-switching
jump-diffusion* over a universe of crypto-like assets.

Model
-----
A single market factor follows the regime calendar of
:mod:`repro.data.regimes` (drift, volatility, Poisson jumps).  Each coin
``i`` loads on that factor with a beta and adds idiosyncratic diffusion
and jumps:

.. math::

    r_i(t) = \\beta_i r_m(t) + (\\alpha_i - \\tfrac{1}{2}\\sigma_i^2)\\,dt
             + \\sigma_i \\sqrt{dt}\\, z_{i,t} + J_{i,t}

Both the market factor and each coin's idiosyncratic returns carry a
*mean-reverting (Ornstein–Uhlenbeck) drift modulation* — short-horizon
momentum.  High-frequency crypto returns are measurably autocorrelated,
and it is precisely the structure Jiang-style deterministic policy
gradients exploit on 30-min Poloniex candles, so the synthetic
substitute must have it for the paper's Table 3 comparison (learned
policies beating rebalancing baselines) to be reproducible.  Modelling
momentum as an OU process on the *drift* (rather than AR noise on the
returns) keeps the statistics consistent across candle resolutions:
the per-period predictable component is ``m_t · dt`` with ``m_t``
mean-reverting on a configurable timescale.

Intraperiod OHLC candles are synthesised with a Brownian-bridge path of
``substeps`` points whose endpoints match the period's open/close, so
OHLC consistency holds by construction.  Volume couples to liquidity,
the regime's volume multiplier, and realised absolute return — the
features the paper's top-11-by-volume selection keys on.

Everything is driven by an explicit seed; two calls with identical
arguments return identical panels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..utils.rng import make_rng, stable_hash
from .market import MarketData
from .regimes import (
    SECONDS_PER_YEAR,
    RegimeSchedule,
    default_crypto_schedule,
    parse_date,
)

DEFAULT_PERIOD_SECONDS = 1800  # Poloniex 30-minute candles, as in the paper.


@dataclass(frozen=True)
class CoinSpec:
    """Static properties of one synthetic coin.

    Parameters
    ----------
    name:
        Ticker symbol; also salts the coin's random stream so a coin's
        path is stable under changes to the rest of the universe.
    beta:
        Loading on the market factor.
    idio_vol:
        Annualised idiosyncratic volatility.
    idio_drift:
        Annualised idiosyncratic drift (alpha).
    jump_rate / jump_scale:
        Idiosyncratic Poisson jump intensity (per year) and jump-size
        standard deviation.
    liquidity:
        Baseline daily traded volume in quote units; drives the
        volume-ranked universe selection.
    depth:
        Order-book depth multiplier on the printed volume: the fraction
        of a candle's volume actually tradable without walking the book
        (1.0 = everything prints at the touch).  Scales the generated
        volume panel, so the execution layer's ADV-based participation
        (and its regime coupling through ``volume_multiplier`` and the
        realised-|return| activity term) inherits it; the default 1.0
        leaves generated panels bit-identical to the pre-execution
        subsystem.
    initial_price:
        Price at the start of generated history.
    alt_loading:
        Exposure to the regime's ``alt_bias`` cross-sectional drift
        (0 for the dominant asset, ~1 for small-cap alts).  Encodes the
        alt-season / BTC-dominance cycle of 2016–2021.
    """

    name: str
    beta: float = 1.0
    idio_vol: float = 0.6
    idio_drift: float = 0.0
    jump_rate: float = 10.0
    jump_scale: float = 0.04
    liquidity: float = 1e6
    depth: float = 1.0
    initial_price: float = 100.0
    alt_loading: float = 1.0

    def __post_init__(self):
        if self.idio_vol <= 0:
            raise ValueError(f"idio_vol must be positive ({self.name})")
        if self.liquidity <= 0 or self.initial_price <= 0:
            raise ValueError(f"liquidity/initial_price must be positive ({self.name})")
        if self.depth <= 0:
            raise ValueError(f"depth must be positive ({self.name})")


def default_universe() -> List[CoinSpec]:
    """Sixteen crypto-like assets spanning majors, mid-caps, and alts.

    Liquidity ordering mirrors the real 2016–2021 hierarchy closely
    enough that "top 11 by trailing volume" selects a BTC/ETH-anchored
    basket, as in the paper.
    """
    return [
        CoinSpec("BTC", beta=1.00, idio_vol=0.25, idio_drift=0.05, jump_rate=6,
                 liquidity=6.0e8, initial_price=600.0, alt_loading=0.0),
        CoinSpec("ETH", beta=1.15, idio_vol=0.45, idio_drift=0.10, jump_rate=8,
                 liquidity=2.5e8, initial_price=12.0, alt_loading=0.5),
        CoinSpec("XRP", beta=1.05, idio_vol=0.80, idio_drift=-0.05, jump_rate=14,
                 jump_scale=0.07, liquidity=1.2e8, initial_price=0.008),
        CoinSpec("LTC", beta=1.10, idio_vol=0.55, idio_drift=0.00, jump_rate=9,
                 liquidity=9.0e7, initial_price=4.0),
        CoinSpec("XMR", beta=1.05, idio_vol=0.65, idio_drift=0.05, jump_rate=10,
                 liquidity=5.5e7, initial_price=2.0),
        CoinSpec("DASH", beta=1.10, idio_vol=0.70, idio_drift=0.00, jump_rate=10,
                 liquidity=5.0e7, initial_price=8.0),
        CoinSpec("ETC", beta=1.20, idio_vol=0.75, idio_drift=-0.05, jump_rate=12,
                 liquidity=4.5e7, initial_price=1.5),
        CoinSpec("XLM", beta=1.15, idio_vol=0.90, idio_drift=0.00, jump_rate=14,
                 jump_scale=0.06, liquidity=3.5e7, initial_price=0.002),
        CoinSpec("ZEC", beta=1.10, idio_vol=0.75, idio_drift=-0.10, jump_rate=11,
                 liquidity=3.0e7, initial_price=50.0),
        CoinSpec("BCH", beta=1.25, idio_vol=0.85, idio_drift=0.00, jump_rate=13,
                 jump_scale=0.06, liquidity=2.8e7, initial_price=300.0),
        CoinSpec("EOS", beta=1.30, idio_vol=0.95, idio_drift=-0.05, jump_rate=15,
                 jump_scale=0.06, liquidity=2.2e7, initial_price=1.0),
        CoinSpec("ADA", beta=1.25, idio_vol=0.90, idio_drift=0.05, jump_rate=14,
                 liquidity=2.0e7, initial_price=0.02),
        CoinSpec("TRX", beta=1.35, idio_vol=1.05, idio_drift=0.00, jump_rate=18,
                 jump_scale=0.07, liquidity=1.5e7, initial_price=0.002),
        CoinSpec("NEO", beta=1.30, idio_vol=1.00, idio_drift=-0.05, jump_rate=16,
                 liquidity=1.2e7, initial_price=0.2),
        CoinSpec("IOTA", beta=1.30, idio_vol=1.00, idio_drift=-0.10, jump_rate=16,
                 jump_scale=0.06, liquidity=9.0e6, initial_price=0.3),
        CoinSpec("DOGE", beta=1.20, idio_vol=1.10, idio_drift=0.00, jump_rate=20,
                 jump_scale=0.10, liquidity=7.0e6, initial_price=0.0002),
    ]


class MarketGenerator:
    """Deterministic synthetic market factory.

    Parameters
    ----------
    universe:
        Coin specifications (default: :func:`default_universe`).
    schedule:
        Regime calendar (default: the 2016–2021 crypto narrative).
    seed:
        Master seed; coin streams are salted with the coin name so the
        same coin gets the same path under any universe subset.
    substeps:
        Intraperiod Brownian-bridge resolution for OHLC synthesis.
    """

    def __init__(
        self,
        universe: Optional[Sequence[CoinSpec]] = None,
        schedule: Optional[RegimeSchedule] = None,
        seed: int = 2022,
        substeps: int = 4,
        momentum_timescale_hours: float = 72.0,
        market_momentum: float = 2.0,
        idio_momentum: float = 16.0,
    ):
        if substeps < 2:
            raise ValueError(f"substeps must be >= 2, got {substeps}")
        if momentum_timescale_hours <= 0:
            raise ValueError("momentum_timescale_hours must be positive")
        if market_momentum < 0 or idio_momentum < 0:
            raise ValueError("momentum amplitudes must be non-negative")
        self.universe = list(universe) if universe is not None else default_universe()
        if not self.universe:
            raise ValueError("universe must contain at least one coin")
        names = [c.name for c in self.universe]
        if len(set(names)) != len(names):
            raise ValueError("coin names must be unique")
        self.schedule = schedule if schedule is not None else default_crypto_schedule()
        self.seed = int(seed)
        self.substeps = int(substeps)
        self.momentum_timescale_hours = float(momentum_timescale_hours)
        self.market_momentum = float(market_momentum)
        self.idio_momentum = float(idio_momentum)
        # Structured report from the most recent generate(..., repair=...)
        # validation pass; None until a repair policy is requested.
        self.last_anomaly_report = None

    # ------------------------------------------------------------------
    def _ou_drift(
        self,
        n: int,
        dt: float,
        amplitude: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-period contribution of an OU drift modulation, ``m_t · dt``.

        ``m_t`` is a stationary Ornstein–Uhlenbeck process in annualised
        drift units with standard deviation ``amplitude`` and
        correlation timescale ``momentum_timescale_hours``; the return
        contribution is its integral over one candle.  Statistics are
        resolution-invariant: regenerating at a different
        ``period_seconds`` preserves horizon-level predictability.
        """
        if amplitude == 0.0:
            return np.zeros(n)
        from scipy.signal import lfilter

        tau_years = self.momentum_timescale_hours * 3600.0 / SECONDS_PER_YEAR
        phi = float(np.exp(-dt / tau_years))
        innov = rng.standard_normal(n) * amplitude * np.sqrt(1.0 - phi ** 2)
        start = rng.standard_normal() * amplitude
        m, _ = lfilter([1.0], [1.0, -phi], innov, zi=np.array([phi * start]))
        return m * dt

    # ------------------------------------------------------------------
    def generate(
        self,
        start: str,
        end: str,
        period_seconds: int = DEFAULT_PERIOD_SECONDS,
        faults=None,
        repair: Optional[str] = None,
    ) -> MarketData:
        """Generate the OHLCV panel covering ``[start, end)``.

        ``faults`` (a :class:`~repro.resilience.FaultPlan` or prepared
        injector) corrupts the generated feed through the deterministic
        data seam — the chaos hook for exercising downstream validation.
        ``repair`` then runs the panel through
        :func:`~repro.data.validation.validate_panel` with that policy
        (``"raise"``/``"drop"``/``"ffill"``), leaving the structured
        report on :attr:`last_anomaly_report`.  Both default to ``None``
        — no corruption, no validation pass, bit-identical to the
        pre-resilience generator.
        """
        t0 = parse_date(start)
        t1 = parse_date(end)
        if t1 <= t0:
            raise ValueError(f"empty date range [{start}, {end})")
        if period_seconds <= 0:
            raise ValueError("period_seconds must be positive")
        n = (t1 - t0) // period_seconds
        if n < 2:
            raise ValueError("date range must cover at least two periods")
        timestamps = t0 + period_seconds * np.arange(n, dtype=np.int64)
        dt = period_seconds / SECONDS_PER_YEAR

        params = self.schedule.parameter_arrays(timestamps)
        market_returns = self._market_factor(n, dt, params)

        m = len(self.universe)
        log_returns = np.empty((n, m))
        volumes = np.empty((n, m))
        opens = np.empty((n, m))
        highs = np.empty((n, m))
        lows = np.empty((n, m))
        closes = np.empty((n, m))

        for j, coin in enumerate(self.universe):
            rng = make_rng(self.seed * 1_000_003 + stable_hash(coin.name))
            r = self._coin_returns(
                coin, market_returns, dt, rng, alt_bias=params["alt_bias"]
            )
            log_returns[:, j] = r
            o, h, l, c = self._ohlc_from_returns(coin, r, dt, rng)
            opens[:, j], highs[:, j], lows[:, j], closes[:, j] = o, h, l, c
            volumes[:, j] = self._volume(
                coin, r, dt, params["volume_multiplier"], period_seconds, rng
            )

        panel = MarketData(
            timestamps=timestamps,
            names=[c.name for c in self.universe],
            open=opens,
            high=highs,
            low=lows,
            close=closes,
            volume=volumes,
            period_seconds=period_seconds,
        )
        return self._postprocess(panel, faults, repair, key=f"{start}:{end}")

    def _postprocess(
        self, panel: MarketData, faults, repair: Optional[str], key: str
    ) -> MarketData:
        """Apply the chaos seam and/or the validation airlock.

        Imports lazily so the no-fault path never touches (or pays for)
        the resilience machinery.
        """
        if faults is None and repair is None:
            return panel
        if faults is not None:
            from ..resilience import injector_from

            injector = injector_from(faults)
            if injector is not None:
                panel = injector.corrupt_market(panel, key=key)
        if repair is not None:
            from .validation import validate_panel

            panel, report = validate_panel(panel, policy=repair)
            self.last_anomaly_report = report
            from ..obs import get_obs

            obs = get_obs()
            if obs.enabled:
                obs.event(
                    "data_anomaly_report",
                    level="warn" if report.total_anomalies else "debug",
                    key=key,
                    **report.to_json_dict(),
                )
        return panel

    # ------------------------------------------------------------------
    def _market_factor(self, n: int, dt: float, params: dict) -> np.ndarray:
        """Regime-switching jump-diffusion log-returns of the factor."""
        rng = make_rng(self.seed)
        z = rng.standard_normal(n)
        diffusion = (
            (params["drift"] - 0.5 * params["volatility"] ** 2) * dt
            + params["volatility"] * np.sqrt(dt) * z
            + self._ou_drift(n, dt, self.market_momentum, rng)
        )
        jump_counts = rng.poisson(params["jump_rate"] * dt)
        jumps = np.where(
            jump_counts > 0,
            params["jump_bias"] * jump_counts
            + params["jump_scale"] * np.sqrt(np.maximum(jump_counts, 1))
            * rng.standard_normal(n),
            0.0,
        )
        return diffusion + jumps

    def _coin_returns(
        self,
        coin: CoinSpec,
        market_returns: np.ndarray,
        dt: float,
        rng: np.random.Generator,
        alt_bias: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        n = market_returns.shape[0]
        idio = (
            (coin.idio_drift - 0.5 * coin.idio_vol ** 2) * dt
            + coin.idio_vol * np.sqrt(dt) * rng.standard_normal(n)
            + self._ou_drift(n, dt, self.idio_momentum, rng)
        )
        if alt_bias is not None:
            idio = idio + coin.alt_loading * alt_bias * dt
        jump_counts = rng.poisson(coin.jump_rate * dt, size=n)
        jumps = np.where(
            jump_counts > 0,
            coin.jump_scale * np.sqrt(np.maximum(jump_counts, 1))
            * rng.standard_normal(n),
            0.0,
        )
        return coin.beta * market_returns + idio + jumps

    def _ohlc_from_returns(
        self,
        coin: CoinSpec,
        log_returns: np.ndarray,
        dt: float,
        rng: np.random.Generator,
    ):
        """Brownian-bridge candles whose endpoints match the return path."""
        n = log_returns.shape[0]
        k = self.substeps
        closes = coin.initial_price * np.exp(np.cumsum(log_returns))
        opens = np.concatenate([[coin.initial_price], closes[:-1]])

        # Bridge: k intra-period increments re-centred to sum to the
        # period return, scaled to intra-period volatility.
        noise = rng.standard_normal((n, k))
        noise -= noise.mean(axis=1, keepdims=True)
        intra = coin.idio_vol * np.sqrt(dt / k) * noise
        increments = log_returns[:, None] / k + intra
        log_path = np.log(opens)[:, None] + np.cumsum(increments, axis=1)
        # Endpoints of the candle path: open, the k-1 interior points,
        # and the close (the last cumulative point equals the close only
        # up to bridge recentring error, so force it).
        log_path[:, -1] = np.log(closes)
        path = np.exp(log_path)
        highs = np.maximum(path.max(axis=1), np.maximum(opens, closes))
        lows = np.minimum(path.min(axis=1), np.minimum(opens, closes))
        return opens, highs, lows, closes

    def _volume(
        self,
        coin: CoinSpec,
        log_returns: np.ndarray,
        dt: float,
        regime_multiplier: np.ndarray,
        period_seconds: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        n = log_returns.shape[0]
        periods_per_day = 86_400 / period_seconds
        base = coin.liquidity / periods_per_day
        sigma_v = 0.8
        lognoise = np.exp(sigma_v * rng.standard_normal(n) - 0.5 * sigma_v ** 2)
        typical_move = coin.idio_vol * np.sqrt(dt)
        activity = 1.0 + 1.5 * np.abs(log_returns) / max(typical_move, 1e-12)
        # depth scales tradable volume; 1.0 (the default) is an exact
        # float no-op, keeping default panels bit-identical.
        return (base * regime_multiplier * lognoise * activity) * coin.depth
