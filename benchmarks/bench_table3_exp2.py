"""Table 3, experiment 2 (train 2017/08/01–2020/04/14, test →2020/08/01).

The back-test window sits in the post-COVID-crash recovery; the paper
reports SDP at 4.37× while DRL[Jiang] and the classical strategies hover
near 1.0.
"""

from _table3_common import run_table3_experiment


def test_table3_experiment2(benchmark):
    run_table3_experiment(2, benchmark)
