"""Inference throughput benchmark: graph path vs the fused fast path.

Measures decisions/sec and per-forward p50/p99 latency for the two
serving-relevant workloads:

* **backtest** — the SharedSDP agent back-tested over ``--panels``
  synthetic market panels, three ways: the seed's graph path (sequential
  ``Backtester.run`` with autograd-graph forwards), the fused sequential
  path, and the fused lockstep-batched path (``Backtester.run_many``).
* **serving** — a :class:`~repro.serving.PortfolioService` with
  ``--sessions`` concurrent sessions on one shared panel, decided per
  round through ``rebalance_many`` (micro-batched, panel-grouped
  ``prepare_states``) and, for contrast, one-by-one ``rebalance`` calls.

Every fused run is checked bit-identical to the graph run (same
portfolio weight trajectories); ``--check`` exits non-zero on any
mismatch so CI can gate on parity.  Results are written to
``BENCH_throughput.json`` at the repo root so future PRs have a
perf trajectory.

Run: ``PYTHONPATH=src python benchmarks/bench_throughput.py``
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

from repro.agents import SDPAgent
from repro.autograd import enable_grad
from repro.data import MarketGenerator
from repro.envs import Backtester, ObservationConfig
from repro.serving import PortfolioService, RebalanceRequest

REPO_ROOT = Path(__file__).resolve().parent.parent

OBSERVATION = ObservationConfig(window=6, stride=1, momentum_horizons=(1, 3, 6))
AGENT_PARAMS = dict(
    hidden_sizes=(128, 128),
    timesteps=5,
    encoder_pop_size=10,
    decoder_pop_size=10,
    seed=0,
)


class _TimedDecide:
    """Wrap an agent's ``decide_batch``, recording per-call latency."""

    def __init__(self, agent: SDPAgent, fn: Callable):
        self.agent = agent
        self.fn = fn
        self.latencies: List[float] = []

    def __enter__(self):
        self._orig = self.agent.decide_batch

        def timed(states):
            t0 = time.perf_counter()
            out = self.fn(states)
            self.latencies.append(time.perf_counter() - t0)
            return out

        self.agent.decide_batch = timed
        return self

    def __exit__(self, *exc):
        self.agent.decide_batch = self._orig


def _stats(name: str, decisions: int, seconds: float, latencies: List[float]) -> Dict:
    lat = np.asarray(latencies) * 1e3
    return {
        "name": name,
        "decisions": int(decisions),
        "seconds": round(seconds, 4),
        "decisions_per_sec": round(decisions / seconds, 1),
        "forward_calls": len(latencies),
        "p50_ms": round(float(np.percentile(lat, 50)), 4),
        "p99_ms": round(float(np.percentile(lat, 99)), 4),
    }


def make_panels(n_panels: int, n_assets: int):
    return [
        MarketGenerator(seed=100 + i)
        .generate("2019/01/01", "2019/02/01", 7200)
        .select_assets(list(range(n_assets)))
        for i in range(n_panels)
    ]


def bench_backtest(panels, n_assets: int) -> Dict:
    agent = SDPAgent(n_assets, observation=OBSERVATION, **AGENT_PARAMS)
    engine = Backtester(observation=OBSERVATION)

    # Seed graph path: sequential back-tests, autograd-graph forwards.
    # Pin grad mode on so the baseline always measures real graph
    # construction, whatever mode the surrounding engine runs in.
    def graph_decide(states):
        with enable_grad():
            return agent.network.forward(states).data

    with _TimedDecide(agent, graph_decide) as timer:
        t0 = time.perf_counter()
        graph_results = [engine.run(agent, p) for p in panels]
        graph_s = time.perf_counter() - t0
        graph_lat = timer.latencies

    # Fused sequential: same loop, graph-free kernels.
    with _TimedDecide(agent, agent.network.forward_inference) as timer:
        t0 = time.perf_counter()
        fused_seq_results = [engine.run(agent, p) for p in panels]
        fused_seq_s = time.perf_counter() - t0
        fused_seq_lat = timer.latencies

    # Fused batched: lockstep run_many, one fused forward per period.
    with _TimedDecide(agent, agent.network.forward_inference) as timer:
        t0 = time.perf_counter()
        fused_batched_results = engine.run_many(agent, panels)
        fused_batched_s = time.perf_counter() - t0
        fused_batched_lat = timer.latencies

    decisions = sum(len(r.weights) for r in graph_results)
    identical = all(
        np.array_equal(g.weights, a.weights) and np.array_equal(g.weights, b.weights)
        for g, a, b in zip(graph_results, fused_seq_results, fused_batched_results)
    )
    graph = _stats("backtest_graph_sequential", decisions, graph_s, graph_lat)
    fused_seq = _stats("backtest_fused_sequential", decisions, fused_seq_s, fused_seq_lat)
    fused_batched = _stats(
        "backtest_fused_batched", decisions, fused_batched_s, fused_batched_lat
    )
    return {
        "paths": [graph, fused_seq, fused_batched],
        "weights_bit_identical": bool(identical),
        "speedup_fused_batched_vs_graph": round(graph_s / fused_batched_s, 2),
        "speedup_fused_sequential_vs_graph": round(graph_s / fused_seq_s, 2),
    }


def bench_serving(panel, n_assets: int, n_sessions: int, n_rounds: int) -> Dict:
    params = {"observation": OBSERVATION, **AGENT_PARAMS}

    def build():
        service = PortfolioService()
        service.register_market("bench", panel)
        for i in range(n_sessions):
            service.create_session(f"s{i}", strategy="sdp", params=params, market="bench")
        return service

    # Micro-batched rounds: one panel-grouped prepare + one fused
    # forward per round for all sessions.
    service = build()
    requests = [RebalanceRequest(f"s{i}") for i in range(n_sessions)]
    round_lat: List[float] = []
    t0 = time.perf_counter()
    for _ in range(n_rounds):
        r0 = time.perf_counter()
        service.rebalance_many(requests)
        round_lat.append(time.perf_counter() - r0)
    batched_s = time.perf_counter() - t0

    # One-by-one: the same decisions as singleton batches.
    service_single = build()
    single_lat: List[float] = []
    t0 = time.perf_counter()
    single_responses = []
    for _ in range(n_rounds):
        for i in range(n_sessions):
            r0 = time.perf_counter()
            single_responses.append(service_single.rebalance(f"s{i}"))
            single_lat.append(time.perf_counter() - r0)
    single_s = time.perf_counter() - t0

    # Parity: round r, session i decisions must agree between modes
    # (replayed on a fresh service so timing noise cannot leak in).
    identical = True
    service_check = build()
    check_responses = []
    for _ in range(n_rounds):
        check_responses.extend(service_check.rebalance_many(requests))
    for a, b in zip(check_responses, single_responses):
        if a.t != b.t or not np.array_equal(a.weights, b.weights):
            identical = False
            break

    decisions = n_sessions * n_rounds
    return {
        "sessions": n_sessions,
        "rounds": n_rounds,
        "paths": [
            _stats("serving_microbatched", decisions, batched_s, round_lat),
            _stats("serving_one_by_one", decisions, single_s, single_lat),
        ],
        "weights_bit_identical": bool(identical),
        "speedup_batched_vs_one_by_one": round(single_s / batched_s, 2),
        "stats": service.stats.to_json_dict(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--panels", type=int, default=16)
    parser.add_argument("--assets", type=int, default=4)
    parser.add_argument("--sessions", type=int, default=32)
    parser.add_argument("--rounds", type=int, default=50)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless fused and graph paths are bit-identical",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_throughput.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    panels = make_panels(args.panels, args.assets)
    backtest = bench_backtest(panels, args.assets)
    serving = bench_serving(panels[0], args.assets, args.sessions, args.rounds)

    report = {
        "bench": "throughput",
        "config": {
            "panels": args.panels,
            "assets": args.assets,
            "periods_per_panel": panels[0].n_periods,
            "observation_window": OBSERVATION.window,
            "network": "SharedSDP (128, 128), T=5",
        },
        "backtest": backtest,
        "serving": serving,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for section in ("backtest", "serving"):
        for path in report[section]["paths"]:
            print(
                f"{path['name']:32s} {path['decisions_per_sec']:>9.1f} dec/s   "
                f"p50 {path['p50_ms']:.3f} ms   p99 {path['p99_ms']:.3f} ms"
            )
    print(
        f"backtest speedup (fused batched vs seed graph): "
        f"{backtest['speedup_fused_batched_vs_graph']}x; "
        f"bit-identical: {backtest['weights_bit_identical']}"
    )
    print(
        f"serving speedup (micro-batched vs one-by-one): "
        f"{serving['speedup_batched_vs_one_by_one']}x; "
        f"bit-identical: {serving['weights_bit_identical']}"
    )
    print(f"wrote {args.out}")

    if args.check:
        ok = backtest["weights_bit_identical"] and serving["weights_bit_identical"]
        if not ok:
            print("PARITY MISMATCH: fused path diverged from graph path", file=sys.stderr)
            return 1
        print("parity check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
